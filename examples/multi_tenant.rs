//! Multi-tenant isolation: two KVS tenants share one smart SSD; one of
//! them misbehaves. §2.1 requires self-managing devices to "provide
//! isolation between the instances" — this demo shows the SSD's
//! round-robin context scheduler doing exactly that, then turns it off.
//!
//! Run with: `cargo run -p lastcpu-examples --bin multi_tenant`

use lastcpu_core::devices::flash::{NandChip, NandConfig};
use lastcpu_core::devices::fs::FlashFs;
use lastcpu_core::devices::ftl::Ftl;
use lastcpu_core::devices::nic::SmartNic;
use lastcpu_core::devices::ssd::{SmartSsd, SsdConfig};
use lastcpu_core::{System, SystemConfig};
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::server::ServerConfig;
use lastcpu_kvs::KvsNicApp;
use lastcpu_mem::Pasid;
use lastcpu_sim::SimDuration;

/// Builds: memctl + one SSD with two exported files + two KVS NICs.
fn build(isolation: bool) -> (System, lastcpu_core::net::PortId, lastcpu_core::net::PortId) {
    let mut sys = System::new(SystemConfig {
        trace: false,
        ..SystemConfig::default()
    });
    sys.add_memctl("memctl0");
    let mut fs = FlashFs::format(Ftl::new(NandChip::new(NandConfig::default())));
    fs.create("/data/a.db").expect("fresh fs");
    fs.create("/data/b.db").expect("fresh fs");
    sys.add_device(Box::new(SmartSsd::new(
        "ssd0",
        fs,
        SsdConfig {
            isolation,
            exports: vec!["/data/a.db".into(), "/data/b.db".into()],
            ..SsdConfig::default()
        },
    )));
    let nic_a = sys.add_net_device(Box::new(SmartNic::new(
        "nic-a",
        KvsNicApp::new(
            ServerConfig {
                file_pattern: "file:/data/a.db".into(),
                ..ServerConfig::default()
            },
            Pasid(100),
        ),
    )));
    let nic_b = sys.add_net_device(Box::new(SmartNic::new(
        "nic-b",
        KvsNicApp::new(
            ServerConfig {
                file_pattern: "file:/data/b.db".into(),
                ..ServerConfig::default()
            },
            Pasid(101),
        ),
    )));
    let pa = sys.device_port(nic_a).expect("port");
    let pb = sys.device_port(nic_b).expect("port");
    (sys, pa, pb)
}

fn run(isolation: bool) -> (f64, lastcpu_sim::SimDuration) {
    let (mut sys, victim_port, bully_port) = build(isolation);
    let vp = sys.add_host(Box::new(KvsClientHost::new(
        victim_port,
        WorkloadConfig {
            keys: 50,
            read_fraction: 0.9,
            outstanding: 2,
            total_ops: 400,
            stats_prefix: "victim".into(),
            ..WorkloadConfig::default()
        },
    )));
    sys.add_host(Box::new(KvsClientHost::new(
        bully_port,
        WorkloadConfig {
            keys: 200,
            read_fraction: 0.0, // write flood
            value_size: 1024,
            outstanding: 32,
            total_ops: 1_000_000,
            preload: false,
            stats_prefix: "bully".into(),
            ..WorkloadConfig::default()
        },
    )));
    sys.power_on();
    for _ in 0..100 {
        sys.run_for(SimDuration::from_millis(100));
        let v: &KvsClientHost = sys.host_as(vp).expect("victim");
        if v.is_done() {
            break;
        }
    }
    let v: &KvsClientHost = sys.host_as(vp).expect("victim");
    assert!(v.is_done(), "victim starved entirely");
    let p99 = sys
        .stats()
        .histogram("victim.latency")
        .expect("latencies")
        .percentile(99.0);
    (v.throughput().expect("done"), p99)
}

fn main() {
    println!("two tenants, one smart SSD; tenant B floods it with 1KiB writes");
    println!("(32 outstanding) while tenant A runs a light read-mostly workload.");
    println!();
    let (tput_on, p99_on) = run(true);
    println!("isolation ON  (round-robin contexts): victim {tput_on:.0} ops/s, p99 {p99_on}");
    let (tput_off, p99_off) = run(false);
    println!("isolation OFF (drain-to-empty FIFO):  victim {tput_off:.0} ops/s, p99 {p99_off}");
    println!();
    println!(
        "the scheduler bounds the victim's tail: p99 is {:.1}x better with isolation.",
        p99_off.as_nanos() as f64 / p99_on.as_nanos() as f64
    );
    assert!(p99_off > p99_on, "isolation should bound the victim's tail");
}
