//! Quickstart: boot a CPU-less machine and watch an operator read a log.
//!
//! Builds the smallest interesting machine from "The Last CPU" (HotOS'21):
//! a memory controller, an auth service, a smart SSD holding a log file,
//! and a remote console — **no CPU anywhere**. The console logs in, runs
//! the paper's Figure-2 session handshake against the SSD, and reads the
//! log over a VIRTIO queue in shared memory.
//!
//! Run with: `cargo run -p lastcpu-examples --bin quickstart`

use lastcpu_core::devices::auth::AuthDevice;
use lastcpu_core::devices::console::{ConsoleDevice, ConsoleState};
use lastcpu_core::devices::flash::{NandChip, NandConfig};
use lastcpu_core::devices::fs::FlashFs;
use lastcpu_core::devices::ftl::Ftl;
use lastcpu_core::devices::monitor::AuthMode;
use lastcpu_core::devices::ssd::{SmartSsd, SsdConfig};
use lastcpu_core::{System, SystemConfig};
use lastcpu_sim::SimDuration;

fn main() {
    // 1. An empty machine: DRAM + system bus, nothing else.
    let mut sys = System::new(SystemConfig::default());

    // 2. The discrete memory controller (the paper's Intel-MCH revival).
    let memctl = sys.add_memctl("memctl0");

    // 3. An authentication service with one operator account.
    let secret = 0xFEED_FACE;
    sys.add_device(Box::new(AuthDevice::new(
        "auth0",
        secret,
        &[("operator", "hunter2")],
    )));

    // 4. A smart SSD with a log file, trusting tokens sealed by auth0.
    let mut fs = FlashFs::format(Ftl::new(NandChip::new(NandConfig::default())));
    fs.create("/logs/kvs.log").expect("fresh filesystem");
    fs.write(
        "/logs/kvs.log",
        0,
        b"[boot] kv-store started\n[info] 12345 requests served\n[info] 0 errors\n",
    )
    .expect("seed the log");
    sys.add_device(Box::new(SmartSsd::new(
        "ssd0",
        fs,
        SsdConfig {
            exports: vec!["/logs/kvs.log".into()],
            file_auth: AuthMode::Sealed { secret },
            ..SsdConfig::default()
        },
    )));

    // 5. The operator's console (§4 "System Maintenance").
    let console = sys.add_device(Box::new(ConsoleDevice::new(
        "console0",
        memctl.id,
        "operator",
        "hunter2",
        "/logs/kvs.log",
    )));

    // 6. Power on and run 50 virtual milliseconds.
    sys.power_on();
    sys.run_for(SimDuration::from_millis(50));

    // 7. Inspect the result.
    let c: &ConsoleDevice = sys.device_as(console).expect("console present");
    assert_eq!(c.state(), ConsoleState::Done, "console did not finish");
    println!(
        "machine booted: {} devices alive, zero CPUs",
        sys.bus().alive().count()
    );
    println!();
    println!("log retrieved by the console over the CPU-less fabric:");
    println!("-------------------------------------------------------");
    print!("{}", String::from_utf8_lossy(c.log().expect("done")));
    println!("-------------------------------------------------------");
    println!();
    println!("how it happened (protocol trace, last 12 steps before the read):");
    let events: Vec<_> = sys
        .trace()
        .events()
        .filter(|e| {
            e.source == "console0"
                || e.what().contains("console0")
                || e.what().contains("programmed IOMMU")
        })
        .collect();
    for e in events.iter().take(14) {
        println!("  {e}");
    }
    println!();
    println!(
        "bus carried {} control messages ({} bytes); {} pages were mapped by",
        sys.bus().stats().messages,
        sys.bus().stats().bytes,
        sys.stats().counter("bus.pages_mapped"),
    );
    println!("the privileged bus on instruction from the memory controller.");
}
