//! Failure drill: kill the SSD under a live KVS and watch the system's §4
//! error handling — fencing, failure broadcast, memory reclamation, reset,
//! and the application's experience through it all.
//!
//! Run with: `cargo run -p lastcpu-examples --bin failure_drill`

use lastcpu_core::devices::nic::SmartNic;
use lastcpu_core::SystemConfig;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::server::{ServerConfig, ServerState};
use lastcpu_kvs::{build_cpuless_kvs, KvsNicApp};
use lastcpu_sim::SimDuration;

fn main() {
    let mut setup = build_cpuless_kvs(
        SystemConfig::default(),
        Default::default(),
        ServerConfig::default(),
    );
    let port = setup.system.add_host(Box::new(KvsClientHost::new(
        setup.kvs_port,
        WorkloadConfig {
            keys: 100,
            total_ops: 1_000_000, // open-ended; we interrupt it
            preload: true,
            stats_prefix: "client".into(),
            ..WorkloadConfig::default()
        },
    )));
    setup.system.power_on();
    setup.system.run_for(SimDuration::from_millis(200));

    let client: &KvsClientHost = setup.system.host_as(port).expect("client");
    let before = client.ops_done();
    println!("t=200ms: KVS serving normally, {before} ops completed so far");
    assert!(before > 0, "workload should be running");

    // --- Inject: the SSD dies. -----------------------------------------
    let t_kill = setup.system.now();
    println!();
    println!(">>> killing ssd0 (transient hardware failure)");
    setup.system.kill_device(setup.ssd, false);
    setup.system.run_for(SimDuration::from_millis(10));

    println!();
    println!("what the system did (trace excerpt):");
    let interesting: Vec<String> = setup
        .system
        .trace()
        .events()
        .filter(|e| e.at >= t_kill)
        .filter(|e| {
            e.what().contains("DeviceFailed")
                || e.what().contains("revoked")
                || e.source == "fault"
                || e.what().contains("ssd0: HelloAck")
                || e.what().contains("Hello to")
        })
        .take(12)
        .map(|e| format!("  {e}"))
        .collect();
    for line in &interesting {
        println!("{line}");
    }

    // The NIC's server lost its session (its storage died under it).
    let nic: &SmartNic<KvsNicApp> = setup.system.device_as(setup.frontend).expect("nic");
    println!();
    println!(
        "KVS server state after the failure: {:?}",
        nic.app().state()
    );
    assert_eq!(nic.app().state(), ServerState::Failed);
    println!("the client times out its lost requests and the server sheds load:");
    setup.system.run_for(SimDuration::from_millis(300));
    let client: &KvsClientHost = setup.system.host_as(port).expect("client");
    println!(
        "  client timeouts: {}, Busy responses: {} (ops before kill: {before})",
        client.timeouts(),
        client.busy_rejections(),
    );
    assert!(
        client.timeouts() > 0,
        "in-flight requests died with the SSD"
    );
    assert!(
        client.busy_rejections() > 0,
        "server sheds load after failure"
    );

    // The bus reset the SSD; it re-registered. (The KVS application layer
    // would reconnect via a fresh discovery — the paper leaves recovery to
    // "the application logic running on the consumer", §4.)
    let ssd_alive = setup
        .system
        .bus()
        .device(setup.ssd.id)
        .is_some_and(|d| d.state == lastcpu_bus::bus::DeviceState::Alive);
    println!();
    println!(
        "ssd0 after the bus's reset pulse: {}",
        if ssd_alive {
            "alive again (re-registered via Hello)"
        } else {
            "still down"
        }
    );
    assert!(ssd_alive);
    println!(
        "memory controller reclaimed/revoked: {} pages unmapped by the bus",
        setup.system.stats().counter("bus.pages_unmapped")
    );
    println!();
    println!("the failure was contained: no CPU was needed to fence the device,");
    println!("notify its consumers, scrub its mappings, or bring it back.");
}
