//! The paper's §3 application, end to end: a key-value store processed on a
//! smart NIC with its data file on a smart SSD — and the same store run the
//! conventional way (on a CPU behind a dumb NIC) for comparison.
//!
//! Run with: `cargo run -p lastcpu-examples --bin kv_store`

use lastcpu_core::devices::nic::SmartNic;
use lastcpu_core::SystemConfig;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::server::ServerConfig;
use lastcpu_kvs::{build_baseline_kvs, build_cpuless_kvs, KvsNicApp};
use lastcpu_sim::SimDuration;

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        keys: 200,
        theta: 0.99,
        read_fraction: 0.9,
        value_size: 128,
        outstanding: 8,
        total_ops: 1500,
        preload: true,
        stats_prefix: "client".into(),
        ..WorkloadConfig::default()
    }
}

fn main() {
    // --- CPU-less deployment (the paper's design) -----------------------
    let mut cpuless = build_cpuless_kvs(
        SystemConfig::default(),
        Default::default(),
        ServerConfig {
            cache_entries: 128, // hot values cached in NIC-local memory
            ..ServerConfig::default()
        },
    );
    let port = cpuless
        .system
        .add_host(Box::new(KvsClientHost::new(cpuless.kvs_port, workload())));
    cpuless.system.power_on();
    cpuless.system.run_for(SimDuration::from_secs(5));

    let client: &KvsClientHost = cpuless.system.host_as(port).expect("client");
    assert!(client.is_done(), "workload incomplete");
    let nic: &SmartNic<KvsNicApp> = cpuless.system.device_as(cpuless.frontend).expect("nic");
    let stats = nic.app().stats();
    let h = cpuless
        .system
        .stats()
        .histogram("client.latency")
        .expect("latencies");

    println!("CPU-less KVS (smart NIC + smart SSD, no CPU):");
    println!("  ops completed: {}", client.ops_done());
    println!("  throughput:    {:.0} ops/s", client.throughput().unwrap());
    println!(
        "  latency:       mean {} / p50 {} / p99 {}",
        h.mean(),
        h.percentile(50.0),
        h.percentile(99.0)
    );
    println!(
        "  server:        {} GETs ({} cache hits), {} PUTs, {} live keys",
        stats.gets,
        stats.cache_hits,
        stats.puts,
        nic.app().key_count()
    );

    // --- Conventional deployment (the last CPU still in place) ----------
    let mut base = build_baseline_kvs(
        SystemConfig::default(),
        Default::default(),
        ServerConfig {
            cache_entries: 128,
            ..ServerConfig::default()
        },
    );
    let port = base
        .system
        .add_host(Box::new(KvsClientHost::new(base.kvs_port, workload())));
    base.system.power_on();
    base.system.run_for(SimDuration::from_secs(5));
    let client: &KvsClientHost = base.system.host_as(port).expect("client");
    assert!(client.is_done(), "baseline workload incomplete");
    let h2 = base
        .system
        .stats()
        .histogram("client.latency")
        .expect("latencies");

    println!();
    println!("Conventional KVS (CPU + dumb NIC, same store logic, same SSD):");
    println!("  ops completed: {}", client.ops_done());
    println!("  throughput:    {:.0} ops/s", client.throughput().unwrap());
    println!(
        "  latency:       mean {} / p50 {} / p99 {}",
        h2.mean(),
        h2.percentile(50.0),
        h2.percentile(99.0)
    );
    println!();
    println!(
        "kernel tax on the median op: {:.2}x  (the mean is flash-bound on PUTs;",
        h2.percentile(50.0).as_nanos() as f64 / h.percentile(50.0).as_nanos() as f64
    );
    println!("run `cargo run -p lastcpu-bench --bin e2_kvs_dataplane` for the full sweep)");
}
