//! Criterion micro-benchmarks of the emulator's substrates.
//!
//! These measure *host* time (how fast the library simulates), complementing
//! the experiment binaries, which report *virtual* time (what the simulated
//! machine would observe). Keeping the substrates fast is what lets the
//! experiment sweeps run thousands of simulated seconds in host seconds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use lastcpu_bus::{ConnId, DeviceId, Dst, Envelope, Payload, RequestId, ServiceId, Token};
use lastcpu_devices::flash::{NandChip, NandConfig};
use lastcpu_devices::ftl::Ftl;
use lastcpu_iommu::{AccessKind, Iommu};
use lastcpu_mem::{FrameAllocator, Pasid, Perms, PhysAddr, VirtAddr, PAGE_SIZE};
use lastcpu_sim::{CorrId, DetRng, Histogram, SimDuration, SimTime, TraceData, TraceSink};
use lastcpu_virtio::{FlatMemory, QueueLayout, QueueMemory, VirtqueueDevice, VirtqueueDriver};

fn bench_wire_codec(c: &mut Criterion) {
    let env = Envelope {
        src: DeviceId(7),
        dst: Dst::Device(DeviceId(9)),
        req: RequestId(42),
        corr: CorrId(1),
        payload: Payload::OpenRequest {
            service: ServiceId(3),
            token: Token(0xDEADBEEF),
            params: vec![0xAB; 64],
        },
    };
    let bytes = env.encode();
    c.bench_function("wire/encode_open_request", |b| {
        b.iter(|| black_box(&env).encode())
    });
    c.bench_function("wire/decode_open_request", |b| {
        b.iter(|| Envelope::decode(black_box(&bytes)).unwrap())
    });
    // The analytic size used on the routing hot path in place of a full
    // encode: its entire point is the gap between these two numbers.
    c.bench_function("wire/encoded_len_open_request", |b| {
        b.iter(|| black_box(&env).encoded_len())
    });
}

fn bench_event_queue(c: &mut Criterion) {
    use lastcpu_sim::{EventQueue, QueueEngine};
    // Steady-state churn at constant depth: pop the earliest event,
    // schedule a replacement. Compares the timing wheel against the
    // reference heap on the same deterministic delay stream.
    for engine in [QueueEngine::Wheel, QueueEngine::Heap] {
        c.bench_function(&format!("queue/churn_depth_4k/{}", engine.name()), |b| {
            let mut q: EventQueue<u64> = EventQueue::with_engine(engine);
            let mut rng = DetRng::new(7);
            let mut delay = move || SimDuration::from_nanos(1 + rng.below(1 << 16));
            for i in 0..4096u64 {
                q.schedule_in(delay(), i);
            }
            b.iter(|| {
                let ev = q.pop().expect("constant depth");
                q.schedule_in(delay(), black_box(ev.event));
            })
        });
        c.bench_function(&format!("queue/push_pop_burst_64/{}", engine.name()), |b| {
            let mut q: EventQueue<u64> = EventQueue::with_engine(engine);
            b.iter(|| {
                for i in 0..64u64 {
                    // Same-instant burst: exercises the FIFO tie-break path.
                    q.schedule_in(SimDuration::from_nanos(100), i);
                }
                let mut acc = 0u64;
                while let Some(ev) = q.pop() {
                    acc = acc.wrapping_add(ev.event);
                }
                black_box(acc)
            })
        });
    }
}

fn bench_virtqueue(c: &mut Criterion) {
    c.bench_function("virtio/submit_serve_complete", |b| {
        let mut mem = FlatMemory::new(64 * 1024);
        let layout = QueueLayout::new(0x100, 16);
        let mut drv = VirtqueueDriver::create(&mut mem, layout).unwrap();
        let mut dev = VirtqueueDevice::attach(layout);
        mem.write(0x4000, b"request!").unwrap();
        b.iter(|| {
            let head = drv.submit_request(&mut mem, 0x4000, 8, 0x5000, 16).unwrap();
            let chain = dev.pop(&mut mem).unwrap().unwrap();
            let req = dev.read_request(&mut mem, &chain).unwrap();
            black_box(&req);
            let n = dev.write_response(&mut mem, &chain, b"resp").unwrap();
            dev.push_used(&mut mem, chain.head, n).unwrap();
            let done = drv.complete(&mut mem).unwrap().unwrap();
            assert_eq!(done.head, head);
        })
    });
}

fn bench_ftl(c: &mut Criterion) {
    c.bench_function("ftl/write_4k_with_gc", |b| {
        let mut ftl = Ftl::new(NandChip::new(NandConfig {
            blocks: 64,
            pages_per_block: 32,
            page_size: 4096,
            max_erase_cycles: u32::MAX,
            ..NandConfig::default()
        }));
        let page = vec![0x5Au8; 4096];
        let lp = ftl.logical_pages();
        let mut lpn = 0u32;
        b.iter(|| {
            ftl.write(lpn % lp, black_box(&page)).unwrap();
            lpn = lpn.wrapping_add(7);
        })
    });
}

fn bench_iommu(c: &mut Criterion) {
    let mut mmu = Iommu::new(64);
    mmu.bind_pasid(Pasid(1));
    for p in 0..1024u64 {
        mmu.map(
            Pasid(1),
            VirtAddr::new(p * PAGE_SIZE),
            PhysAddr::new((p + 8) * PAGE_SIZE),
            Perms::RW,
        )
        .unwrap();
    }
    c.bench_function("iommu/translate_hit", |b| {
        mmu.translate(Pasid(1), VirtAddr::new(0), AccessKind::Read)
            .unwrap();
        b.iter(|| {
            mmu.translate(Pasid(1), black_box(VirtAddr::new(0x10)), AccessKind::Read)
                .unwrap()
        })
    });
    c.bench_function("iommu/translate_random_1024_pages", |b| {
        let mut rng = DetRng::new(9);
        b.iter(|| {
            let va = VirtAddr::new(rng.below(1024) * PAGE_SIZE);
            mmu.translate(Pasid(1), black_box(va), AccessKind::Read)
                .unwrap()
        })
    });
}

fn bench_frame_allocator(c: &mut Criterion) {
    c.bench_function("frame_alloc/alloc_free_order3", |b| {
        let mut fa = FrameAllocator::new(1 << 16);
        b.iter(|| {
            let f = fa.alloc_order(3).unwrap();
            fa.free(black_box(f)).unwrap();
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("stats/histogram_record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            h.record(SimDuration::from_nanos(black_box(v)));
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1) >> 34;
        })
    });
}

fn bench_trace_overhead(c: &mut Criterion) {
    // The observability acceptance bar: with tracing disabled, an emit must
    // cost a single branch — compare these two numbers to verify.
    c.bench_function("trace/emit_disabled", |b| {
        let mut sink = TraceSink::disabled();
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            sink.emit_data(
                SimTime::from_nanos(n),
                "bench",
                CorrId(1),
                TraceData::QueueDoorbell {
                    to: String::new(),
                    value: black_box(n),
                },
            );
        });
    });
    c.bench_function("trace/emit_enabled_bounded", |b| {
        let mut sink = TraceSink::bounded(4096);
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            sink.emit_data(
                SimTime::from_nanos(n),
                "bench",
                CorrId(1),
                TraceData::QueueDoorbell {
                    to: "dev:9".to_string(),
                    value: black_box(n),
                },
            );
        });
    });
}

fn bench_doorbell_value(c: &mut Criterion) {
    // Sanity-priced micro op: encode/decode the setup doorbell.
    c.bench_function("ssd/setup_doorbell_encode", |b| {
        b.iter(|| lastcpu_devices::ssd::setup_doorbell(black_box(0x2000_0000), 64))
    });
    let _ = ConnId(0);
}

criterion_group!(
    benches,
    bench_wire_codec,
    bench_event_queue,
    bench_virtqueue,
    bench_ftl,
    bench_iommu,
    bench_frame_allocator,
    bench_histogram,
    bench_trace_overhead,
    bench_doorbell_value,
);
criterion_main!(benches);
