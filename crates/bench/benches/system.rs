//! Criterion benchmarks of whole-system simulation.
//!
//! Each iteration builds and runs a complete emulated machine, measuring
//! how much host time a standard scenario costs. The virtual-time results
//! themselves are printed by the experiment binaries (`cargo run -p
//! lastcpu-bench --bin <experiment>`).

use criterion::{criterion_group, criterion_main, Criterion};

use lastcpu_core::SystemConfig;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::server::ServerConfig;
use lastcpu_kvs::{build_baseline_kvs, build_cpuless_kvs};
use lastcpu_sim::SimDuration;

fn quiet() -> SystemConfig {
    SystemConfig {
        trace: false,
        ..SystemConfig::default()
    }
}

fn small_workload() -> WorkloadConfig {
    WorkloadConfig {
        keys: 50,
        theta: 0.9,
        read_fraction: 0.9,
        value_size: 64,
        outstanding: 4,
        total_ops: 200,
        preload: true,
        stats_prefix: "bench".into(),
        ..WorkloadConfig::default()
    }
}

fn bench_init_sequence(c: &mut Criterion) {
    c.bench_function("system/figure2_init_to_ready", |b| {
        b.iter(|| {
            let mut setup = build_cpuless_kvs(quiet(), Default::default(), ServerConfig::default());
            setup.system.power_on();
            setup.system.run_for(SimDuration::from_millis(5));
            assert!(setup.system.bus().alive().count() >= 3);
        })
    });
}

fn bench_kvs_cpuless(c: &mut Criterion) {
    c.bench_function("system/kvs_200ops_cpuless", |b| {
        b.iter(|| {
            let mut setup = build_cpuless_kvs(quiet(), Default::default(), ServerConfig::default());
            let port = setup.system.add_host(Box::new(KvsClientHost::new(
                setup.kvs_port,
                small_workload(),
            )));
            setup.system.power_on();
            setup.system.run_for(SimDuration::from_secs(2));
            let client: &KvsClientHost = setup.system.host_as(port).unwrap();
            assert!(client.is_done());
        })
    });
}

fn bench_kvs_baseline(c: &mut Criterion) {
    c.bench_function("system/kvs_200ops_baseline", |b| {
        b.iter(|| {
            let mut setup =
                build_baseline_kvs(quiet(), Default::default(), ServerConfig::default());
            let port = setup.system.add_host(Box::new(KvsClientHost::new(
                setup.kvs_port,
                small_workload(),
            )));
            setup.system.power_on();
            setup.system.run_for(SimDuration::from_secs(2));
            let client: &KvsClientHost = setup.system.host_as(port).unwrap();
            assert!(client.is_done());
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_init_sequence, bench_kvs_cpuless, bench_kvs_baseline
}
criterion_main!(benches);
