//! E2 — KVS data plane: CPU-less offload vs kernel-mediated path.
//!
//! The §3 application under YCSB-style mixes. In the CPU-less system the
//! smart NIC answers from the edge, reaching the SSD by VIRTIO over shared
//! memory; in the baseline every request and response crosses the kernel
//! (interrupt, copy, syscall) and the *same* store logic runs on the CPU.
//! The gap is the tax the paper proposes to remove (§1: entire applications
//! offloaded so "the CPU is needed only for initial setup and error
//! handling" — and then not even that).

use lastcpu_bench::{ObsArgs, Table};
use lastcpu_core::SystemConfig;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::server::ServerConfig;
use lastcpu_kvs::{build_baseline_kvs, build_cpuless_kvs, build_hybrid_kvs};
use lastcpu_sim::SimDuration;

struct Mix {
    name: &'static str,
    read_fraction: f64,
}

const MIXES: &[Mix] = &[
    Mix {
        name: "A 50/50",
        read_fraction: 0.5,
    },
    Mix {
        name: "B 95/5",
        read_fraction: 0.95,
    },
    Mix {
        name: "C 100/0",
        read_fraction: 1.0,
    },
];

struct Outcome {
    tput: f64,
    mean: SimDuration,
    p50: SimDuration,
    p99: SimDuration,
}

const CLIENTS: usize = 4;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Deployment {
    CpuLess,
    Hybrid,
    Baseline,
}

fn run(mix: &Mix, deployment: Deployment, obs: &ObsArgs) -> Outcome {
    let mut sys_config = SystemConfig {
        trace: false,
        ..SystemConfig::default()
    };
    obs.apply(&mut sys_config);
    // Both deployments run the identical application, including the hot
    // value cache in the processing device's local memory (KV-Direct keeps
    // its cache in NIC-attached DRAM; the kernel keeps page-cache-like
    // copies). Read-heavy traffic is then edge-bound, not flash-bound, and
    // the kernel detour becomes the bottleneck it really is.
    let server = ServerConfig {
        cache_entries: 512,
        ..ServerConfig::default()
    };
    let mut setup = match deployment {
        Deployment::CpuLess => build_cpuless_kvs(sys_config, Default::default(), server),
        Deployment::Hybrid => build_hybrid_kvs(sys_config, Default::default(), server),
        Deployment::Baseline => build_baseline_kvs(sys_config, Default::default(), server),
    };
    let mut ports = Vec::new();
    for _ in 0..CLIENTS {
        let workload = WorkloadConfig {
            keys: 400,
            theta: 0.99,
            read_fraction: mix.read_fraction,
            value_size: 128,
            outstanding: 8,
            total_ops: 3000,
            preload: true,
            stats_prefix: "wl".into(), // shared prefix: one merged histogram
            ..WorkloadConfig::default()
        };
        ports.push(
            setup
                .system
                .add_host(Box::new(KvsClientHost::new(setup.kvs_port, workload))),
        );
    }
    setup.system.power_on();
    setup.system.run_for(SimDuration::from_secs(20));
    // Aggregate throughput over the union of measured windows (clients'
    // windows need not overlap perfectly, so summing per-client rates
    // would overestimate).
    let mut ops = 0u64;
    let mut first_start = None;
    let mut last_finish = None;
    for &port in &ports {
        let client: &KvsClientHost = setup.system.host_as(port).expect("client");
        assert!(
            client.is_done(),
            "workload incomplete ({})",
            client.ops_done()
        );
        assert_eq!(client.errors(), 0);
        ops += client.ops_done();
        let s = client.started_at().expect("done");
        let f = client.finished_at().expect("done");
        first_start = Some(first_start.map_or(s, |p: lastcpu_sim::SimTime| p.min(s)));
        last_finish = Some(last_finish.map_or(f, |p: lastcpu_sim::SimTime| p.max(f)));
    }
    let span = last_finish.expect("done").since(first_start.expect("done"));
    let tput = ops as f64 / (span.as_nanos() as f64 / 1e9);
    let h = setup
        .system
        .stats()
        .histogram("wl.latency")
        .expect("latency histogram");
    obs.dump(&setup.system);
    Outcome {
        tput,
        mean: h.mean(),
        p50: h.percentile(50.0),
        p99: h.percentile(99.0),
    }
}

fn main() {
    let obs = ObsArgs::from_env();
    println!("E2: KVS data plane — CPU-less offload vs kernel-mediated baseline");
    println!(
        "    (4 clients x 8 outstanding, 400 keys, zipf 0.99, 128B values, 512-entry edge cache)"
    );
    println!();
    let mut t = Table::new(&["mix", "system", "ops/s", "mean", "p50", "p99"]);
    for mix in MIXES {
        let cpuless = run(mix, Deployment::CpuLess, &obs);
        let hybrid = run(mix, Deployment::Hybrid, &obs);
        let base = run(mix, Deployment::Baseline, &obs);
        for (label, o) in [
            ("cpu-less", &cpuless),
            ("hybrid", &hybrid),
            ("baseline", &base),
        ] {
            t.row_strings(vec![
                mix.name.into(),
                label.into(),
                format!("{:.0}", o.tput),
                o.mean.to_string(),
                o.p50.to_string(),
                o.p99.to_string(),
            ]);
        }
        t.row_strings(vec![
            "".into(),
            "speedup".into(),
            format!("{:.2}x", cpuless.tput / base.tput),
            format!(
                "{:.2}x",
                base.mean.as_nanos() as f64 / cpuless.mean.as_nanos() as f64
            ),
            "".into(),
            "".into(),
        ]);
    }
    t.print();
    println!();
    println!("expected shape: the CPU-less path wins by the per-op kernel tax");
    println!("(interrupt + 2 copies + syscall); the gap widens on read-heavy mixes");
    println!("where flash time no longer dominates. The *hybrid* row (CPU compute,");
    println!("decentralized control) tracks the baseline, not the CPU-less system:");
    println!("the data-plane win comes from offload, not from decentralizing control");
    println!("— answering the paper's closing question (§5).");
}
