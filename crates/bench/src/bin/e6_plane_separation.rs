//! E6 — control/data plane separation (§2.3).
//!
//! The paper: "The memory bus must have high throughput and low latency,
//! while the system management bus need not ... we do not see a compelling
//! reason to combine them." This experiment measures the data plane's
//! latency (a doorbell ping-pong between two devices, i.e. an MSI-style
//! memory write) while a third device generates rising control-plane load
//! (broadcast discovery queries). In the *split* configuration (the
//! paper's design) the planes do not queue behind each other; in the
//! *conflated* configuration every control message also occupies the
//! shared interconnect.

use lastcpu_bench::drivers::{ControlStorm, DoorbellPinger, DoorbellPonger};
use lastcpu_bench::{ObsArgs, Table};
use lastcpu_core::{System, SystemConfig};
use lastcpu_sim::SimDuration;

/// Runs one configuration; returns (rtt mean, rtt p99, control msgs sent).
fn run(
    storm_interval: Option<SimDuration>,
    conflate: bool,
    obs: &ObsArgs,
) -> (SimDuration, SimDuration, u64) {
    let mut config = SystemConfig {
        trace: false,
        conflate_planes: conflate,
        ..SystemConfig::default()
    };
    obs.apply(&mut config);
    let mut sys = System::new(config);
    sys.add_memctl("memctl0");
    let ponger = sys.add_device(Box::new(DoorbellPonger::new("ponger0")));
    let pinger = sys.add_device(Box::new(DoorbellPinger::new(
        "pinger0",
        ponger.id,
        SimDuration::from_micros(20),
    )));
    let sink = sys.add_device(Box::new(DoorbellPonger::new("sink0")));
    let mut storms = Vec::new();
    if let Some(interval) = storm_interval {
        // Several generators so the bus sees interleaved sources. Each
        // sends a 32 KiB buffer per tick — the bulk traffic a kernel-
        // mediated system tunnels through its control path.
        for i in 0..4 {
            storms.push(sys.add_device(Box::new(ControlStorm::bulk(
                &format!("storm{i}"),
                interval.saturating_mul(4), // 4 devices at interval*4 = aggregate rate
                32 * 1024,
                sink.id,
            ))));
        }
    }
    sys.power_on();
    sys.run_for(SimDuration::from_millis(100));
    let p: &DoorbellPinger = sys.device_as(pinger).expect("pinger");
    assert!(p.rtt.count() > 500, "too few pings: {}", p.rtt.count());
    let sent: u64 = storms
        .iter()
        .map(|&s| {
            let st: &ControlStorm = sys.device_as(s).expect("storm");
            st.sent
        })
        .sum();
    obs.dump(&sys);
    (p.rtt.mean(), p.rtt.percentile(99.0), sent)
}

fn main() {
    let obs = ObsArgs::from_env();
    println!("E6: data-plane doorbell RTT under rising control-plane load");
    println!("    (doorbell ping-pong every 20us; storm = 32KiB buffers over the");
    println!("     control path, as a kernel-mediated system would move them)");
    println!();
    let mut t = Table::new(&[
        "control load",
        "split mean",
        "split p99",
        "conflated mean",
        "conflated p99",
        "p99 blowup",
    ]);
    // Aggregate bulk rates; the shared link carries each message twice
    // (ingress + egress), so its 2.5 GB/s raw rate saturates at ~1.25 GB/s
    // of offered bulk. The top load runs at ~96% utilization — past that
    // an open-loop storm diverges, which is exactly the failure mode a
    // conflated interconnect invites.
    let loads: &[(&str, Option<SimDuration>)] = &[
        ("none", None),
        ("0.1 GB/s", Some(SimDuration::from_micros(312))),
        ("0.3 GB/s", Some(SimDuration::from_micros(104))),
        ("0.6 GB/s", Some(SimDuration::from_micros(52))),
    ];
    for (label, interval) in loads {
        let (sm, sp, _) = run(*interval, false, &obs);
        let (cm, cp, _) = run(*interval, true, &obs);
        t.row_strings(vec![
            label.to_string(),
            sm.to_string(),
            sp.to_string(),
            cm.to_string(),
            cp.to_string(),
            format!("{:.2}x", cp.as_nanos() as f64 / sp.as_nanos().max(1) as f64),
        ]);
    }
    t.print();
    println!();
    println!("expected shape: split-plane doorbell latency is flat regardless of");
    println!("control load; the conflated interconnect drags data-plane p99 up");
    println!("with every control message it carries.");
}
