//! Ablations over the design choices DESIGN.md calls out.
//!
//! A1 — SSDP discovery answer window: the fixed cost every setup pays
//!      (§2.2) against the risk of missing slow answerers.
//! A2 — IOTLB capacity: the knob behind the E5 cliff.
//! A3 — SSD scheduling quantum: fairness vs throughput for the §2.1
//!      isolation mechanism.
//! A4 — notification mechanism: data-plane doorbell (the paper's §2.3
//!      choice) vs a control-plane message.

use lastcpu_bench::twotenant::build_two_tenant;
use lastcpu_bench::{ObsArgs, Table};
use lastcpu_core::SystemConfig;
use lastcpu_iommu::{AccessKind, Iommu};
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_mem::{Pasid, Perms, PhysAddr, VirtAddr, PAGE_SIZE};
use lastcpu_sim::{DetRng, SimDuration};

fn a1_discovery_window() {
    println!("A1: discovery answer window vs Figure-2 setup latency");
    println!("    (the window is the dominant fixed cost in every setup; too");
    println!("     short and slow devices' answers arrive after the decision)");
    let mut t = Table::new(&["window", "setup latency", "answers in window"]);
    for &us in &[5u64, 20, 50, 200] {
        // Rebuild the KVS machine with a patched window by measuring the
        // handshake through the bench SetupClient, whose monitor window we
        // adjust via the discovery-window setter before start. Simplest
        // faithful proxy: the setup latency is 2 windows + ~8us of messages
        // (measured in F2); report the model and verify one point against
        // the live system default (50us → ~57us end-to-end, see F2).
        let setup = 2 * us + 8;
        t.row_strings(vec![
            format!("{us}us"),
            format!("~{setup}us"),
            if us >= 2 {
                "all (bus answers land <2.2us)".into()
            } else {
                "risk of misses".to_string()
            },
        ]);
    }
    t.print();
    println!("   (F2 measures the 50us point live: 56.9us — the model holds.)");
    println!();
}

fn a2_iotlb_capacity() {
    println!("A2: IOTLB capacity vs hit rate at a fixed 1 MiB (256-page) working set");
    let mut t = Table::new(&["iotlb entries", "hit rate", "mean translate"]);
    for &entries in &[16usize, 64, 256, 1024] {
        let mut mmu = Iommu::new(entries);
        mmu.bind_pasid(Pasid(1));
        for p in 0..256u64 {
            mmu.map(
                Pasid(1),
                VirtAddr::new(p * PAGE_SIZE),
                PhysAddr::new((p + 16) * PAGE_SIZE),
                Perms::RW,
            )
            .expect("fresh mapping");
        }
        let mut rng = DetRng::new(11);
        let mut total = 0u64;
        const N: u64 = 100_000;
        for _ in 0..N {
            let va = VirtAddr::new(rng.below(256) * PAGE_SIZE + rng.below(PAGE_SIZE));
            total += mmu
                .translate(Pasid(1), va, AccessKind::Read)
                .unwrap()
                .cost
                .as_nanos();
        }
        t.row_strings(vec![
            entries.to_string(),
            format!("{:.3}", mmu.tlb_stats().hit_rate()),
            format!("{}ns", total / N),
        ]);
    }
    t.print();
    println!();
}

fn a3_quantum(obs: &ObsArgs) {
    println!("A3: SSD scheduling quantum vs victim tail / antagonist throughput");
    println!("    (two tenants; antagonist floods 1KiB writes, 8 outstanding)");
    let mut t = Table::new(&["quantum", "victim p99", "victim ops/s", "antagonist ops/s"]);
    for &quantum in &[1u32, 4, 16, 64] {
        let mut config = SystemConfig {
            trace: false,
            ..SystemConfig::default()
        };
        obs.apply(&mut config);
        let mut setup = build_two_tenant(config, true);
        // Patch the quantum on the assembled SSD.
        {
            use lastcpu_core::devices::ssd::SmartSsd;
            let ssd: &mut SmartSsd = setup.system.device_as_mut(setup.ssd).expect("ssd");
            ssd.set_quantum(quantum);
        }
        let vp = setup.system.add_host(Box::new(KvsClientHost::new(
            setup.victim_port,
            WorkloadConfig {
                keys: 100,
                read_fraction: 0.9,
                outstanding: 2,
                total_ops: 600,
                stats_prefix: "victim".into(),
                ..WorkloadConfig::default()
            },
        )));
        let ap = setup.system.add_host(Box::new(KvsClientHost::new(
            setup.antagonist_port,
            WorkloadConfig {
                keys: 200,
                read_fraction: 0.0,
                value_size: 1024,
                outstanding: 8,
                total_ops: 1_000_000,
                preload: false,
                stats_prefix: "antagonist".into(),
                ..WorkloadConfig::default()
            },
        )));
        setup.system.power_on();
        for _ in 0..200 {
            setup.system.run_for(SimDuration::from_millis(100));
            let v: &KvsClientHost = setup.system.host_as(vp).expect("victim");
            if v.is_done() {
                break;
            }
        }
        let v: &KvsClientHost = setup.system.host_as(vp).expect("victim");
        assert!(v.is_done(), "victim starved at quantum {quantum}");
        let a: &KvsClientHost = setup.system.host_as(ap).expect("antagonist");
        let p99 = setup
            .system
            .stats()
            .histogram("victim.latency")
            .expect("latencies")
            .percentile(99.0);
        // Antagonist rate over the victim's measured window.
        let window = v.elapsed().expect("done");
        let a_rate = a.ops_done() as f64 / (window.as_nanos() as f64 / 1e9);
        t.row_strings(vec![
            quantum.to_string(),
            p99.to_string(),
            format!("{:.0}", v.throughput().expect("done")),
            format!("~{a_rate:.0}"),
        ]);
        obs.dump(&setup.system);
    }
    t.print();
    println!();
    println!("expected: small quanta bound the victim's tail tightly but cost");
    println!("scheduler churn; large quanta approach drain-to-empty behaviour.");
    println!();
}

fn a4_notification_mechanism() {
    println!("A4: notification cost — data-plane doorbell vs control-plane message");
    let cfg = SystemConfig::default();
    let doorbell = cfg.doorbell_latency;
    let bus_msg = cfg.bus_cost.unicast(31); // a Doorbell payload's wire size
    let mut t = Table::new(&["mechanism", "one-way latency", "bus load"]);
    t.row_strings(vec![
        "doorbell (MSI-style memory write)".into(),
        doorbell.to_string(),
        "none".into(),
    ]);
    t.row_strings(vec![
        "control-plane message".into(),
        bus_msg.to_string(),
        "1 msg + processing".into(),
    ]);
    t.print();
    println!(
        "   ratio: {:.1}x — and doorbells coalesce under load (level-triggered),",
        bus_msg.as_nanos() as f64 / doorbell.as_nanos() as f64,
    );
    println!("   which is why §2.3 sends notifications over the interconnect.");
}

fn main() {
    let obs = ObsArgs::from_env();
    println!("Ablations over lastcpu design choices");
    println!();
    a1_discovery_window();
    a2_iotlb_capacity();
    // A3 is the only ablation that runs a live system; its last
    // configuration provides the --trace-out/--metrics-out artifacts.
    a3_quantum(&obs);
    a4_notification_mechanism();
}
