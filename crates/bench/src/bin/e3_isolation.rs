//! E3 — performance isolation between tenant contexts on a shared device.
//!
//! A victim tenant runs a light read-mostly workload; an antagonist floods
//! the same smart SSD (its own file, its own connection) with writes. §2.1
//! demands devices "provide isolation between the instances"; §1 claims
//! decentralized control "can improve performance isolation". The SSD's
//! round-robin context scheduler (quantum 4) is the isolation mechanism;
//! with it off the antagonist's connection is drained to exhaustion first.

use lastcpu_bench::twotenant::build_two_tenant;
use lastcpu_bench::{ObsArgs, Table};
use lastcpu_core::SystemConfig;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_sim::SimDuration;

fn victim_workload() -> WorkloadConfig {
    WorkloadConfig {
        keys: 100,
        theta: 0.9,
        read_fraction: 0.9,
        value_size: 128,
        outstanding: 2,
        total_ops: 800,
        preload: true,
        stats_prefix: "victim".into(),
        ..WorkloadConfig::default()
    }
}

fn antagonist_workload(outstanding: usize) -> WorkloadConfig {
    WorkloadConfig {
        keys: 200,
        theta: 0.5,
        read_fraction: 0.0, // pure writes: the heaviest flash load
        value_size: 1024,
        outstanding,
        total_ops: 1_000_000, // effectively unbounded
        preload: false,
        stats_prefix: "antagonist".into(),
        ..WorkloadConfig::default()
    }
}

/// Returns (victim p50, victim p99, victim ops/s).
fn run(
    isolation: bool,
    antagonist_outstanding: usize,
    obs: &ObsArgs,
) -> (SimDuration, SimDuration, f64) {
    let mut config = SystemConfig {
        trace: false,
        ..SystemConfig::default()
    };
    obs.apply(&mut config);
    let mut setup = build_two_tenant(config, isolation);
    let vp = setup.system.add_host(Box::new(KvsClientHost::new(
        setup.victim_port,
        victim_workload(),
    )));
    if antagonist_outstanding > 0 {
        setup.system.add_host(Box::new(KvsClientHost::new(
            setup.antagonist_port,
            antagonist_workload(antagonist_outstanding),
        )));
    }
    setup.system.power_on();
    // Run until the victim finishes (the antagonist never does).
    for _ in 0..200 {
        setup.system.run_for(SimDuration::from_millis(100));
        let v: &KvsClientHost = setup.system.host_as(vp).expect("victim");
        if v.is_done() {
            break;
        }
    }
    let v: &KvsClientHost = setup.system.host_as(vp).expect("victim");
    assert!(
        v.is_done(),
        "victim starved (isolation={isolation}, antagonist={antagonist_outstanding}): {} ops",
        v.ops_done()
    );
    let h = setup
        .system
        .stats()
        .histogram("victim.latency")
        .expect("victim latencies");
    obs.dump(&setup.system);
    (
        h.percentile(50.0),
        h.percentile(99.0),
        v.throughput().expect("done"),
    )
}

fn main() {
    let obs = ObsArgs::from_env();
    println!("E3: victim tail latency vs antagonist intensity on a shared smart SSD");
    println!("    (victim: 90% reads, 2 outstanding; antagonist: 1KiB writes)");
    println!();
    let mut t = Table::new(&[
        "antagonist depth",
        "isolation",
        "victim p50",
        "victim p99",
        "victim ops/s",
    ]);
    for &depth in &[0usize, 2, 8, 32] {
        for &iso in &[true, false] {
            let (p50, p99, tput) = run(iso, depth, &obs);
            t.row_strings(vec![
                depth.to_string(),
                if iso { "on".into() } else { "off".to_string() },
                p50.to_string(),
                p99.to_string(),
                format!("{tput:.0}"),
            ]);
        }
    }
    t.print();
    println!();
    println!("expected shape: with isolation on, victim p99 grows modestly and");
    println!("plateaus (bounded by one round-robin quantum of antagonist work);");
    println!("with isolation off it grows with antagonist queue depth.");
}
