//! E10 — rack scale-out: N CPU-less machines co-simulated under one fabric,
//! serving one sharded, replicated KVS.
//!
//! The paper's closing argument is that a machine with no CPU composes: if
//! every per-machine function is a self-managing device, a *rack* of such
//! machines is just more devices behind more links. E10 measures exactly
//! that composition:
//!
//! - **Scale-out** — aggregate throughput and end-to-end p50/p99 as the rack
//!   grows 1 → 8 machines (one closed-loop client per machine, aimed at its
//!   local shard router; keys shard over every smart-NIC frontend in the
//!   rack, so ~(M−1)/M of requests cross the modeled inter-machine links).
//! - **Replication** — the same sweep at R = 1/2/3: each PUT is acknowledged
//!   only when every replica acked, so R buys crash-durability with link
//!   and latency cost that this phase prices.
//! - **Fail-over** — a whole-machine crash mid-run. The fabric's next
//!   directory sweep withdraws the dead machine's endpoints; routers
//!   re-shard and re-dispatch in-flight work. The run audits the paper's
//!   promise: with R ≥ 2 **no acknowledged write is lost** (the replicated
//!   copy survives on a live machine), while the R = 1 control loses the
//!   victim's shard.
//! - **Retry-policy ablation** — the whole matrix repeats per router
//!   [`RetryPolicy`] arm (`static`, `adaptive`, `p2c`, `adaptive+p2c`),
//!   isolating how much of the R = 3 tail is the static-timeout retry
//!   storm versus fabric serialization (`--policies` narrows the sweep).
//!
//! Everything is virtual-time; two same-flag runs produce byte-identical
//! JSON (`scripts/ci.sh` double-runs the smoke configuration and diffs).
//! `--threads N` steps the rack on N fabric worker threads — the windowed
//! scheduler makes the results bit-identical to `--threads 1`, so CI also
//! diffs a 1-vs-4-thread pair; only wall-clock time may change.
//!
//! Writes `BENCH_e10.json` (override with `--out`); schema in
//! `EXPERIMENTS.md`. `--trace-out` dumps the *merged* rack trace of the last
//! run (sources prefixed `m{i}/`, correlation ids rack-unique, so Perfetto
//! draws cross-machine spans); `--metrics-out` dumps the fabric metrics hub.

use lastcpu_bench::Table;
use lastcpu_core::SystemConfig;
use lastcpu_fabric::FabricConfig;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::{build_rack_kvs_with_policy, RackSetup, RetryPolicy};
use lastcpu_net::PortId;
use lastcpu_sim::{export, Histogram, SimDuration};

struct Args {
    machines: Vec<usize>,
    replication: Vec<usize>,
    policies: Vec<RetryPolicy>,
    ops: u64,
    keys: u64,
    value_size: usize,
    outstanding: usize,
    read_fraction: f64,
    seed: u64,
    threads: usize,
    out: String,
    no_crash: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_list(s: &str, flag: &str) -> Vec<usize> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad {flag}: {p:?}"))
        })
        .collect()
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            machines: vec![1, 2, 4, 8],
            replication: vec![1, 2, 3],
            policies: RetryPolicy::ALL.to_vec(),
            ops: 400,
            keys: 200,
            value_size: 128,
            outstanding: 8,
            read_fraction: 0.95,
            seed: 0xE10,
            threads: 1,
            out: "BENCH_e10.json".into(),
            no_crash: false,
            trace_out: None,
            metrics_out: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = || it.next().unwrap_or_default();
            match flag.as_str() {
                "--machines" => a.machines = parse_list(&val(), "--machines"),
                "--replication" => a.replication = parse_list(&val(), "--replication"),
                "--policies" => {
                    a.policies = val()
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(|p| {
                            RetryPolicy::parse(p.trim())
                                .unwrap_or_else(|| panic!("bad --policies arm: {p:?}"))
                        })
                        .collect();
                }
                "--ops" => a.ops = val().parse().expect("--ops"),
                "--keys" => a.keys = val().parse().expect("--keys"),
                "--value-size" => a.value_size = val().parse().expect("--value-size"),
                "--outstanding" => a.outstanding = val().parse().expect("--outstanding"),
                "--read-fraction" => a.read_fraction = val().parse().expect("--read-fraction"),
                "--seed" => a.seed = val().parse().expect("--seed"),
                "--threads" => a.threads = val().parse().expect("--threads"),
                "--out" => a.out = val(),
                "--no-crash" => a.no_crash = true,
                "--trace-out" => a.trace_out = it.next(),
                "--metrics-out" => a.metrics_out = it.next(),
                _ => {} // same convention as ObsArgs: ignore unknown flags
            }
        }
        a.machines.retain(|&m| m >= 1);
        a.replication.retain(|&r| r >= 1);
        assert!(!a.machines.is_empty() && !a.replication.is_empty() && !a.policies.is_empty());
        a
    }
}

/// A rack under test: the shared [`RackSetup`] plus one client per machine.
struct Bench {
    setup: RackSetup,
    client_ports: Vec<PortId>,
}

impl Bench {
    fn build(
        args: &Args,
        machines: usize,
        replication: usize,
        policy: RetryPolicy,
        read_fraction: f64,
    ) -> Bench {
        let mut setup = build_rack_kvs_with_policy(
            FabricConfig {
                threads: args.threads,
                ..FabricConfig::default()
            },
            machines,
            replication,
            SystemConfig {
                seed: args.seed,
                trace: args.trace_out.is_some(),
                ..SystemConfig::default()
            },
            policy,
        );
        let mut client_ports = Vec::new();
        for i in 0..machines {
            let m = setup.machines[i];
            let router_port = setup.router_ports[i];
            let port = setup
                .fabric
                .machine_mut(m)
                .add_host(Box::new(KvsClientHost::new(
                    router_port,
                    WorkloadConfig {
                        keys: args.keys,
                        theta: 0.99,
                        read_fraction,
                        value_size: args.value_size,
                        outstanding: args.outstanding,
                        total_ops: args.ops,
                        preload: true,
                        stats_prefix: format!("c{i}"),
                        ..WorkloadConfig::default()
                    },
                )));
            client_ports.push(port);
        }
        Bench {
            setup,
            client_ports,
        }
    }

    fn client(&self, i: usize) -> &KvsClientHost {
        self.setup
            .fabric
            .machine(self.setup.machines[i])
            .host_as(self.client_ports[i])
            .expect("client present")
    }

    fn alive(&self, i: usize) -> bool {
        !self.setup.fabric.is_dead(self.setup.machines[i])
    }

    fn all_alive_done(&self) -> bool {
        (0..self.client_ports.len()).all(|i| !self.alive(i) || self.client(i).is_done())
    }

    /// Runs in 10 ms slices until every (alive) client finishes or `cap`
    /// virtual time elapses; returns whether all finished.
    fn run_to_completion(&mut self, cap: SimDuration) -> bool {
        let deadline = self.setup.fabric.now() + cap;
        while self.setup.fabric.now() < deadline {
            self.setup.fabric.run_for(SimDuration::from_millis(10));
            if self.all_alive_done() {
                return true;
            }
        }
        self.all_alive_done()
    }

    /// Runs until every (alive) client entered its measured phase.
    fn run_to_measuring(&mut self, cap: SimDuration) -> bool {
        let deadline = self.setup.fabric.now() + cap;
        while self.setup.fabric.now() < deadline {
            self.setup.fabric.run_for(SimDuration::from_millis(10));
            let measuring = (0..self.client_ports.len())
                .all(|i| !self.alive(i) || self.client(i).started_at().is_some());
            if measuring {
                return true;
            }
        }
        false
    }

    /// Merged end-to-end latency histogram over all alive clients.
    fn latency(&self) -> Histogram {
        let mut h = Histogram::new();
        for i in 0..self.client_ports.len() {
            if !self.alive(i) {
                continue;
            }
            let hub = self.setup.fabric.machine(self.setup.machines[i]).stats();
            if let Some(c) = hub.histogram(&format!("c{i}.latency")) {
                h.merge(&c);
            }
        }
        h
    }

    fn sum_clients(&self, f: impl Fn(&KvsClientHost) -> u64) -> u64 {
        (0..self.client_ports.len())
            .filter(|&i| self.alive(i))
            .map(|i| f(self.client(i)))
            .sum()
    }

    fn sum_router_stat(&self, f: impl Fn(lastcpu_kvs::RouterStats) -> u64) -> u64 {
        (0..self.client_ports.len())
            .filter(|&i| self.alive(i))
            .map(|i| f(self.setup.router(i).stats()))
            .sum()
    }

    /// Aggregate throughput: sum of per-client closed-loop rates.
    fn agg_ops_per_sec(&self) -> f64 {
        (0..self.client_ports.len())
            .filter(|&i| self.alive(i))
            .filter_map(|i| self.client(i).throughput())
            .sum()
    }
}

/// One scale-out cell.
struct ScaleCell {
    machines: usize,
    replication: usize,
    policy: RetryPolicy,
    threads: usize,
    done: bool,
    ops: u64,
    agg_ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    fabric_bytes: u64,
    frames_forwarded: u64,
    failovers: u64,
    give_ups: u64,
}

impl ScaleCell {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"machines\": {}, \"replication\": {}, \"policy\": \"{}\", ",
                "\"threads\": {}, \"done\": {}, \"ops\": {}, ",
                "\"agg_ops_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, ",
                "\"fabric_bytes\": {}, \"frames_forwarded\": {}, ",
                "\"failovers\": {}, \"give_ups\": {}}}"
            ),
            self.machines,
            self.replication,
            self.policy,
            self.threads,
            self.done,
            self.ops,
            self.agg_ops_per_sec,
            self.p50_us,
            self.p99_us,
            self.fabric_bytes,
            self.frames_forwarded,
            self.failovers,
            self.give_ups,
        )
    }
}

/// One crash-scenario cell.
struct CrashCell {
    machines: usize,
    replication: usize,
    policy: RetryPolicy,
    threads: usize,
    crash_at_ms: f64,
    done: bool,
    ops: u64,
    timeouts: u64,
    unavailable: u64,
    errors: u64,
    give_ups: u64,
    failovers: u64,
    acked_keys: u64,
    lost_acked_keys: u64,
}

impl CrashCell {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"machines\": {}, \"replication\": {}, \"policy\": \"{}\", ",
                "\"threads\": {}, \"crash_at_ms\": {:.3}, ",
                "\"done\": {}, \"ops\": {}, \"timeouts\": {}, \"unavailable\": {}, ",
                "\"errors\": {}, \"give_ups\": {}, \"failovers\": {}, ",
                "\"acked_keys\": {}, \"lost_acked_keys\": {}}}"
            ),
            self.machines,
            self.replication,
            self.policy,
            self.threads,
            self.crash_at_ms,
            self.done,
            self.ops,
            self.timeouts,
            self.unavailable,
            self.errors,
            self.give_ups,
            self.failovers,
            self.acked_keys,
            self.lost_acked_keys,
        )
    }
}

const RUN_CAP: SimDuration = SimDuration::from_secs(60);

fn run_scale_cell(
    args: &Args,
    machines: usize,
    replication: usize,
    policy: RetryPolicy,
) -> ScaleCell {
    let mut b = Bench::build(args, machines, replication, policy, args.read_fraction);
    b.setup.fabric.power_on();
    let done = b.run_to_completion(RUN_CAP);
    let lat = b.latency();
    ScaleCell {
        machines,
        replication,
        policy,
        threads: args.threads,
        done,
        ops: b.sum_clients(|c| c.ops_done()),
        agg_ops_per_sec: b.agg_ops_per_sec(),
        p50_us: lat.percentile(50.0).as_nanos() as f64 / 1_000.0,
        p99_us: lat.percentile(99.0).as_nanos() as f64 / 1_000.0,
        fabric_bytes: b.setup.fabric.metrics().counter("fabric.bytes"),
        frames_forwarded: b.setup.fabric.metrics().counter("fabric.frames_forwarded"),
        failovers: b.sum_router_stat(|s| s.failovers),
        give_ups: b.sum_router_stat(|s| s.give_ups),
    }
}

fn run_crash_cell(
    args: &Args,
    machines: usize,
    replication: usize,
    policy: RetryPolicy,
) -> (CrashCell, Bench) {
    // Pure-read measured phase: the preload's acknowledged PUTs are the
    // audited set, and nothing re-writes a lost key afterwards, so the
    // R = 1 control genuinely shows the loss.
    let mut b = Bench::build(args, machines, replication, policy, 1.0);
    b.setup.fabric.power_on();
    // Let every machine finish loading, then kill machine 1 (never the
    // machine a key-holding audit would trivially excuse — any index > 0
    // works; "m1" matches the fault-plan convention used in fabric tests).
    let loaded = b.run_to_measuring(RUN_CAP);
    let crash_at = b.setup.fabric.now();
    let victim = b.setup.machines[1];
    b.setup.fabric.kill_machine(victim);
    let done = loaded && b.run_to_completion(RUN_CAP);
    let acked_keys = (0..machines)
        .filter(|&i| b.alive(i))
        .map(|i| b.setup.router(i).acked_put_keys().len() as u64)
        .sum();
    let cell = CrashCell {
        machines,
        replication,
        policy,
        threads: args.threads,
        crash_at_ms: crash_at.as_nanos() as f64 / 1e6,
        done,
        ops: b.sum_clients(|c| c.ops_done()),
        timeouts: b.sum_clients(|c| c.timeouts()),
        unavailable: b.sum_clients(|c| c.unavailable_rejections()),
        errors: b.sum_clients(|c| c.errors()),
        give_ups: b.sum_router_stat(|s| s.give_ups),
        failovers: b.sum_router_stat(|s| s.failovers),
        acked_keys,
        lost_acked_keys: b.setup.lost_acked_keys() as u64,
    };
    (cell, b)
}

fn main() {
    let args = Args::parse();
    println!("E10: rack scale-out — sharded, replicated CPU-less KVS over the fabric");
    println!(
        "    (machines {:?}, replication {:?}, {} ops/client, {} keys, {}-B values, seed {:#x})",
        args.machines, args.replication, args.ops, args.keys, args.value_size, args.seed
    );
    println!(
        "    retry-policy arms: {}",
        args.policies
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!();

    // --- Phase A/B: the policy x machines x replication sweep -------------
    let mut t = Table::new(&[
        "policy",
        "machines",
        "R",
        "ops",
        "agg ops/s",
        "p50 us",
        "p99 us",
        "fabric MB",
        "failovers",
    ]);
    let mut cells: Vec<ScaleCell> = Vec::new();
    for &policy in &args.policies {
        for &m in &args.machines {
            for &r in &args.replication {
                if r > m {
                    continue; // cannot hold R distinct replicas on < R machines
                }
                let c = run_scale_cell(&args, m, r, policy);
                t.row_strings(vec![
                    policy.name().to_string(),
                    m.to_string(),
                    r.to_string(),
                    c.ops.to_string(),
                    format!("{:.0}", c.agg_ops_per_sec),
                    format!("{:.1}", c.p50_us),
                    format!("{:.1}", c.p99_us),
                    format!("{:.2}", c.fabric_bytes as f64 / 1e6),
                    c.failovers.to_string(),
                ]);
                cells.push(c);
            }
        }
    }
    t.print();

    // --- Phase C: machine-crash fail-over --------------------------------
    let crash_m = *args.machines.iter().max().expect("non-empty");
    let mut crash_cells: Vec<CrashCell> = Vec::new();
    let mut last_bench: Option<Bench> = None;
    if !args.no_crash && crash_m >= 2 {
        println!();
        println!("fail-over: kill m1 after load, audit acknowledged writes");
        let mut ct = Table::new(&[
            "policy",
            "machines",
            "R",
            "crash ms",
            "ops",
            "timeouts",
            "failovers",
            "acked",
            "lost acked",
        ]);
        for &policy in &args.policies {
            for &r in &args.replication {
                if r > crash_m {
                    continue;
                }
                let (c, b) = run_crash_cell(&args, crash_m, r, policy);
                ct.row_strings(vec![
                    policy.name().to_string(),
                    c.machines.to_string(),
                    c.replication.to_string(),
                    format!("{:.2}", c.crash_at_ms),
                    c.ops.to_string(),
                    c.timeouts.to_string(),
                    c.failovers.to_string(),
                    c.acked_keys.to_string(),
                    c.lost_acked_keys.to_string(),
                ]);
                crash_cells.push(c);
                last_bench = Some(b);
            }
        }
        ct.print();
    }

    // --- Artifacts --------------------------------------------------------
    if let Some(b) = &last_bench {
        if let Some(path) = &args.trace_out {
            let merged = b.setup.fabric.merged_trace();
            let body = if path.ends_with(".json") {
                export::trace_chrome(&merged)
            } else {
                export::trace_jsonl(&merged)
            };
            match std::fs::write(path, body) {
                Ok(()) => eprintln!("wrote merged rack trace to {path}"),
                Err(e) => eprintln!("failed to write trace to {path}: {e}"),
            }
        }
        if let Some(path) = &args.metrics_out {
            let body = if path.ends_with(".json") {
                export::metrics_json(b.setup.fabric.metrics())
            } else {
                export::metrics_prometheus(b.setup.fabric.metrics())
            };
            match std::fs::write(path, body) {
                Ok(()) => eprintln!("wrote fabric metrics to {path}"),
                Err(e) => eprintln!("failed to write metrics to {path}: {e}"),
            }
        }
    }

    // --- JSON -------------------------------------------------------------
    let mut body = String::from("{\n  \"experiment\": \"e10\",\n  \"schema_version\": 3,\n");
    body.push_str(&format!(
        concat!(
            "  \"config\": {{\"machines\": {:?}, \"replication\": {:?}, ",
            "\"policies\": [{}], ",
            "\"ops_per_client\": {}, \"keys\": {}, \"value_size\": {}, ",
            "\"outstanding\": {}, \"read_fraction\": {:.3}, \"seed\": {}, ",
            "\"threads\": {}}},\n"
        ),
        args.machines,
        args.replication,
        args.policies
            .iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(", "),
        args.ops,
        args.keys,
        args.value_size,
        args.outstanding,
        args.read_fraction,
        args.seed,
        args.threads
    ));
    body.push_str("  \"scaling\": [\n");
    for (i, c) in cells.iter().enumerate() {
        body.push_str(&format!(
            "    {}{}\n",
            c.json(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n  \"crash\": [\n");
    for (i, c) in crash_cells.iter().enumerate() {
        body.push_str(&format!(
            "    {}{}\n",
            c.json(),
            if i + 1 < crash_cells.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&args.out, &body) {
        Ok(()) => println!("\nwrote {}", args.out),
        Err(e) => eprintln!("\nfailed to write {}: {e}", args.out),
    }

    println!();
    println!("expected shape: aggregate throughput grows with machines (each");
    println!("machine adds a frontend and a client); higher R costs extra link");
    println!("crossings per PUT; in the crash runs, R>=2 reports 0 lost acked");
    println!("writes while the R=1 control loses the dead machine's shard;");
    println!("the adaptive+p2c arm collapses the static arm's 8xR=3 retry-");
    println!("storm tail (p99, failovers) at equal or better throughput.");
}
