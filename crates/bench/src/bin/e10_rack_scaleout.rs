//! E10 — rack scale-out: N CPU-less machines co-simulated under one fabric,
//! serving one sharded, replicated KVS.
//!
//! The paper's closing argument is that a machine with no CPU composes: if
//! every per-machine function is a self-managing device, a *rack* of such
//! machines is just more devices behind more links. E10 measures exactly
//! that composition:
//!
//! - **Scale-out** — aggregate throughput and end-to-end p50/p99 as the rack
//!   grows 8 → 128 machines (one closed-loop client per machine, aimed at
//!   its local shard router; keys shard over every smart-NIC frontend in
//!   the rack, so ~(M−1)/M of requests cross the modeled inter-machine
//!   links).
//! - **Topology** — the same sweep over real wiring graphs: `flat` (the
//!   historical single spine), `leaf-spine`, and a k-ary `fat-tree`, each
//!   at oversubscription ratios from `--oversub`. Every cell reports
//!   per-link utilization (max/mean and the hottest link by busy time), so
//!   congestion is attributable to actual wires. See docs/TOPOLOGY.md.
//! - **Replication** — each PUT is acknowledged only when every replica
//!   acked, so R buys crash-durability with link and latency cost that
//!   this phase prices (`--replication`; default R = 2).
//! - **Fail-over at every cell** — a whole-machine crash mid-run, per
//!   (topology, oversubscription, machine-count) cell. The fabric's next
//!   directory sweep withdraws the dead machine's endpoints; routers
//!   re-shard and re-dispatch in-flight work. The run audits the paper's
//!   promise: with R ≥ 2 **no acknowledged write is lost** (the replicated
//!   copy survives on a live machine), while an R = 1 control loses the
//!   victim's shard.
//! - **Retry-policy ablation** — `--policies` repeats the matrix per router
//!   [`RetryPolicy`] arm (`static`, `adaptive`, `p2c`, `adaptive+p2c`);
//!   the default is the shipping `adaptive+p2c` arm (the full ablation is
//!   recorded in EXPERIMENTS.md E10).
//!
//! Everything is virtual-time; two same-flag runs produce byte-identical
//! JSON (`scripts/ci.sh` double-runs the smoke configuration and diffs,
//! including a 16-machine leaf-spine arm). `--threads N` steps the rack on
//! N fabric worker threads — the windowed scheduler makes the results
//! bit-identical to `--threads 1`, so CI also diffs a 1-vs-4-thread pair;
//! only wall-clock time may change.
//!
//! Writes `BENCH_e10.json` (override with `--out`); schema v4 in
//! `EXPERIMENTS.md`. `--trace-out` dumps the *merged* rack trace of the last
//! run (sources prefixed `m{i}/`, correlation ids rack-unique, so Perfetto
//! draws cross-machine spans); `--metrics-out` dumps the fabric metrics hub.

use lastcpu_bench::Table;
use lastcpu_core::SystemConfig;
use lastcpu_fabric::{FabricConfig, TopoKind, TopologyConfig};
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::{build_rack_kvs_with_policy, RackSetup, RetryPolicy};
use lastcpu_net::PortId;
use lastcpu_sim::{export, Histogram, SimDuration};

struct Args {
    machines: Vec<usize>,
    replication: Vec<usize>,
    policies: Vec<RetryPolicy>,
    topologies: Vec<TopoKind>,
    oversub: Vec<u64>,
    ops: u64,
    keys: u64,
    value_size: usize,
    outstanding: usize,
    read_fraction: f64,
    seed: u64,
    threads: usize,
    out: String,
    no_crash: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_list(s: &str, flag: &str) -> Vec<usize> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad {flag}: {p:?}"))
        })
        .collect()
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            machines: vec![8, 16, 32, 64, 128],
            replication: vec![2],
            policies: vec![RetryPolicy::parse("adaptive+p2c").expect("default policy")],
            topologies: vec![
                TopoKind::Flat,
                TopoKind::parse("leaf-spine").expect("default leaf-spine"),
                TopoKind::parse("fat-tree").expect("default fat-tree"),
            ],
            oversub: vec![1, 4],
            ops: 400,
            keys: 200,
            value_size: 128,
            outstanding: 8,
            read_fraction: 0.95,
            seed: 0xE10,
            threads: 1,
            out: "BENCH_e10.json".into(),
            no_crash: false,
            trace_out: None,
            metrics_out: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = || it.next().unwrap_or_default();
            match flag.as_str() {
                "--machines" => a.machines = parse_list(&val(), "--machines"),
                "--replication" => a.replication = parse_list(&val(), "--replication"),
                "--policies" => {
                    a.policies = val()
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(|p| {
                            RetryPolicy::parse(p.trim())
                                .unwrap_or_else(|| panic!("bad --policies arm: {p:?}"))
                        })
                        .collect();
                }
                "--topologies" => {
                    a.topologies = val()
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(|p| {
                            TopoKind::parse(p.trim())
                                .unwrap_or_else(|e| panic!("bad --topologies arm: {e}"))
                        })
                        .collect();
                }
                "--oversub" => {
                    a.oversub = parse_list(&val(), "--oversub")
                        .into_iter()
                        .map(|o| o.max(1) as u64)
                        .collect();
                }
                "--ops" => a.ops = val().parse().expect("--ops"),
                "--keys" => a.keys = val().parse().expect("--keys"),
                "--value-size" => a.value_size = val().parse().expect("--value-size"),
                "--outstanding" => a.outstanding = val().parse().expect("--outstanding"),
                "--read-fraction" => a.read_fraction = val().parse().expect("--read-fraction"),
                "--seed" => a.seed = val().parse().expect("--seed"),
                "--threads" => a.threads = val().parse().expect("--threads"),
                "--out" => a.out = val(),
                "--no-crash" => a.no_crash = true,
                "--trace-out" => a.trace_out = it.next(),
                "--metrics-out" => a.metrics_out = it.next(),
                _ => {} // same convention as ObsArgs: ignore unknown flags
            }
        }
        a.machines.retain(|&m| m >= 1);
        a.replication.retain(|&r| r >= 1);
        assert!(
            !a.machines.is_empty()
                && !a.replication.is_empty()
                && !a.policies.is_empty()
                && !a.topologies.is_empty()
                && !a.oversub.is_empty()
        );
        a
    }

    /// The (topology, oversub) cells of the matrix. A flat fabric has no
    /// oversubscription knob (one implicit infinite spine), so it runs
    /// once regardless of `--oversub`.
    fn topo_cells(&self) -> Vec<(TopoKind, u64)> {
        let mut cells = Vec::new();
        for &kind in &self.topologies {
            if matches!(kind, TopoKind::Flat) {
                cells.push((kind, 1));
            } else {
                for &o in &self.oversub {
                    cells.push((kind, o));
                }
            }
        }
        cells
    }
}

/// A rack under test: the shared [`RackSetup`] plus one client per machine.
struct Bench {
    setup: RackSetup,
    client_ports: Vec<PortId>,
}

impl Bench {
    #[allow(clippy::too_many_arguments)]
    fn build(
        args: &Args,
        machines: usize,
        replication: usize,
        policy: RetryPolicy,
        topology: TopoKind,
        oversub: u64,
        read_fraction: f64,
    ) -> Bench {
        let mut setup = build_rack_kvs_with_policy(
            FabricConfig {
                threads: args.threads,
                topology: TopologyConfig {
                    kind: topology,
                    oversub,
                },
                ..FabricConfig::default()
            },
            machines,
            replication,
            SystemConfig {
                seed: args.seed,
                trace: args.trace_out.is_some(),
                ..SystemConfig::default()
            },
            policy,
        );
        let mut client_ports = Vec::new();
        for i in 0..machines {
            let m = setup.machines[i];
            let router_port = setup.router_ports[i];
            let port = setup
                .fabric
                .machine_mut(m)
                .add_host(Box::new(KvsClientHost::new(
                    router_port,
                    WorkloadConfig {
                        keys: args.keys,
                        theta: 0.99,
                        read_fraction,
                        value_size: args.value_size,
                        outstanding: args.outstanding,
                        total_ops: args.ops,
                        preload: true,
                        stats_prefix: format!("c{i}"),
                        ..WorkloadConfig::default()
                    },
                )));
            client_ports.push(port);
        }
        Bench {
            setup,
            client_ports,
        }
    }

    fn client(&self, i: usize) -> &KvsClientHost {
        self.setup
            .fabric
            .machine(self.setup.machines[i])
            .host_as(self.client_ports[i])
            .expect("client present")
    }

    fn alive(&self, i: usize) -> bool {
        !self.setup.fabric.is_dead(self.setup.machines[i])
    }

    fn all_alive_done(&self) -> bool {
        (0..self.client_ports.len()).all(|i| !self.alive(i) || self.client(i).is_done())
    }

    /// Runs in 10 ms slices until every (alive) client finishes or `cap`
    /// virtual time elapses; returns whether all finished.
    fn run_to_completion(&mut self, cap: SimDuration) -> bool {
        let deadline = self.setup.fabric.now() + cap;
        while self.setup.fabric.now() < deadline {
            self.setup.fabric.run_for(SimDuration::from_millis(10));
            if self.all_alive_done() {
                return true;
            }
        }
        self.all_alive_done()
    }

    /// Runs until every (alive) client entered its measured phase.
    fn run_to_measuring(&mut self, cap: SimDuration) -> bool {
        let deadline = self.setup.fabric.now() + cap;
        while self.setup.fabric.now() < deadline {
            self.setup.fabric.run_for(SimDuration::from_millis(10));
            let measuring = (0..self.client_ports.len())
                .all(|i| !self.alive(i) || self.client(i).started_at().is_some());
            if measuring {
                return true;
            }
        }
        false
    }

    /// Merged end-to-end latency histogram over all alive clients.
    fn latency(&self) -> Histogram {
        let mut h = Histogram::new();
        for i in 0..self.client_ports.len() {
            if !self.alive(i) {
                continue;
            }
            let hub = self.setup.fabric.machine(self.setup.machines[i]).stats();
            if let Some(c) = hub.histogram(&format!("c{i}.latency")) {
                h.merge(&c);
            }
        }
        h
    }

    fn sum_clients(&self, f: impl Fn(&KvsClientHost) -> u64) -> u64 {
        (0..self.client_ports.len())
            .filter(|&i| self.alive(i))
            .map(|i| f(self.client(i)))
            .sum()
    }

    fn sum_router_stat(&self, f: impl Fn(lastcpu_kvs::RouterStats) -> u64) -> u64 {
        (0..self.client_ports.len())
            .filter(|&i| self.alive(i))
            .map(|i| f(self.setup.router(i).stats()))
            .sum()
    }

    /// Aggregate throughput: sum of per-client closed-loop rates.
    fn agg_ops_per_sec(&self) -> f64 {
        (0..self.client_ports.len())
            .filter(|&i| self.alive(i))
            .filter_map(|i| self.client(i).throughput())
            .sum()
    }

    /// Per-link utilization over the whole run (`busy_ns / elapsed_ns`):
    /// `(total links, used links, max, mean over used, hottest link name)`.
    fn link_utilization(&self) -> (usize, usize, f64, f64, String) {
        let topo = self.setup.fabric.topology();
        let elapsed = self.setup.fabric.now().as_nanos();
        if elapsed == 0 {
            return (topo.num_links(), 0, 0.0, 0.0, String::new());
        }
        let (mut used, mut max, mut sum, mut hot) = (0usize, 0.0f64, 0.0f64, String::new());
        for l in topo.links() {
            if l.frames == 0 {
                continue;
            }
            used += 1;
            let util = l.busy_ns as f64 / elapsed as f64;
            sum += util;
            if util > max {
                max = util;
                hot = l.name.to_string();
            }
        }
        let mean = if used > 0 { sum / used as f64 } else { 0.0 };
        (topo.num_links(), used, max, mean, hot)
    }
}

/// One scale-out cell.
struct ScaleCell {
    machines: usize,
    replication: usize,
    policy: RetryPolicy,
    topology: TopoKind,
    oversub: u64,
    threads: usize,
    done: bool,
    ops: u64,
    agg_ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    fabric_bytes: u64,
    frames_forwarded: u64,
    failovers: u64,
    give_ups: u64,
    links: usize,
    links_used: usize,
    max_link_util: f64,
    mean_link_util: f64,
    hot_link: String,
}

impl ScaleCell {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"machines\": {}, \"replication\": {}, \"policy\": \"{}\", ",
                "\"topology\": \"{}\", \"oversub\": {}, ",
                "\"threads\": {}, \"done\": {}, \"ops\": {}, ",
                "\"agg_ops_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, ",
                "\"fabric_bytes\": {}, \"frames_forwarded\": {}, ",
                "\"failovers\": {}, \"give_ups\": {}, ",
                "\"links\": {}, \"links_used\": {}, ",
                "\"max_link_util\": {:.6}, \"mean_link_util\": {:.6}, ",
                "\"hot_link\": \"{}\"}}"
            ),
            self.machines,
            self.replication,
            self.policy,
            self.topology,
            self.oversub,
            self.threads,
            self.done,
            self.ops,
            self.agg_ops_per_sec,
            self.p50_us,
            self.p99_us,
            self.fabric_bytes,
            self.frames_forwarded,
            self.failovers,
            self.give_ups,
            self.links,
            self.links_used,
            self.max_link_util,
            self.mean_link_util,
            self.hot_link,
        )
    }
}

/// One crash-scenario cell.
struct CrashCell {
    machines: usize,
    replication: usize,
    policy: RetryPolicy,
    topology: TopoKind,
    oversub: u64,
    threads: usize,
    crash_at_ms: f64,
    done: bool,
    ops: u64,
    timeouts: u64,
    unavailable: u64,
    errors: u64,
    give_ups: u64,
    failovers: u64,
    acked_keys: u64,
    lost_acked_keys: u64,
}

impl CrashCell {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"machines\": {}, \"replication\": {}, \"policy\": \"{}\", ",
                "\"topology\": \"{}\", \"oversub\": {}, ",
                "\"threads\": {}, \"crash_at_ms\": {:.3}, ",
                "\"done\": {}, \"ops\": {}, \"timeouts\": {}, \"unavailable\": {}, ",
                "\"errors\": {}, \"give_ups\": {}, \"failovers\": {}, ",
                "\"acked_keys\": {}, \"lost_acked_keys\": {}}}"
            ),
            self.machines,
            self.replication,
            self.policy,
            self.topology,
            self.oversub,
            self.threads,
            self.crash_at_ms,
            self.done,
            self.ops,
            self.timeouts,
            self.unavailable,
            self.errors,
            self.give_ups,
            self.failovers,
            self.acked_keys,
            self.lost_acked_keys,
        )
    }
}

const RUN_CAP: SimDuration = SimDuration::from_secs(60);

fn run_scale_cell(
    args: &Args,
    machines: usize,
    replication: usize,
    policy: RetryPolicy,
    topology: TopoKind,
    oversub: u64,
) -> ScaleCell {
    let mut b = Bench::build(
        args,
        machines,
        replication,
        policy,
        topology,
        oversub,
        args.read_fraction,
    );
    b.setup.fabric.power_on();
    let done = b.run_to_completion(RUN_CAP);
    let lat = b.latency();
    let (links, links_used, max_util, mean_util, hot_link) = b.link_utilization();
    ScaleCell {
        machines,
        replication,
        policy,
        topology,
        oversub,
        threads: args.threads,
        done,
        ops: b.sum_clients(|c| c.ops_done()),
        agg_ops_per_sec: b.agg_ops_per_sec(),
        p50_us: lat.percentile(50.0).as_nanos() as f64 / 1_000.0,
        p99_us: lat.percentile(99.0).as_nanos() as f64 / 1_000.0,
        fabric_bytes: b.setup.fabric.metrics().counter("fabric.bytes"),
        frames_forwarded: b.setup.fabric.metrics().counter("fabric.frames_forwarded"),
        failovers: b.sum_router_stat(|s| s.failovers),
        give_ups: b.sum_router_stat(|s| s.give_ups),
        links,
        links_used,
        max_link_util: max_util,
        mean_link_util: mean_util,
        hot_link,
    }
}

fn run_crash_cell(
    args: &Args,
    machines: usize,
    replication: usize,
    policy: RetryPolicy,
    topology: TopoKind,
    oversub: u64,
) -> (CrashCell, Bench) {
    // Pure-read measured phase: the preload's acknowledged PUTs are the
    // audited set, and nothing re-writes a lost key afterwards, so the
    // R = 1 control genuinely shows the loss.
    let mut b = Bench::build(args, machines, replication, policy, topology, oversub, 1.0);
    b.setup.fabric.power_on();
    // Let every machine finish loading, then kill machine 1 (never the
    // machine a key-holding audit would trivially excuse — any index > 0
    // works; "m1" matches the fault-plan convention used in fabric tests).
    let loaded = b.run_to_measuring(RUN_CAP);
    let crash_at = b.setup.fabric.now();
    let victim = b.setup.machines[1];
    b.setup.fabric.kill_machine(victim);
    let done = loaded && b.run_to_completion(RUN_CAP);
    let acked_keys = (0..machines)
        .filter(|&i| b.alive(i))
        .map(|i| b.setup.router(i).acked_put_keys().len() as u64)
        .sum();
    let cell = CrashCell {
        machines,
        replication,
        policy,
        topology,
        oversub,
        threads: args.threads,
        crash_at_ms: crash_at.as_nanos() as f64 / 1e6,
        done,
        ops: b.sum_clients(|c| c.ops_done()),
        timeouts: b.sum_clients(|c| c.timeouts()),
        unavailable: b.sum_clients(|c| c.unavailable_rejections()),
        errors: b.sum_clients(|c| c.errors()),
        give_ups: b.sum_router_stat(|s| s.give_ups),
        failovers: b.sum_router_stat(|s| s.failovers),
        acked_keys,
        lost_acked_keys: b.setup.lost_acked_keys() as u64,
    };
    (cell, b)
}

fn main() {
    let args = Args::parse();
    let topo_cells = args.topo_cells();
    println!("E10: rack scale-out — sharded, replicated CPU-less KVS over the fabric");
    println!(
        "    (machines {:?}, replication {:?}, {} ops/client, {} keys, {}-B values, seed {:#x})",
        args.machines, args.replication, args.ops, args.keys, args.value_size, args.seed
    );
    println!(
        "    topologies: {} | retry-policy arms: {}",
        topo_cells
            .iter()
            .map(|(t, o)| format!("{t}/x{o}"))
            .collect::<Vec<_>>()
            .join(", "),
        args.policies
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!();

    // --- Phase A/B: policy x topology x machines x replication ------------
    let mut t = Table::new(&[
        "policy",
        "topo",
        "ov",
        "machines",
        "R",
        "ops",
        "agg ops/s",
        "p50 us",
        "p99 us",
        "fabric MB",
        "links",
        "max util",
        "hot link",
    ]);
    let mut cells: Vec<ScaleCell> = Vec::new();
    for &policy in &args.policies {
        for &(topo, oversub) in &topo_cells {
            for &m in &args.machines {
                for &r in &args.replication {
                    if r > m {
                        continue; // cannot hold R distinct replicas on < R machines
                    }
                    let c = run_scale_cell(&args, m, r, policy, topo, oversub);
                    t.row_strings(vec![
                        policy.name().to_string(),
                        topo.to_string(),
                        format!("{oversub}"),
                        m.to_string(),
                        r.to_string(),
                        c.ops.to_string(),
                        format!("{:.0}", c.agg_ops_per_sec),
                        format!("{:.1}", c.p50_us),
                        format!("{:.1}", c.p99_us),
                        format!("{:.2}", c.fabric_bytes as f64 / 1e6),
                        c.links.to_string(),
                        format!("{:.4}%", c.max_link_util * 100.0),
                        c.hot_link.clone(),
                    ]);
                    cells.push(c);
                }
            }
        }
    }
    t.print();

    // --- Phase C: machine-crash fail-over at every matrix cell ------------
    let mut crash_cells: Vec<CrashCell> = Vec::new();
    let mut last_bench: Option<Bench> = None;
    if !args.no_crash && args.machines.iter().any(|&m| m >= 2) {
        println!();
        println!("fail-over: kill m1 after load, audit acknowledged writes (per cell)");
        let mut ct = Table::new(&[
            "policy",
            "topo",
            "ov",
            "machines",
            "R",
            "crash ms",
            "ops",
            "timeouts",
            "failovers",
            "acked",
            "lost acked",
        ]);
        for &policy in &args.policies {
            for &(topo, oversub) in &topo_cells {
                for &m in &args.machines {
                    if m < 2 {
                        continue; // a 1-machine rack has no surviving replica
                    }
                    for &r in &args.replication {
                        if r > m {
                            continue;
                        }
                        let (c, b) = run_crash_cell(&args, m, r, policy, topo, oversub);
                        ct.row_strings(vec![
                            policy.name().to_string(),
                            topo.to_string(),
                            format!("{oversub}"),
                            c.machines.to_string(),
                            c.replication.to_string(),
                            format!("{:.2}", c.crash_at_ms),
                            c.ops.to_string(),
                            c.timeouts.to_string(),
                            c.failovers.to_string(),
                            c.acked_keys.to_string(),
                            c.lost_acked_keys.to_string(),
                        ]);
                        crash_cells.push(c);
                        last_bench = Some(b);
                    }
                }
            }
        }
        ct.print();
    }

    // --- Artifacts --------------------------------------------------------
    if let Some(b) = &last_bench {
        if let Some(path) = &args.trace_out {
            let merged = b.setup.fabric.merged_trace();
            let body = if path.ends_with(".json") {
                export::trace_chrome(&merged)
            } else {
                export::trace_jsonl(&merged)
            };
            match std::fs::write(path, body) {
                Ok(()) => eprintln!("wrote merged rack trace to {path}"),
                Err(e) => eprintln!("failed to write trace to {path}: {e}"),
            }
        }
        if let Some(path) = &args.metrics_out {
            let body = if path.ends_with(".json") {
                export::metrics_json(b.setup.fabric.metrics())
            } else {
                export::metrics_prometheus(b.setup.fabric.metrics())
            };
            match std::fs::write(path, body) {
                Ok(()) => eprintln!("wrote fabric metrics to {path}"),
                Err(e) => eprintln!("failed to write metrics to {path}: {e}"),
            }
        }
    }

    // --- JSON -------------------------------------------------------------
    let mut body = String::from("{\n  \"experiment\": \"e10\",\n  \"schema_version\": 4,\n");
    body.push_str(&format!(
        concat!(
            "  \"config\": {{\"machines\": {:?}, \"replication\": {:?}, ",
            "\"policies\": [{}], \"topologies\": [{}], \"oversub\": {:?}, ",
            "\"ops_per_client\": {}, \"keys\": {}, \"value_size\": {}, ",
            "\"outstanding\": {}, \"read_fraction\": {:.3}, \"seed\": {}, ",
            "\"threads\": {}}},\n"
        ),
        args.machines,
        args.replication,
        args.policies
            .iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(", "),
        args.topologies
            .iter()
            .map(|t| format!("\"{t}\""))
            .collect::<Vec<_>>()
            .join(", "),
        args.oversub,
        args.ops,
        args.keys,
        args.value_size,
        args.outstanding,
        args.read_fraction,
        args.seed,
        args.threads
    ));
    body.push_str("  \"scaling\": [\n");
    for (i, c) in cells.iter().enumerate() {
        body.push_str(&format!(
            "    {}{}\n",
            c.json(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n  \"crash\": [\n");
    for (i, c) in crash_cells.iter().enumerate() {
        body.push_str(&format!(
            "    {}{}\n",
            c.json(),
            if i + 1 < crash_cells.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&args.out, &body) {
        Ok(()) => println!("\nwrote {}", args.out),
        Err(e) => eprintln!("\nfailed to write {}: {e}", args.out),
    }

    println!();
    println!("expected shape: aggregate throughput grows with machines; real");
    println!("topologies (leaf-spine, fat-tree) concentrate load on identifiable");
    println!("uplinks — oversubscription raises max link utilization and the");
    println!("p99 tail; at every cell the crash audit reports 0 lost acked");
    println!("writes at R>=2 while an R=1 control loses the dead machine's");
    println!("shard. The adaptive+p2c default keeps the retry storm collapsed");
    println!("(full policy ablation: EXPERIMENTS.md E10).");
}
