//! E5 — IOMMU translation overhead (§2.2: address translation "remains the
//! cornerstone of data isolation"; the design is viable only if its cost is
//! bounded).
//!
//! Part A sweeps a device's DMA working set against a fixed-size IOTLB and
//! reports hit rates and mean translation cost per access (micro-level, no
//! full system).
//!
//! Part B measures the *privileged mapping path* end to end on the live
//! system: MemAlloc → bus `MapInstruction` → IOMMU programmed → response,
//! as a function of region size.

use lastcpu_bench::drivers::AllocChurn;
use lastcpu_bench::{ObsArgs, Table};
use lastcpu_core::{System, SystemConfig};
use lastcpu_iommu::{AccessKind, Iommu};
use lastcpu_mem::{Pasid, Perms, PhysAddr, VirtAddr, PAGE_SIZE};
use lastcpu_sim::{DetRng, SimDuration};

fn part_a() {
    println!("part A: IOTLB behaviour vs DMA working set (64-entry IOTLB)");
    let mut t = Table::new(&[
        "working set",
        "pages",
        "hit rate",
        "mean translate",
        "vs hit cost",
    ]);
    const TLB_ENTRIES: usize = 64;
    const ACCESSES: u64 = 200_000;
    for &pages in &[16u64, 64, 256, 1024, 4096] {
        let mut mmu = Iommu::new(TLB_ENTRIES);
        mmu.bind_pasid(Pasid(1));
        for p in 0..pages {
            mmu.map(
                Pasid(1),
                VirtAddr::new(p * PAGE_SIZE),
                PhysAddr::new((p + 16) * PAGE_SIZE),
                Perms::RW,
            )
            .expect("fresh mapping");
        }
        let mut rng = DetRng::new(42);
        let mut total = SimDuration::ZERO;
        for _ in 0..ACCESSES {
            let page = rng.below(pages);
            let va = VirtAddr::new(page * PAGE_SIZE + rng.below(PAGE_SIZE));
            let out = mmu
                .translate(Pasid(1), va, AccessKind::Read)
                .expect("mapped");
            total += out.cost;
        }
        let stats = mmu.tlb_stats();
        let mean = SimDuration::from_nanos(total.as_nanos() / ACCESSES);
        let hit_cost = mmu.cost_model().tlb_lookup;
        t.row_strings(vec![
            format!("{} KiB", pages * PAGE_SIZE / 1024),
            pages.to_string(),
            format!("{:.3}", stats.hit_rate()),
            mean.to_string(),
            format!(
                "{:.1}x",
                mean.as_nanos() as f64 / hit_cost.as_nanos() as f64
            ),
        ]);
    }
    t.print();
    println!();
    println!("expected shape: near-1.0 hit rate while the working set fits the");
    println!("IOTLB, falling toward 0 beyond it; mean cost steps from the ~2ns");
    println!("lookup toward the ~122ns four-level walk.");
    println!();
    part_a_perm_accounting();
}

/// Smoke check of the corrected IOTLB accounting: a cached entry with
/// insufficient permissions forces a full walk, so it must count as a
/// `perm_miss`, not a hit (it used to inflate the hit rate reported above).
fn part_a_perm_accounting() {
    let mut mmu = Iommu::new(8);
    mmu.bind_pasid(Pasid(1));
    mmu.map(
        Pasid(1),
        VirtAddr::new(0),
        PhysAddr::new(16 * PAGE_SIZE),
        Perms::R,
    )
    .expect("fresh mapping");
    // Warm the TLB (miss + walk), then hit it once with a permitted read.
    mmu.translate(Pasid(1), VirtAddr::new(8), AccessKind::Read)
        .expect("read allowed");
    mmu.translate(Pasid(1), VirtAddr::new(16), AccessKind::Read)
        .expect("read allowed");
    // Write probes find the cached R-only entry, walk, and fault.
    for _ in 0..3 {
        assert!(
            mmu.translate(Pasid(1), VirtAddr::new(24), AccessKind::Write)
                .is_err(),
            "write through an R-only mapping must fault"
        );
    }
    let s = mmu.tlb_stats();
    assert_eq!(s.misses, 1, "one cold miss");
    assert_eq!(s.hits, 1, "one permitted re-read");
    assert_eq!(s.perm_misses, 3, "each write probe is a perm miss");
    // 1 hit out of 5 lookups: perm misses depress the rate.
    assert!(
        (s.hit_rate() - 0.2).abs() < 1e-9,
        "corrected hit rate, got {:.3}",
        s.hit_rate()
    );
    println!("perm-miss accounting: 3 write probes of an R-only entry count as");
    println!(
        "perm_misses; corrected hit rate {:.3} (was 0.800 with the old",
        s.hit_rate()
    );
    println!("hit-counting bug).");
    println!();
}

fn part_b(obs: &ObsArgs) {
    println!("part B: privileged map path latency vs region size (live system)");
    let mut t = Table::new(&["region", "pages", "alloc+map mean", "free+unmap mean"]);
    for &bytes in &[PAGE_SIZE, 16 * PAGE_SIZE, 256 * PAGE_SIZE] {
        let mut config = SystemConfig {
            trace: false,
            ..SystemConfig::default()
        };
        obs.apply(&mut config);
        let mut sys = System::new(config);
        let memctl = sys.add_memctl("memctl0");
        let churn = sys.add_device(Box::new(AllocChurn::new(
            "churn0",
            memctl.id,
            120,
            vec![bytes],
        )));
        sys.power_on();
        sys.run_for(SimDuration::from_secs(2));
        let c: &AllocChurn = sys.device_as(churn).expect("churn");
        assert!(c.is_done(), "churn incomplete");
        assert_eq!(c.denials, 0);
        let mean = |v: &Vec<SimDuration>| {
            if v.is_empty() {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(
                    v.iter().map(|d| d.as_nanos()).sum::<u64>() / v.len() as u64,
                )
            }
        };
        t.row_strings(vec![
            format!("{} KiB", bytes / 1024),
            (bytes / PAGE_SIZE).to_string(),
            mean(&c.alloc_latencies).to_string(),
            mean(&c.free_latencies).to_string(),
        ]);
        obs.dump(&sys);
    }
    t.print();
    println!();
    println!("expected shape: latency is dominated by the fixed message cost");
    println!("(two bus round trips); page count adds only the IOMMU write time.");
}

fn main() {
    let obs = ObsArgs::from_env();
    println!("E5: IOMMU translation and mapping overhead");
    println!();
    part_a();
    part_b(&obs);
}
