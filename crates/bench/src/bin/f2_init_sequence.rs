//! F2 — Figure 2 replay: the KV-store initialization sequence on the
//! CPU-less system.
//!
//! Builds the §3 machine (smart NIC + smart SSD + memory controller +
//! system bus), powers it on, and reconstructs the paper's seven-step
//! message-sequence chart from the protocol trace, with virtual-time
//! stamps. No CPU is involved in any step.

use lastcpu_bench::{ObsArgs, Table};
use lastcpu_core::devices::nic::SmartNic;
use lastcpu_core::SystemConfig;
use lastcpu_kvs::server::{ServerConfig, ServerState};
use lastcpu_kvs::{build_cpuless_kvs, KvsNicApp};
use lastcpu_sim::{SimDuration, SimTime};

fn main() {
    let obs = ObsArgs::from_env();
    let mut config = SystemConfig::default();
    obs.apply(&mut config);
    let mut setup = build_cpuless_kvs(config, Default::default(), ServerConfig::default());
    setup.system.power_on();
    setup.system.run_for(SimDuration::from_millis(20));

    let nic: &SmartNic<KvsNicApp> = setup.system.device_as(setup.frontend).expect("nic present");
    assert_eq!(
        nic.app().state(),
        ServerState::Ready,
        "init sequence did not complete"
    );

    // The paper's steps, matched against trace records in order.
    let steps: &[(&str, &str, &str)] = &[
        (
            "1",
            "NIC broadcasts file-name discovery",
            "sends Query(file:",
        ),
        ("2", "SSD answers it owns the file", "-> nic0: QueryHit"),
        (
            "3",
            "NIC opens the file service (token)",
            "-> ssd0: OpenRequest",
        ),
        (
            "4",
            "SSD replies: connection + shm size",
            "-> nic0: OpenResponse",
        ),
        (
            "5",
            "NIC asks memctl to allocate shm",
            "-> memctl0: MemAlloc",
        ),
        (
            "6",
            "bus programs the NIC's IOMMU",
            "programmed IOMMU of dev:3",
        ),
        (
            "6b",
            "memctl confirms the allocation",
            "-> nic0: MemAllocResponse",
        ),
        ("7", "NIC grants the region to the SSD", "-> memctl0: Share"),
        (
            "7b",
            "bus programs the SSD's IOMMU",
            "programmed IOMMU of dev:2",
        ),
        ("8", "NIC programs VIRTIO queue, doorbell", "queue attached"),
    ];

    println!("F2: Figure-2 initialization sequence replay (virtual time)");
    println!();
    let mut t = Table::new(&["step", "what happens", "t", "delta"]);
    let mut cursor = 0usize;
    let mut prev: Option<SimTime> = None;
    let mut first: Option<SimTime> = None;
    let events: Vec<_> = setup.system.trace().events().cloned().collect();
    for (step, what, needle) in steps {
        let found = events[cursor..]
            .iter()
            .enumerate()
            .find(|(_, e)| e.what().contains(needle));
        match found {
            Some((off, e)) => {
                cursor += off + 1;
                let delta = match prev {
                    Some(p) => format!("+{}", e.at.since(p)),
                    None => "-".to_string(),
                };
                prev = Some(e.at);
                first.get_or_insert(e.at);
                t.row_strings(vec![
                    step.to_string(),
                    what.to_string(),
                    e.at.to_string(),
                    delta,
                ]);
            }
            None => {
                t.row_strings(vec![
                    step.to_string(),
                    what.to_string(),
                    "NOT FOUND".into(),
                    "-".into(),
                ]);
            }
        }
    }
    t.print();
    println!();
    let total = prev
        .expect("steps matched")
        .since(first.expect("steps matched"));
    println!("end-to-end handshake (step 1 to queue ready): {total}");
    println!(
        "bus messages: {}, bus bytes: {}, pages mapped: {}",
        setup.system.bus().stats().messages,
        setup.system.bus().stats().bytes,
        setup.system.stats().counter("bus.pages_mapped"),
    );
    obs.dump(&setup.system);
}
