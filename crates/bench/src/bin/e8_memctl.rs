//! E8 — the memory controller as allocation-policy owner (§2.2).
//!
//! Alloc/free churn against the memory-controller device over the live
//! control plane, across size schedules, reporting op latency, denial
//! behaviour and fragmentation of the physical allocator.

use lastcpu_bench::drivers::AllocChurn;
use lastcpu_bench::{ObsArgs, Table};
use lastcpu_core::{MemCtlDevice, System, SystemConfig};
use lastcpu_mem::PAGE_SIZE;
use lastcpu_sim::{Histogram, SimDuration};

struct Schedule {
    name: &'static str,
    sizes: Vec<u64>,
}

fn schedules() -> Vec<Schedule> {
    vec![
        Schedule {
            name: "uniform 4K",
            sizes: vec![PAGE_SIZE],
        },
        Schedule {
            name: "mixed 4K-256K",
            sizes: vec![PAGE_SIZE, 16 * PAGE_SIZE, 64 * PAGE_SIZE, 4 * PAGE_SIZE],
        },
        Schedule {
            name: "large 1M",
            sizes: vec![256 * PAGE_SIZE],
        },
    ]
}

fn main() {
    let obs = ObsArgs::from_env();
    println!("E8: memory-controller allocation policy under churn");
    println!("    (one client, 600 ops: 2 allocs : 1 free)");
    println!();
    let mut t = Table::new(&[
        "schedule",
        "alloc mean",
        "alloc p99",
        "free mean",
        "denied",
        "in use",
        "peak",
        "free blocks",
    ]);
    for sched in schedules() {
        let mut config = SystemConfig {
            trace: false,
            dram_bytes: 1 << 30,
            ..SystemConfig::default()
        };
        obs.apply(&mut config);
        let mut sys = System::new(config);
        let memctl = sys.add_memctl("memctl0");
        let churn = sys.add_device(Box::new(AllocChurn::new(
            "churn0",
            memctl.id,
            600,
            sched.sizes.clone(),
        )));
        sys.power_on();
        sys.run_for(SimDuration::from_secs(5));
        let c: &AllocChurn = sys.device_as(churn).expect("churn");
        assert!(c.is_done(), "churn incomplete ({} schedule)", sched.name);
        let mut ah = Histogram::new();
        for &l in &c.alloc_latencies {
            ah.record(l);
        }
        let mut fh = Histogram::new();
        for &l in &c.free_latencies {
            fh.record(l);
        }
        let mc: &MemCtlDevice = sys.device_as(memctl).expect("memctl");
        let stats = mc.controller().stats();
        t.row_strings(vec![
            sched.name.into(),
            ah.mean().to_string(),
            ah.percentile(99.0).to_string(),
            fh.mean().to_string(),
            c.denials.to_string(),
            format!("{} KiB", stats.bytes_in_use / 1024),
            format!("{} KiB", stats.peak_bytes / 1024),
            mc.controller().free_block_count().to_string(),
        ]);
        obs.dump(&sys);
    }
    t.print();
    println!();
    println!("expected shape: op latency is flat across sizes (fixed message");
    println!("cost dominates; the buddy allocator is O(log n)); mixed-size churn");
    println!("raises the free-block count (external fragmentation) but the buddy");
    println!("coalescing keeps it bounded.");
}
