//! E9 — engine throughput: wall-clock capacity of the simulator core.
//!
//! Every other experiment reports *virtual* time — what the simulated
//! machine would observe. E9 reports *host* time: how many discrete events
//! the engine retires per wall-clock second. That number bounds how much
//! simulated machine we can afford (sweep sizes, fleet sizes, fault-matrix
//! seeds) and is the metric the hot-path work in this crate is judged by.
//!
//! Two phases, both run per engine (`--engine wheel|heap|both`):
//!
//! - **queue** — the event queue in isolation: a deep steady-state churn
//!   (pop one, schedule one) at a fixed pending-set depth. This isolates the
//!   engine data structure the `--engine` flag selects: the hierarchical
//!   timing wheel vs the reference binary heap.
//! - **system** — a saturating end-to-end workload: the §3 KVS on the
//!   CPU-less deployment (smart NIC + SSD + memory controller), many closed
//!   loops deep, run for a fixed slice of virtual time. Queue operations
//!   are only part of each event here, so the engine gap is diluted by real
//!   device work; both numbers are reported for exactly that reason.
//!
//! Writes `BENCH_e9.json` (override with `--out`); schema in
//! `EXPERIMENTS.md`. The JSON carries events/sec, ns/event and
//! allocations/event per phase per engine, plus wheel-over-heap speedups
//! when both engines run.
//!
//! With `--profile` the run also prints a per-scope allocation attribution
//! table (which `subsystem.site` the allocations/event figure comes from);
//! `--profile-out <path>` dumps the full profile snapshot as JSON. Profiling
//! is excluded from the headline numbers' contract: run without `--profile`
//! when comparing against recorded baselines.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use lastcpu_bench::{ObsArgs, Table};
use lastcpu_core::SystemConfig;
use lastcpu_kvs::build_cpuless_kvs;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::server::ServerConfig;
use lastcpu_sim::{export, profile, DetRng, EventQueue, QueueEngine, SimDuration};

/// Counting allocator: allocations/event is a first-class metric here —
/// the zero-copy envelope and buffer-reuse work shows up in this number.
/// Every allocation is also forwarded to [`lastcpu_sim::profile::note_alloc`],
/// so running with `--profile` attributes the total to `subsystem.site`
/// scopes (the E12 attribution axis) at no cost when profiling is off.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates to the std system allocator; only adds counters
// (`note_alloc` is written to be callable from a global allocator: it never
// allocates and tolerates TLS teardown).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        lastcpu_sim::profile::note_alloc(layout.size());
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        lastcpu_sim::profile::note_alloc(new_size);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One measured phase.
#[derive(Clone, Copy)]
struct Sample {
    events: u64,
    wall_seconds: f64,
    allocs: u64,
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds
    }

    fn ns_per_event(&self) -> f64 {
        self.wall_seconds * 1e9 / self.events as f64
    }

    fn allocs_per_event(&self) -> f64 {
        self.allocs as f64 / self.events as f64
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"events\": {}, \"wall_seconds\": {:.6}, ",
                "\"events_per_sec\": {:.1}, \"ns_per_event\": {:.1}, ",
                "\"allocs_per_event\": {:.3}}}"
            ),
            self.events,
            self.wall_seconds,
            self.events_per_sec(),
            self.ns_per_event(),
            self.allocs_per_event()
        )
    }
}

struct Args {
    engines: Vec<QueueEngine>,
    out: String,
    queue_depth: usize,
    queue_ops: u64,
    clients: usize,
    outstanding: usize,
    virtual_ms: u64,
    repeat: usize,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            engines: vec![QueueEngine::Wheel, QueueEngine::Heap],
            out: "BENCH_e9.json".into(),
            queue_depth: 65_536,
            queue_ops: 4_000_000,
            clients: 16,
            outstanding: 32,
            virtual_ms: 2_000,
            repeat: 3,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = || it.next().unwrap_or_default();
            match flag.as_str() {
                "--engine" => {
                    let v = val();
                    a.engines =
                        match v.as_str() {
                            "both" => vec![QueueEngine::Wheel, QueueEngine::Heap],
                            s => vec![QueueEngine::parse(s)
                                .unwrap_or_else(|| panic!("unknown engine {s:?}"))],
                        };
                }
                "--out" => a.out = val(),
                "--queue-depth" => a.queue_depth = val().parse().expect("--queue-depth"),
                "--queue-ops" => a.queue_ops = val().parse().expect("--queue-ops"),
                "--clients" => a.clients = val().parse().expect("--clients"),
                "--outstanding" => a.outstanding = val().parse().expect("--outstanding"),
                "--virtual-ms" => a.virtual_ms = val().parse().expect("--virtual-ms"),
                "--repeat" => a.repeat = val().parse::<usize>().expect("--repeat").max(1),
                _ => {} // same convention as ObsArgs: ignore unknown flags
            }
        }
        a
    }
}

/// Steady-state churn of the bare event queue: keep `depth` events pending,
/// pop the earliest, schedule a replacement at a pseudo-random future
/// offset. The delay mix follows what the system actually schedules —
/// mostly near-future (bus hops, device service times), a tail of far
/// horizon timers — so both the wheel's slot array and its overflow heap
/// participate.
fn run_queue_phase(engine: QueueEngine, depth: usize, ops: u64) -> Sample {
    let mut q: EventQueue<u64> = EventQueue::with_engine(engine);
    let mut rng = DetRng::new(0xE9);
    let next_delay = |rng: &mut DetRng| {
        // 75% short (bus/device latencies), 20% medium (timeouts),
        // 5% long (liveness/rebuild horizons).
        let d = match rng.below(20) {
            0 => 1 + rng.below(1 << 24),
            1..=4 => 1 + rng.below(1 << 18),
            _ => 1 + rng.below(1 << 12),
        };
        SimDuration::from_nanos(d)
    };
    for i in 0..depth as u64 {
        let d = next_delay(&mut rng);
        q.schedule_in(d, i);
    }
    let allocs0 = allocs_now();
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..ops {
        let ev = q.pop().expect("queue kept at constant depth");
        acc = acc.wrapping_add(ev.event);
        let d = next_delay(&mut rng);
        q.schedule_in(d, i);
    }
    let wall = t0.elapsed().as_secs_f64();
    let allocs = allocs_now() - allocs0;
    std::hint::black_box(acc);
    assert_eq!(q.events_processed(), ops);
    Sample {
        events: ops,
        wall_seconds: wall,
        allocs,
    }
}

/// Saturating end-to-end workload: the CPU-less KVS deployment with enough
/// closed loops that the engine never idles, run for a fixed slice of
/// virtual time. Events/sec here is the whole simulator — queue, bus
/// routing, DMA, devices — per wall-clock second.
fn run_system_phase(
    engine: QueueEngine,
    clients: usize,
    outstanding: usize,
    vms: u64,
    obs: &ObsArgs,
) -> Sample {
    let mut sys_config = SystemConfig {
        trace: false,
        queue_engine: engine,
        ..SystemConfig::default()
    };
    obs.apply(&mut sys_config);
    let server = ServerConfig {
        cache_entries: 512,
        ..ServerConfig::default()
    };
    let mut setup = build_cpuless_kvs(sys_config, Default::default(), server);
    for i in 0..clients {
        let workload = WorkloadConfig {
            keys: 400,
            theta: 0.99,
            read_fraction: 0.95,
            value_size: 128,
            outstanding,
            total_ops: u64::MAX / 2, // never finishes: run_for bounds the phase
            preload: i == 0,         // one loader is enough; rest start hot
            stats_prefix: "wl".into(),
            ..WorkloadConfig::default()
        };
        setup
            .system
            .add_host(Box::new(KvsClientHost::new(setup.kvs_port, workload)));
    }
    // Warm up outside the measured window: power-on, discovery, preload.
    setup.system.power_on();
    setup.system.run_for(SimDuration::from_millis(200));
    let allocs0 = allocs_now();
    let t0 = Instant::now();
    let events = setup.system.run_for(SimDuration::from_millis(vms));
    let wall = t0.elapsed().as_secs_f64();
    let allocs = allocs_now() - allocs0;
    assert!(events > 0, "system made no progress");
    // Sweep convention: dump after every run, last one wins on disk.
    obs.dump(&setup.system);
    Sample {
        events,
        wall_seconds: wall,
        allocs,
    }
}

fn main() {
    let args = Args::parse();
    let obs = ObsArgs::from_env();
    obs.begin();
    println!("E9: engine throughput — wall-clock events/sec of the simulator core");
    println!(
        "    (queue churn depth {}, {} ops; system: {} clients x {} outstanding, {} ms virtual)",
        args.queue_depth, args.queue_ops, args.clients, args.outstanding, args.virtual_ms
    );
    println!();
    let mut t = Table::new(&[
        "phase",
        "engine",
        "events",
        "events/s",
        "ns/event",
        "allocs/event",
    ]);
    // Best-of-N per phase: minimum wall time is the standard noise filter
    // for wall-clock benchmarks (the fastest run had the least interference).
    let best = |a: Sample, b: Sample| {
        if b.wall_seconds < a.wall_seconds {
            b
        } else {
            a
        }
    };
    let mut results: Vec<(QueueEngine, Sample, Sample)> = Vec::new();
    // Every run counts toward the profiler's attribution denominator, kept
    // or not — the profiler accumulates across the whole process.
    let mut total_events: u64 = 0;
    for &engine in &args.engines {
        let mut queue = run_queue_phase(engine, args.queue_depth, args.queue_ops);
        let mut system = run_system_phase(
            engine,
            args.clients,
            args.outstanding,
            args.virtual_ms,
            &obs,
        );
        total_events += queue.events + system.events;
        for _ in 1..args.repeat {
            let q = run_queue_phase(engine, args.queue_depth, args.queue_ops);
            let s = run_system_phase(
                engine,
                args.clients,
                args.outstanding,
                args.virtual_ms,
                &obs,
            );
            total_events += q.events + s.events;
            queue = best(queue, q);
            system = best(system, s);
        }
        for (phase, s) in [("queue", &queue), ("system", &system)] {
            t.row_strings(vec![
                phase.into(),
                engine.name().into(),
                s.events.to_string(),
                format!("{:.0}", s.events_per_sec()),
                format!("{:.1}", s.ns_per_event()),
                format!("{:.3}", s.allocs_per_event()),
            ]);
        }
        results.push((engine, queue, system));
    }
    t.print();

    if obs.profile {
        let snap = profile::snapshot();
        println!();
        println!("allocation attribution ({total_events} events across all runs):");
        let mut pt = Table::new(&["scope", "allocs", "bytes", "allocs/event", "share"]);
        let denom = total_events.max(1) as f64;
        let total_allocs = snap.total_allocs().max(1) as f64;
        let mut scopes: Vec<_> = snap.scopes.iter().filter(|s| s.allocs > 0).collect();
        scopes.sort_by(|a, b| b.allocs.cmp(&a.allocs).then(a.name.cmp(b.name)));
        for s in scopes {
            pt.row_strings(vec![
                s.name.into(),
                s.allocs.to_string(),
                s.alloc_bytes.to_string(),
                format!("{:.3}", s.allocs as f64 / denom),
                format!("{:.1}%", 100.0 * s.allocs as f64 / total_allocs),
            ]);
        }
        pt.row_strings(vec![
            "(unattributed)".into(),
            snap.unattributed_allocs.to_string(),
            snap.unattributed_bytes.to_string(),
            format!("{:.3}", snap.unattributed_allocs as f64 / denom),
            format!(
                "{:.1}%",
                100.0 * snap.unattributed_allocs as f64 / total_allocs
            ),
        ]);
        pt.print();
        println!(
            "attributed: {:.1}% of {} allocations",
            100.0 * snap.attributed_alloc_fraction(),
            snap.total_allocs()
        );
        if let Some(path) = &obs.profile_out {
            let body = export::profile_json(&snap, true);
            match std::fs::write(path, &body) {
                Ok(()) => println!("wrote profile to {path}"),
                Err(e) => eprintln!("failed to write profile to {path}: {e}"),
            }
        }
    }

    let speedups = match (
        results.iter().find(|(e, _, _)| *e == QueueEngine::Wheel),
        results.iter().find(|(e, _, _)| *e == QueueEngine::Heap),
    ) {
        (Some((_, wq, ws)), Some((_, hq, hs))) => {
            let q = wq.events_per_sec() / hq.events_per_sec();
            let s = ws.events_per_sec() / hs.events_per_sec();
            println!();
            println!("wheel over heap: {q:.2}x queue churn, {s:.2}x end-to-end");
            Some((q, s))
        }
        _ => None,
    };

    let mut body = String::from("{\n  \"experiment\": \"e9\",\n  \"schema_version\": 2,\n");
    body.push_str(&format!(
        "  \"config\": {{\"queue_depth\": {}, \"queue_ops\": {}, \"clients\": {}, \"outstanding\": {}, \"virtual_ms\": {}, \"repeat\": {}}},\n",
        args.queue_depth, args.queue_ops, args.clients, args.outstanding, args.virtual_ms, args.repeat
    ));
    body.push_str("  \"engines\": {\n");
    for (i, (engine, queue, system)) in results.iter().enumerate() {
        // E9 is a single-machine experiment; `threads` records the fabric
        // worker count the schema shares with E10/E13 (always 1 here) so
        // `bench_diff` can key cells uniformly across experiments.
        body.push_str(&format!(
            "    \"{}\": {{\"threads\": 1, \"queue\": {}, \"system\": {}}}{}\n",
            engine.name(),
            queue.json(),
            system.json(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    body.push_str("  }");
    if let Some((q, s)) = speedups {
        body.push_str(&format!(
            ",\n  \"wheel_over_heap\": {{\"queue\": {q:.3}, \"system\": {s:.3}}}"
        ));
    }
    body.push_str("\n}\n");
    match std::fs::write(&args.out, &body) {
        Ok(()) => println!("\nwrote {}", args.out),
        Err(e) => eprintln!("\nfailed to write {}: {e}", args.out),
    }
    println!();
    println!("expected shape: the queue-churn gap is the engine itself (O(1) wheel");
    println!("slots vs O(log n) heap sift at depth); the end-to-end gap is smaller");
    println!("because each event also pays for routing, DMA and device work.");
}
