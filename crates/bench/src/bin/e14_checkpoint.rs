//! E14 — deterministic checkpoint/restore: a rack checkpoint taken mid-run
//! must restore into a fresh process-or-fabric and continue *byte-identically*
//! to a run that was never interrupted.
//!
//! The snapshot subsystem (DESIGN.md §14) serializes every stateful
//! component into a versioned, checksummed [`Checkpoint`]; restore is
//! deterministic re-execution to the manifest's event cursor followed by
//! byte-for-byte verification of every section. E14 exercises the full
//! matrix the correctness bar demands:
//!
//! - **Byte-identity** — for each seed × thread count × fault arm, run a
//!   reference rack to completion, checkpointing at a mid-run barrier; then
//!   build a second rack from the same recipe, `restore_from` the
//!   checkpoint (replay + verify — any divergence fails loudly), continue
//!   to completion, and *hard-assert* the final digests (metrics, pool
//!   activity, per-machine KVS contents, acked-write audit, and the final
//!   rack checkpoint itself) are identical.
//! - **Sampled measurement** — both runs reset pool counters at the
//!   checkpoint barrier, so the digested pool activity covers exactly the
//!   post-checkpoint window. This is the warm-start measurement mode:
//!   checkpoint once, then measure only the region of interest.
//! - **Cross-process durability** — the crash arm kills a rack machine
//!   before the checkpoint, writes the checkpoint to disk, re-execs this
//!   binary with `--restore-from`, and the child — a fresh OS process —
//!   restores, finishes the workload, and audits `lost_acked_keys == 0`
//!   at R ≥ 2. The parent hard-asserts the child's final digest matches
//!   its own uninterrupted run.
//!
//! Flags `--checkpoint-out FILE` / `--restore-from FILE` also work
//! standalone for warm-start experimentation. Writes `BENCH_e14.json`
//! (override with `--out`); schema in `EXPERIMENTS.md`.

use lastcpu_bench::Table;
use lastcpu_core::SystemConfig;
use lastcpu_fabric::FabricConfig;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::{build_rack_kvs_with_policy, RackSetup, RetryPolicy};
use lastcpu_net::PortId;
use lastcpu_sim::{export, FaultKind, FaultPlan, SimDuration, SimTime};
use lastcpu_snap::Checkpoint;

/// Virtual instant the crash arm kills machine `m1` (before the
/// checkpoint, so the checkpoint captures — and restore must reproduce —
/// post-crash state).
const CRASH_AT_US: u64 = 1_500;

struct Args {
    machines: usize,
    replication: usize,
    ops: u64,
    keys: u64,
    value_size: usize,
    outstanding: usize,
    seeds: Vec<u64>,
    threads: Vec<usize>,
    /// Virtual microseconds into the run at which the checkpoint is taken.
    ckpt_at_us: u64,
    /// Write the reference run's checkpoint here (first cell, or the
    /// standalone warm-start flow).
    checkpoint_out: Option<String>,
    /// Child/warm-start mode: restore from this file instead of running
    /// the full matrix.
    restore_from: Option<String>,
    /// Cell parameters for `--restore-from` mode (the child must rebuild
    /// the exact recipe the checkpoint came from).
    seed: u64,
    thread_count: usize,
    crash: bool,
    /// Include wall-clock timings in the artifact; `--no-wall` omits them
    /// so same-flag CI reruns are byte-identical.
    wall: bool,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            machines: 6,
            replication: 2,
            ops: 150,
            keys: 120,
            value_size: 128,
            outstanding: 8,
            seeds: vec![0xE14, 0xE14 + 1, 0xE14 + 2],
            threads: vec![1, 4],
            ckpt_at_us: 2_500,
            checkpoint_out: None,
            restore_from: None,
            seed: 0xE14,
            thread_count: 1,
            crash: false,
            wall: true,
            out: "BENCH_e14.json".into(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = || it.next().unwrap_or_default();
            match flag.as_str() {
                "--machines" => a.machines = val().parse().expect("--machines"),
                "--replication" => a.replication = val().parse().expect("--replication"),
                "--ops" => a.ops = val().parse().expect("--ops"),
                "--keys" => a.keys = val().parse().expect("--keys"),
                "--value-size" => a.value_size = val().parse().expect("--value-size"),
                "--outstanding" => a.outstanding = val().parse().expect("--outstanding"),
                "--seeds" => {
                    a.seeds = val()
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(|p| p.trim().parse().unwrap_or_else(|_| panic!("bad --seeds")))
                        .collect();
                }
                "--threads" => {
                    a.threads = val()
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(|p| p.trim().parse().unwrap_or_else(|_| panic!("bad --threads")))
                        .collect();
                }
                "--ckpt-at-us" => a.ckpt_at_us = val().parse().expect("--ckpt-at-us"),
                "--checkpoint-out" => a.checkpoint_out = Some(val()),
                "--restore-from" => a.restore_from = Some(val()),
                "--seed" => a.seed = val().parse().expect("--seed"),
                "--thread-count" => a.thread_count = val().parse().expect("--thread-count"),
                "--crash" => a.crash = true,
                "--no-wall" => a.wall = false,
                "--out" => a.out = val(),
                _ => {} // same convention as the other experiments
            }
        }
        assert!(!a.seeds.is_empty() && !a.threads.is_empty() && a.machines >= 3);
        a
    }
}

fn fnv1a(h: &mut u64, s: &str) {
    for b in s.bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

struct Bench {
    setup: RackSetup,
    client_ports: Vec<PortId>,
}

impl Bench {
    fn client(&self, i: usize) -> &KvsClientHost {
        self.setup
            .fabric
            .machine(self.setup.machines[i])
            .host_as(self.client_ports[i])
            .expect("client present")
    }

    fn alive(&self, i: usize) -> bool {
        !self.setup.fabric.is_dead(self.setup.machines[i])
    }

    /// Clients on alive machines done (a crashed machine's client dies
    /// with it).
    fn all_done(&self) -> bool {
        (0..self.client_ports.len()).all(|i| !self.alive(i) || self.client(i).is_done())
    }

    /// Sampled-measurement barrier: zero every machine's pool counters so
    /// subsequent digests cover only the post-checkpoint window.
    fn reset_pool_stats(&self) {
        for &m in &self.setup.machines {
            self.setup.fabric.machine(m).pool().reset_stats();
        }
    }

    fn run_to_done(&mut self) -> u64 {
        let deadline = self.setup.fabric.now() + SimDuration::from_secs(60);
        let mut events = 0;
        while self.setup.fabric.now() < deadline {
            events += self.setup.fabric.run_for(SimDuration::from_millis(10));
            if self.all_done() {
                break;
            }
        }
        assert!(self.all_done(), "workload incomplete");
        events
    }

    /// The determinism digest over every end-state observable: fabric and
    /// machine metrics, pool activity, per-machine KVS contents, the
    /// acked-write audit, and the final rack checkpoint (which covers
    /// traces, queues, device and host state byte-for-byte).
    fn digest(&self) -> String {
        let fab = &self.setup.fabric;
        let mut h = 0xcbf29ce484222325u64;
        fnv1a(&mut h, &export::metrics_json(fab.metrics()));
        for i in 0..self.setup.machines.len() {
            let m = self.setup.machines[i];
            fnv1a(&mut h, &export::metrics_json(fab.machine(m).stats()));
            fnv1a(&mut h, &format!("{:?}", fab.machine(m).pool().stats()));
            fnv1a(&mut h, &format!("k{}", self.setup.nic(i).app().key_count()));
        }
        fnv1a(&mut h, &format!("lost{}", self.setup.lost_acked_keys()));
        let end = self
            .setup
            .fabric
            .checkpoint("e14-end")
            .expect("end-state checkpoint");
        fnv1a(&mut h, &format!("ck{:016x}", end.digest()));
        format!("{h:016x}")
    }
}

fn crash_plan(_seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(0xE14F);
    plan.inject(
        SimTime::from_nanos(CRASH_AT_US * 1_000),
        "m1",
        FaultKind::Crash,
    );
    plan
}

fn build(args: &Args, seed: u64, threads: usize, crash: bool) -> Bench {
    let mut setup = build_rack_kvs_with_policy(
        FabricConfig {
            threads,
            fault_plan: crash.then(|| crash_plan(seed)),
            ..FabricConfig::default()
        },
        args.machines,
        args.replication,
        SystemConfig {
            seed,
            trace: false,
            ..SystemConfig::default()
        },
        RetryPolicy::default(),
    );
    let mut client_ports = Vec::new();
    for i in 0..args.machines {
        let m = setup.machines[i];
        let router_port = setup.router_ports[i];
        let port = setup
            .fabric
            .machine_mut(m)
            .add_host(Box::new(KvsClientHost::new(
                router_port,
                WorkloadConfig {
                    keys: args.keys,
                    theta: 0.99,
                    read_fraction: 0.95,
                    value_size: args.value_size,
                    outstanding: args.outstanding,
                    total_ops: args.ops,
                    preload: true,
                    stats_prefix: format!("c{i}"),
                    ..WorkloadConfig::default()
                },
            )));
        client_ports.push(port);
    }
    Bench {
        setup,
        client_ports,
    }
}

struct Cell {
    seed: u64,
    threads: usize,
    crash: bool,
    ckpt_bytes: usize,
    ckpt_sections: usize,
    ckpt_events: u64,
    ckpt_ms: Option<f64>,
    restore_replay_events: u64,
    restore_ms: Option<f64>,
    total_events: u64,
    virtual_ns: u64,
    lost_acked_keys: usize,
    digest: String,
}

impl Cell {
    fn json(&self) -> String {
        let wall = match (self.ckpt_ms, self.restore_ms) {
            (Some(c), Some(r)) => {
                format!("\"ckpt_ms\": {c:.3}, \"restore_ms\": {r:.3}, ")
            }
            _ => String::new(),
        };
        format!(
            concat!(
                "{{\"seed\": {}, \"threads\": {}, \"crash\": {}, ",
                "\"ckpt_bytes\": {}, \"ckpt_sections\": {}, \"ckpt_events\": {}, ",
                "{}\"restore_replay_events\": {}, \"total_events\": {}, ",
                "\"virtual_ns\": {}, \"lost_acked_keys\": {}, \"digest\": \"{}\"}}"
            ),
            self.seed,
            self.threads,
            self.crash,
            self.ckpt_bytes,
            self.ckpt_sections,
            self.ckpt_events,
            wall,
            self.restore_replay_events,
            self.total_events,
            self.virtual_ns,
            self.lost_acked_keys,
            self.digest
        )
    }
}

/// One matrix cell: reference run with a mid-run checkpoint, then a fresh
/// rack restored from that checkpoint; both continue to completion and
/// must land on the same digest.
fn run_cell(args: &Args, seed: u64, threads: usize, crash: bool) -> (Cell, Checkpoint) {
    // --- Reference run (never interrupted) ------------------------------
    let mut a = build(args, seed, threads, crash);
    a.setup.fabric.power_on();
    let mut total_events = a
        .setup
        .fabric
        .run_for(SimDuration::from_micros(args.ckpt_at_us));
    let t0 = std::time::Instant::now();
    let ck = a
        .setup
        .fabric
        .checkpoint("e14")
        .expect("every rack component snapshots");
    let ckpt_ms = t0.elapsed().as_secs_f64() * 1e3;
    let encoded = ck.encode();
    // The checkpoint container round-trips bit-exactly through its own
    // framing (decode re-verifies every section checksum).
    let reread = Checkpoint::decode(&encoded).expect("checkpoint re-decodes");
    assert_eq!(
        reread.digest(),
        ck.digest(),
        "checkpoint encode/decode must be byte-stable"
    );
    a.reset_pool_stats();
    total_events += a.run_to_done();
    let d_a = a.digest();
    let lost = a.setup.lost_acked_keys();
    if crash && args.replication >= 2 {
        assert_eq!(
            lost, 0,
            "acked writes lost despite R={} (seed {seed:#x}, threads {threads})",
            args.replication
        );
    }

    // --- Restored run (fresh rack, replay + verify, continue) -----------
    let mut b = build(args, seed, threads, crash);
    b.setup.fabric.power_on();
    let t1 = std::time::Instant::now();
    b.setup
        .fabric
        .restore_from(&ck)
        .expect("restore must verify byte-for-byte");
    let restore_ms = t1.elapsed().as_secs_f64() * 1e3;
    b.reset_pool_stats();
    b.run_to_done();
    let d_b = b.digest();
    assert_eq!(
        d_a, d_b,
        "restored run diverged from uninterrupted run \
         (seed {seed:#x}, threads {threads}, crash {crash})"
    );

    let cell = Cell {
        seed,
        threads,
        crash,
        ckpt_bytes: encoded.len(),
        ckpt_sections: ck.section_count(),
        ckpt_events: ck.manifest.events,
        ckpt_ms: args.wall.then_some(ckpt_ms),
        restore_replay_events: ck.manifest.events,
        restore_ms: args.wall.then_some(restore_ms),
        total_events,
        virtual_ns: a.setup.fabric.now().as_nanos(),
        lost_acked_keys: lost,
        digest: d_a,
    };
    (cell, ck)
}

/// `--restore-from` mode: rebuild the recipe from the flags, restore the
/// on-disk checkpoint in this fresh process, finish the workload, audit.
fn run_restore_child(args: &Args) -> ! {
    let path = args.restore_from.as_deref().unwrap();
    let ck = Checkpoint::read_file(path).expect("read checkpoint file");
    let mut b = build(args, args.seed, args.thread_count, args.crash);
    b.setup.fabric.power_on();
    b.setup
        .fabric
        .restore_from(&ck)
        .expect("cross-process restore must verify byte-for-byte");
    b.reset_pool_stats();
    b.run_to_done();
    let lost = b.setup.lost_acked_keys();
    let digest = b.digest();
    // Machine-parseable result line for the parent process.
    println!("E14_CHILD digest={digest} lost={lost}");
    if args.crash && args.replication >= 2 && lost != 0 {
        eprintln!(
            "E14_CHILD FAIL: {lost} acked keys lost at R={}",
            args.replication
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Cross-process durability audit: write the crash-arm checkpoint to disk,
/// re-exec this binary, and require the child's restored run to match the
/// parent's uninterrupted digest with zero lost acked writes.
fn cross_process_audit(args: &Args, seed: u64, ck: &Checkpoint, want_digest: &str) -> bool {
    let path = args
        .checkpoint_out
        .clone()
        .unwrap_or_else(|| "BENCH_e14.ckpt".to_string());
    ck.write_file(&path).expect("write checkpoint file");
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args([
            "--restore-from",
            &path,
            "--seed",
            &seed.to_string(),
            "--thread-count",
            "1",
            "--crash",
            "--machines",
            &args.machines.to_string(),
            "--replication",
            &args.replication.to_string(),
            "--ops",
            &args.ops.to_string(),
            "--keys",
            &args.keys.to_string(),
            "--value-size",
            &args.value_size.to_string(),
            "--outstanding",
            &args.outstanding.to_string(),
        ])
        .output()
        .expect("spawn restore child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let ok_line = stdout
        .lines()
        .find(|l| l.starts_with("E14_CHILD "))
        .unwrap_or("");
    let digest_match = ok_line.contains(&format!("digest={want_digest}"));
    let lost_zero = ok_line.contains("lost=0");
    if !out.status.success() || !digest_match || !lost_zero {
        eprintln!(
            "cross-process audit failed: status {:?}, child said {ok_line:?} \
             (wanted digest={want_digest}, lost=0)\n--- child stderr ---\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        return false;
    }
    if args.checkpoint_out.is_none() {
        let _ = std::fs::remove_file(&path);
    }
    true
}

fn main() {
    let args = Args::parse();
    if args.restore_from.is_some() {
        run_restore_child(&args);
    }

    println!("E14: checkpoint/restore — snapshot mid-run, restore, continue byte-identically");
    println!(
        "    ({} machines, R={}, {} ops/client, checkpoint at {} us, seeds {:x?}, threads {:?})",
        args.machines, args.replication, args.ops, args.ckpt_at_us, args.seeds, args.threads
    );
    println!();

    let mut cells: Vec<Cell> = Vec::new();
    let mut audit_ck: Option<(u64, Checkpoint, String)> = None;
    for &seed in &args.seeds {
        for &threads in &args.threads {
            for crash in [false, true] {
                let (cell, ck) = run_cell(&args, seed, threads, crash);
                // The crash-arm single-thread checkpoint of the first seed
                // feeds the cross-process audit.
                if crash && threads == 1 && audit_ck.is_none() {
                    audit_ck = Some((seed, ck, cell.digest.clone()));
                }
                cells.push(cell);
            }
        }
    }

    let mut t = Table::new(&[
        "seed",
        "thr",
        "crash",
        "ckpt KiB",
        "sections",
        "ckpt ev",
        "replay ev",
        "lost",
        "digest",
    ]);
    for c in &cells {
        t.row_strings(vec![
            format!("{:#x}", c.seed),
            c.threads.to_string(),
            c.crash.to_string(),
            format!("{:.1}", c.ckpt_bytes as f64 / 1024.0),
            c.ckpt_sections.to_string(),
            c.ckpt_events.to_string(),
            c.restore_replay_events.to_string(),
            c.lost_acked_keys.to_string(),
            c.digest.clone(),
        ]);
    }
    t.print();
    println!();
    println!(
        "byte-identity: {} cells, every restored run matched its uninterrupted twin",
        cells.len()
    );

    // Thread counts must also agree with each other per (seed, crash) —
    // the checkpoint path must not perturb the E13 determinism contract.
    for &seed in &args.seeds {
        for crash in [false, true] {
            let ds: Vec<&String> = cells
                .iter()
                .filter(|c| c.seed == seed && c.crash == crash)
                .map(|c| &c.digest)
                .collect();
            for d in &ds[1..] {
                assert_eq!(
                    *d, ds[0],
                    "thread counts diverged for seed {seed:#x} crash {crash}"
                );
            }
        }
    }
    println!("thread-identity: digests agree across thread counts for every (seed, fault) pair");

    let (audit_seed, audit_ck, audit_digest) = audit_ck.expect("crash arm ran");
    let audit_ok = cross_process_audit(&args, audit_seed, &audit_ck, &audit_digest);
    println!(
        "cross-process restart audit: {}",
        if audit_ok {
            "restored in a fresh process, digest matched, lost_acked_keys == 0"
        } else {
            "FAIL"
        }
    );

    let mut body = String::from("{\n  \"experiment\": \"e14\",\n  \"schema_version\": 1,\n");
    body.push_str(&format!(
        concat!(
            "  \"config\": {{\"machines\": {}, \"replication\": {}, ",
            "\"ops_per_client\": {}, \"keys\": {}, \"value_size\": {}, ",
            "\"outstanding\": {}, \"ckpt_at_us\": {}, \"seeds\": {:?}, ",
            "\"threads\": {:?}}},\n"
        ),
        args.machines,
        args.replication,
        args.ops,
        args.keys,
        args.value_size,
        args.outstanding,
        args.ckpt_at_us,
        args.seeds,
        args.threads
    ));
    body.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        body.push_str(&format!(
            "    {}{}\n",
            c.json(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n");
    body.push_str(&format!(
        "  \"cross_process_audit\": {{\"ok\": {}, \"digest\": \"{}\"}}\n",
        audit_ok, audit_digest
    ));
    body.push_str("}\n");
    match std::fs::write(&args.out, &body) {
        Ok(()) => println!("\nwrote {}", args.out),
        Err(e) => eprintln!("\nfailed to write {}: {e}", args.out),
    }

    if !audit_ok {
        std::process::exit(1);
    }
    println!();
    println!(
        "expected shape: every cell's restored run is byte-identical to its \
         uninterrupted twin; crash cells lose zero acked writes at R >= 2"
    );
}
