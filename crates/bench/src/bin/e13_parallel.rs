//! E13 — parallel fabric execution: the same rack, stepped on 1..N worker
//! threads, must produce bit-identical results and (on a multi-core host)
//! near-linear wall-clock speedup.
//!
//! The windowed fabric scheduler (DESIGN.md §13) partitions machines across
//! OS threads but runs the *same* conservative time-window schedule at any
//! thread count, so parallelism is pure mechanism: it may change how fast
//! the simulation runs, never what it computes. E13 measures both halves of
//! that claim on an 8-machine rack KVS:
//!
//! - **Determinism** — for each thread count the run's event count and a
//!   digest over the fabric metrics, every machine's metrics hub, pool
//!   activity, per-machine key counts and the acked-write audit are
//!   recorded; the binary *hard-asserts* they are identical across thread
//!   counts before writing the artifact.
//! - **Scaling** — events per wall-second per thread count. Wall clock is
//!   host noise, so `--no-wall` omits it (CI double-runs the no-wall
//!   configuration and byte-compares the JSON). When the host has >= 4
//!   cores and wall metrics are on, the run *gates* on the 4-thread
//!   speedup (default >= 3x over single-threaded; tune or disable with
//!   `--min-speedup`); on smaller hosts the gate is reported as skipped —
//!   a 1-core container cannot exhibit parallel speedup.
//!
//! Writes `BENCH_e13.json` (override with `--out`); schema in
//! `EXPERIMENTS.md`.

use lastcpu_bench::Table;
use lastcpu_core::SystemConfig;
use lastcpu_fabric::FabricConfig;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::{build_rack_kvs_with_policy, RackSetup, RetryPolicy};
use lastcpu_net::PortId;
use lastcpu_sim::{export, SimDuration};

struct Args {
    threads: Vec<usize>,
    machines: usize,
    replication: usize,
    ops: u64,
    keys: u64,
    value_size: usize,
    outstanding: usize,
    seed: u64,
    wall: bool,
    min_speedup: f64,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            threads: vec![1, 2, 4],
            machines: 8,
            replication: 2,
            ops: 400,
            keys: 200,
            value_size: 128,
            outstanding: 8,
            seed: 0xE13,
            wall: true,
            min_speedup: 3.0,
            out: "BENCH_e13.json".into(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = || it.next().unwrap_or_default();
            match flag.as_str() {
                "--threads" => {
                    a.threads = val()
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(|p| p.trim().parse().unwrap_or_else(|_| panic!("bad --threads")))
                        .collect();
                }
                "--machines" => a.machines = val().parse().expect("--machines"),
                "--replication" => a.replication = val().parse().expect("--replication"),
                "--ops" => a.ops = val().parse().expect("--ops"),
                "--keys" => a.keys = val().parse().expect("--keys"),
                "--value-size" => a.value_size = val().parse().expect("--value-size"),
                "--outstanding" => a.outstanding = val().parse().expect("--outstanding"),
                "--seed" => a.seed = val().parse().expect("--seed"),
                "--no-wall" => a.wall = false,
                "--min-speedup" => a.min_speedup = val().parse().expect("--min-speedup"),
                "--out" => a.out = val(),
                _ => {} // same convention as the other experiments
            }
        }
        assert!(!a.threads.is_empty() && a.machines >= 1);
        a
    }
}

/// FNV-1a over a string, hex-encoded — the determinism digest folds several
/// large deterministic exports into one comparable token.
fn fnv1a(h: &mut u64, s: &str) {
    for b in s.bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

struct Cell {
    threads: usize,
    events: u64,
    virtual_ns: u64,
    digest: String,
    ops: u64,
    wall_seconds: Option<f64>,
}

impl Cell {
    fn events_per_sec(&self) -> Option<f64> {
        Some(self.events as f64 / self.wall_seconds?)
    }

    fn json(&self) -> String {
        let mut s = format!(
            concat!(
                "{{\"threads\": {}, \"events\": {}, \"virtual_ns\": {}, ",
                "\"ops\": {}, \"digest\": \"{}\""
            ),
            self.threads, self.events, self.virtual_ns, self.ops, self.digest
        );
        if let (Some(w), Some(eps)) = (self.wall_seconds, self.events_per_sec()) {
            s.push_str(&format!(
                ", \"wall_seconds\": {w:.6}, \"events_per_sec\": {eps:.1}"
            ));
        }
        s.push('}');
        s
    }
}

struct Bench {
    setup: RackSetup,
    client_ports: Vec<PortId>,
}

impl Bench {
    fn client(&self, i: usize) -> &KvsClientHost {
        self.setup
            .fabric
            .machine(self.setup.machines[i])
            .host_as(self.client_ports[i])
            .expect("client present")
    }

    fn all_done(&self) -> bool {
        (0..self.client_ports.len()).all(|i| self.client(i).is_done())
    }
}

fn run_cell(args: &Args, threads: usize) -> Cell {
    let mut setup = build_rack_kvs_with_policy(
        FabricConfig {
            threads,
            ..FabricConfig::default()
        },
        args.machines,
        args.replication,
        SystemConfig {
            seed: args.seed,
            trace: false,
            ..SystemConfig::default()
        },
        RetryPolicy::default(),
    );
    let mut client_ports = Vec::new();
    for i in 0..args.machines {
        let m = setup.machines[i];
        let router_port = setup.router_ports[i];
        let port = setup
            .fabric
            .machine_mut(m)
            .add_host(Box::new(KvsClientHost::new(
                router_port,
                WorkloadConfig {
                    keys: args.keys,
                    theta: 0.99,
                    read_fraction: 0.95,
                    value_size: args.value_size,
                    outstanding: args.outstanding,
                    total_ops: args.ops,
                    preload: true,
                    stats_prefix: format!("c{i}"),
                    ..WorkloadConfig::default()
                },
            )));
        client_ports.push(port);
    }
    let mut b = Bench {
        setup,
        client_ports,
    };

    b.setup.fabric.power_on();
    let started = std::time::Instant::now();
    let mut events = 0u64;
    let deadline = b.setup.fabric.now() + SimDuration::from_secs(60);
    while b.setup.fabric.now() < deadline {
        events += b.setup.fabric.run_for(SimDuration::from_millis(10));
        if b.all_done() {
            break;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    assert!(b.all_done(), "workload incomplete at threads={threads}");

    // Determinism digest: every deterministic observable of the run. A
    // divergence between thread counts lands here before it could hide in
    // aggregate throughput numbers.
    let fab = &b.setup.fabric;
    let mut h = 0xcbf29ce484222325u64;
    fnv1a(&mut h, &export::metrics_json(fab.metrics()));
    for i in 0..args.machines {
        let m = b.setup.machines[i];
        fnv1a(&mut h, &export::metrics_json(fab.machine(m).stats()));
        fnv1a(&mut h, &format!("{:?}", fab.machine(m).pool().stats()));
        fnv1a(&mut h, &format!("k{}", b.setup.nic(i).app().key_count()));
    }
    fnv1a(&mut h, &format!("lost{}", b.setup.lost_acked_keys()));

    Cell {
        threads,
        events,
        virtual_ns: b.setup.fabric.now().as_nanos(),
        digest: format!("{h:016x}"),
        ops: (0..args.machines).map(|i| b.client(i).ops_done()).sum(),
        wall_seconds: args.wall.then_some(wall),
    }
}

fn main() {
    let args = Args::parse();
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("E13: parallel fabric — same rack on 1..N worker threads");
    println!(
        "    ({} machines, R={}, {} ops/client, seed {:#x}, host cores {})",
        args.machines, args.replication, args.ops, args.seed, host_cores
    );
    println!();

    let cells: Vec<Cell> = args.threads.iter().map(|&t| run_cell(&args, t)).collect();

    let mut t = Table::new(&["threads", "events", "virtual ms", "digest", "Mev/s wall"]);
    for c in &cells {
        t.row_strings(vec![
            c.threads.to_string(),
            c.events.to_string(),
            format!("{:.2}", c.virtual_ns as f64 / 1e6),
            c.digest.clone(),
            c.events_per_sec()
                .map_or("-".into(), |e| format!("{:.2}", e / 1e6)),
        ]);
    }
    t.print();

    // --- The determinism contract is a hard assert, not a report ----------
    let base = &cells[0];
    for c in &cells[1..] {
        assert_eq!(
            (c.events, c.virtual_ns, &c.digest),
            (base.events, base.virtual_ns, &base.digest),
            "threads={} diverged from threads={}: the windowed scheduler \
             leaked nondeterminism",
            c.threads,
            base.threads
        );
    }
    println!();
    println!(
        "determinism: {} thread counts, identical events ({}) and digest ({})",
        cells.len(),
        base.events,
        base.digest
    );

    // --- The scaling gate, where the host can express it -------------------
    let speedup = (args.wall && cells.len() >= 2)
        .then(|| {
            let one = cells.iter().find(|c| c.threads == 1)?;
            let best = cells.iter().rev().find(|c| c.threads >= 4)?;
            Some(best.events_per_sec()? / one.events_per_sec()?)
        })
        .flatten();
    let mut failed = false;
    if let Some(s) = speedup {
        if host_cores >= 4 {
            let ok = s >= args.min_speedup;
            println!(
                "scaling: {s:.2}x at >=4 threads over 1 (gate >= {:.1}x) {}",
                args.min_speedup,
                if ok { "ok" } else { "FAIL" }
            );
            failed = !ok;
        } else {
            println!(
                "scaling: {s:.2}x at >=4 threads over 1 (gate skipped: host \
                 has {host_cores} core(s), parallel speedup is unobservable)"
            );
        }
    }

    let mut body = String::from("{\n  \"experiment\": \"e13\",\n  \"schema_version\": 1,\n");
    body.push_str(&format!(
        concat!(
            "  \"config\": {{\"machines\": {}, \"replication\": {}, ",
            "\"ops_per_client\": {}, \"keys\": {}, \"value_size\": {}, ",
            "\"outstanding\": {}, \"seed\": {}, \"wall\": {}}},\n"
        ),
        args.machines,
        args.replication,
        args.ops,
        args.keys,
        args.value_size,
        args.outstanding,
        args.seed,
        args.wall
    ));
    body.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    body.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        body.push_str(&format!(
            "    {}{}\n",
            c.json(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]");
    if let (Some(s), true) = (speedup, host_cores >= 4) {
        body.push_str(&format!(",\n  \"speedup_over_single\": {s:.3}"));
    }
    body.push_str("\n}\n");
    match std::fs::write(&args.out, &body) {
        Ok(()) => println!("\nwrote {}", args.out),
        Err(e) => eprintln!("\nfailed to write {}: {e}", args.out),
    }

    println!();
    println!("expected shape: bit-identical events/digest at every thread");
    println!("count (parallelism is mechanism, not semantics); events/sec");
    println!("grows with threads on a multi-core host, bounded by the");
    println!("lookahead-window barrier frequency.");
    if failed {
        std::process::exit(1);
    }
}
