//! E11 — security evaluation: an adversarial device attacks the paper's
//! isolation story, and the audit layer proves every attack blocked.
//!
//! §2.2's claim is that per-device IOMMUs plus a bus that only programs
//! them "on instruction from the registered controller" make DRAM safe in
//! a machine where *every* device is a first-class bus citizen. E11 tests
//! that claim the only honest way: by compromising a device. A
//! [`MaliciousDevice`] joins an otherwise ordinary §3 KVS machine and runs
//! the full attack matrix —
//!
//! - **wild-dma** — DMA at addresses never mapped for it, under the victim
//!   app's PASID and random PASIDs (its own IOMMU must fault every probe);
//! - **stale-generation** — DMA at every VA window the KVS session protocol
//!   has used or will use (rotated-away generations must be revoked);
//! - **confused-deputy** — forged `MapInstruction`s, a vacant-class
//!   `RegisterController` escalation, and guessed-handle `Share`s (the bus
//!   and memory controller must refuse every one);
//! - **ssdp-spoof** — `Announce`s shadowing live service names, verbatim
//!   replays of observed descriptors, and forged `QueryHit`s (denied under
//!   the hardened [`SecurityPolicy`]);
//! - **control-flood** — bursts of bus-directed messages (shed by the
//!   hardened policy's per-sender limiter without starving the workload).
//!
//! Every verdict is recorded by the DMA/bus audit layer (`sec.*` metrics;
//! `SystemConfig::security_audit`), so each row's `blocked` count is
//! *evidence*, not absence of symptoms; `leaked` additionally cross-checks
//! the IOMMU state with the read-only probe oracle and the bus directory.
//! Any `leaked > 0` under the hardened policy is a real isolation bug.
//!
//! Phases: per seed, (a) the single-machine matrix under the hardened
//! policy with a no-attacker control run (integrity: the victim's key count
//! matches the control's, so blocking the attacker cost the workload
//! nothing), (b) the same matrix on the E10 rack (attacker on machine 0,
//! replicated shards, acked-write audit). One extra single-machine run per
//! invocation repeats seed 0 under the *default* policy to document which
//! classes the opt-in hardening closes (discovery shadowing and floods) and
//! which the base protocol already blocks (all DMA and deputy classes).
//!
//! Everything is virtual-time and seeded: two same-flag runs produce
//! byte-identical `BENCH_e11.json` (`scripts/ci.sh` double-runs the smoke
//! configuration and diffs). Schema in `EXPERIMENTS.md`; threat model in
//! `DESIGN.md` §11.

use lastcpu_bench::Table;
use lastcpu_bus::{SecurityPolicy, SystemBus};
use lastcpu_core::{DeviceHandle, System, SystemConfig};
use lastcpu_devices::nic::SmartNic;
use lastcpu_devices::ssd::SsdConfig;
use lastcpu_fabric::FabricConfig;
use lastcpu_iommu::AccessKind;
use lastcpu_kvs::build::KVS_FILE;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::{build_cpuless_kvs, build_rack_kvs, KvsNicApp, ServerConfig, VA_STRIDE};
use lastcpu_mem::{Pasid, VirtAddr};
use lastcpu_net::PortId;
use lastcpu_sec::{AttackKind, AttackPlan, AttackStats, AttackTargets, MaliciousDevice};
use lastcpu_sim::{export, SimDuration, SimTime};

struct Args {
    seeds: Vec<u64>,
    ops: u64,
    keys: u64,
    value_size: usize,
    outstanding: usize,
    flood_limit: u32,
    machines: usize,
    replication: usize,
    no_rack: bool,
    out: String,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            seeds: vec![0xE11, 0xE11 + 1, 0xE11 + 2],
            ops: 300,
            keys: 50,
            value_size: 64,
            outstanding: 4,
            flood_limit: 16,
            machines: 3,
            replication: 2,
            no_rack: false,
            out: "BENCH_e11.json".into(),
            trace_out: None,
            metrics_out: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = || it.next().unwrap_or_default();
            match flag.as_str() {
                "--seeds" => {
                    a.seeds = val()
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(|p| {
                            p.trim()
                                .parse()
                                .unwrap_or_else(|_| panic!("bad --seeds: {p:?}"))
                        })
                        .collect()
                }
                "--ops" => a.ops = val().parse().expect("--ops"),
                "--keys" => a.keys = val().parse().expect("--keys"),
                "--value-size" => a.value_size = val().parse().expect("--value-size"),
                "--outstanding" => a.outstanding = val().parse().expect("--outstanding"),
                "--flood-limit" => a.flood_limit = val().parse().expect("--flood-limit"),
                "--machines" => a.machines = val().parse().expect("--machines"),
                "--replication" => a.replication = val().parse().expect("--replication"),
                "--no-rack" => a.no_rack = true,
                "--out" => a.out = val(),
                "--trace-out" => a.trace_out = it.next(),
                "--metrics-out" => a.metrics_out = it.next(),
                _ => {} // same convention as the other benches: ignore unknown flags
            }
        }
        assert!(!a.seeds.is_empty(), "--seeds must name at least one seed");
        assert!(
            a.machines >= 2,
            "--machines must be >= 2 (attacker shares m0)"
        );
        a
    }

    fn workload(&self, prefix: &str) -> WorkloadConfig {
        WorkloadConfig {
            keys: self.keys,
            theta: 0.9,
            read_fraction: 0.8,
            value_size: self.value_size,
            outstanding: self.outstanding,
            total_ops: self.ops,
            preload: true,
            stats_prefix: prefix.into(),
            ..WorkloadConfig::default()
        }
    }
}

/// Virtual-time cap per run.
const RUN_CAP: SimDuration = SimDuration::from_secs(30);
/// First attack fires here; one matrix event every [`ATTACK_SPACING`].
const ATTACK_START: SimDuration = SimDuration::from_millis(10);
const ATTACK_SPACING: SimDuration = SimDuration::from_millis(2);
/// Runs never stop before this, so every scheduled attack has fired.
const ATTACK_WINDOW: SimDuration = SimDuration::from_millis(40);

/// The attack schedule every run uses: the full matrix once, then a second
/// wild-DMA + stale-generation round at steady state (windows are mapped
/// and warm by then — the more interesting moment to probe).
fn plan(seed: u64) -> AttackPlan {
    let mut p = AttackPlan::matrix(seed, SimTime::ZERO + ATTACK_START, ATTACK_SPACING);
    p.inject(
        SimTime::ZERO + SimDuration::from_millis(30),
        AttackKind::WildDma,
    )
    .inject(
        SimTime::ZERO + SimDuration::from_millis(32),
        AttackKind::StaleGeneration,
    );
    p
}

fn policy_name(hardened: bool) -> &'static str {
    if hardened {
        "hardened"
    } else {
        "default"
    }
}

// --- leak probes ---------------------------------------------------------

/// Independent evidence gathered *after* a run, cross-checking the
/// attacker's own tally against IOMMU and bus-directory state via the
/// read-only probe oracle. Each field is leak evidence for one class.
#[derive(Default)]
struct LeakProbes {
    /// Attacker-side translations live for the victim app's base window.
    wild_hits: u64,
    /// Victim generation windows alive beyond the single current one.
    stale_extra_windows: u64,
    /// Attacker-side translations live at the VAs its forged
    /// `MapInstruction`/`Share` requests named.
    deputy_hits: u64,
    /// Attacker services in the bus directory shadowing another alive
    /// device's announced name.
    shadow_entries: u64,
    /// Bus-side count of flood messages shed (`sec.flood_dropped`).
    flood_shed: u64,
    /// Whether the victim workload completed despite the attacker.
    client_done: bool,
}

/// Counts attacker-IOMMU translations at the VAs the attacks targeted.
fn probe_attacker(system: &System, attacker: DeviceHandle, app_pasid: u32) -> (u64, u64) {
    let mmu = system.iommu(attacker);
    let pasid = Pasid(app_pasid);
    let hit = |va: u64| {
        u64::from(
            mmu.probe(pasid, VirtAddr::new(va), AccessKind::Read)
                .is_some(),
        )
    };
    let wild = hit(0x2000_0000);
    // Confused-deputy targets: the forged MapInstruction (0x7000_0000, 4
    // pages), the escalated one (0x7200_0000) and every guessable forged
    // Share slot (0x7100_0000 + handle<<16).
    let mut deputy = hit(0x7000_0000) + hit(0x7200_0000);
    for guess in 0..16u64 {
        deputy += hit(0x7100_0000 + (guess << 16));
    }
    (wild, deputy)
}

/// Counts the victim app's generation windows that still translate. In a
/// fault-free run exactly the current generation must be live; anything
/// more is a revocation leak (the stale-generation attack's target).
fn probe_victim_windows(system: &System, frontend: DeviceHandle, app_pasid: u32) -> u64 {
    let mmu = system.iommu(frontend);
    (0..8u64)
        .filter(|g| {
            mmu.probe(
                Pasid(app_pasid),
                VirtAddr::new(0x2000_0000 + g * VA_STRIDE),
                AccessKind::Read,
            )
            .is_some()
        })
        .count() as u64
}

/// Counts attacker-announced services whose *name* shadows a service some
/// other alive device announced (discovery-poisoning evidence).
fn directory_shadow(bus: &SystemBus, attacker: DeviceHandle) -> u64 {
    let Some(me) = bus.device(attacker.id) else {
        return 0;
    };
    me.services
        .iter()
        .filter(|mine| {
            bus.alive()
                .filter(|e| e.id != attacker.id)
                .any(|e| e.services.iter().any(|s| s.name == mine.name))
        })
        .count() as u64
}

// --- per-attack rows ------------------------------------------------------

struct AttackRow {
    kind: &'static str,
    attempts: u64,
    denied_local: u64,
    denied_remote: u64,
    acked_ok: u64,
    unresolved: u64,
    blocked: u64,
    leaked: u64,
}

impl AttackRow {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"kind\": \"{}\", \"attempts\": {}, \"denied_local\": {}, ",
                "\"denied_remote\": {}, \"acked_ok\": {}, \"unresolved\": {}, ",
                "\"blocked\": {}, \"leaked\": {}}}"
            ),
            self.kind,
            self.attempts,
            self.denied_local,
            self.denied_remote,
            self.acked_ok,
            self.unresolved,
            self.blocked,
            self.leaked,
        )
    }
}

/// Joins the attacker's own tally with the post-run probes into one row
/// per attack class. `leaked` is `acked_ok` (the attacker saw success)
/// plus class-specific state evidence; for floods, `blocked` is the
/// bus-side shed count (floods draw no replies) and `leaked` flags a
/// starved victim workload.
fn attack_rows(stats: &[(AttackKind, AttackStats)], p: &LeakProbes) -> Vec<AttackRow> {
    stats
        .iter()
        .map(|&(kind, s)| {
            let (extra_leak, blocked) = match kind {
                AttackKind::WildDma => (p.wild_hits, s.blocked()),
                AttackKind::StaleGeneration => (p.stale_extra_windows, s.blocked()),
                AttackKind::ConfusedDeputy => (p.deputy_hits, s.blocked()),
                AttackKind::SsdpSpoof => (p.shadow_entries, s.blocked()),
                AttackKind::ControlFlood => (u64::from(!p.client_done), p.flood_shed),
            };
            AttackRow {
                kind: kind.tag(),
                attempts: s.attempts,
                denied_local: s.denied_local,
                denied_remote: s.denied_remote,
                acked_ok: s.acked_ok,
                unresolved: s.unresolved(),
                blocked,
                leaked: s.acked_ok + extra_leak,
            }
        })
        .collect()
}

fn leaked_total(rows: &[AttackRow]) -> u64 {
    rows.iter().map(|r| r.leaked).sum()
}

// --- audit summary --------------------------------------------------------

/// The run's audit evidence: `sec.*` metrics plus the bus audit's exact
/// cumulative counters (counters survive the per-dispatch drain; only the
/// bounded record log is drained into the trace).
#[derive(Default)]
struct AuditCell {
    dma_allowed: u64,
    dma_denied: u64,
    privops_allowed: u64,
    privops_denied: u64,
    flood_dropped: u64,
    bus_denied: u64,
    bus_rate_limited: u64,
}

impl AuditCell {
    fn add_system(&mut self, system: &System) {
        let hub = system.stats();
        self.dma_allowed += hub.counter("sec.dma_allowed");
        self.dma_denied += hub.counter("sec.dma_denied");
        self.privops_allowed += hub.counter("sec.privops_allowed");
        self.privops_denied += hub.counter("sec.privops_denied");
        self.flood_dropped += hub.counter("sec.flood_dropped");
        if let Some(a) = system.bus().audit() {
            self.bus_denied += a.denied();
            self.bus_rate_limited += a.rate_limited();
        }
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"dma_allowed\": {}, \"dma_denied\": {}, \"privops_allowed\": {}, ",
                "\"privops_denied\": {}, \"flood_dropped\": {}, \"bus_denied\": {}, ",
                "\"bus_rate_limited\": {}}}"
            ),
            self.dma_allowed,
            self.dma_denied,
            self.privops_allowed,
            self.privops_denied,
            self.flood_dropped,
            self.bus_denied,
            self.bus_rate_limited,
        )
    }
}

// --- single-machine phase -------------------------------------------------

struct SingleCell {
    seed: u64,
    policy: &'static str,
    client_done: bool,
    client_ops: u64,
    client_errors: u64,
    victim_keys: u64,
    control_keys: u64,
    integrity_ok: bool,
    audit: AuditCell,
    attacks: Vec<AttackRow>,
    leaked: u64,
}

impl SingleCell {
    fn json(&self) -> String {
        let attacks: Vec<String> = self.attacks.iter().map(|a| a.json()).collect();
        format!(
            concat!(
                "{{\"seed\": {}, \"policy\": \"{}\", \"client_done\": {}, ",
                "\"client_ops\": {}, \"client_errors\": {}, \"victim_keys\": {}, ",
                "\"control_keys\": {}, \"integrity_ok\": {}, \"audit\": {}, ",
                "\"attacks\": [{}], \"leaked_total\": {}}}"
            ),
            self.seed,
            self.policy,
            self.client_done,
            self.client_ops,
            self.client_errors,
            self.victim_keys,
            self.control_keys,
            self.integrity_ok,
            self.audit.json(),
            attacks.join(", "),
            self.leaked,
        )
    }
}

fn sys_config(seed: u64, hardened: bool, args: &Args) -> SystemConfig {
    SystemConfig {
        seed,
        security_audit: true,
        security_policy: if hardened {
            SecurityPolicy::hardened(args.flood_limit)
        } else {
            SecurityPolicy::default()
        },
        trace: args.trace_out.is_some(),
        ..SystemConfig::default()
    }
}

/// Runs in 10 ms slices until the client is done *and* the attack window
/// has fully elapsed, or `cap` virtual time passes.
fn run_single_system(system: &mut System, port: PortId, cap: SimDuration) -> bool {
    let deadline = system.now() + cap;
    let window = system.now() + ATTACK_WINDOW;
    while system.now() < deadline {
        system.run_for(SimDuration::from_millis(10));
        let done = system
            .host_as::<KvsClientHost>(port)
            .is_some_and(|c| c.is_done());
        if done && system.now() >= window {
            return true;
        }
    }
    system
        .host_as::<KvsClientHost>(port)
        .is_some_and(|c| c.is_done())
}

fn victim_keys(system: &System, frontend: DeviceHandle) -> u64 {
    system
        .device_as::<SmartNic<KvsNicApp>>(frontend)
        .map_or(0, |n| n.app().key_count() as u64)
}

/// One single-machine run: control (no attacker) then the attacked run,
/// both from the same seed and config.
fn run_single(args: &Args, seed: u64, hardened: bool) -> (SingleCell, System) {
    // Control: the identical machine and workload, no attacker. Its final
    // key count is the integrity reference, and (hardened) it shows the
    // policy is transparent to legitimate traffic.
    let control_keys = {
        let mut setup = build_cpuless_kvs(
            sys_config(seed, hardened, args),
            SsdConfig::default(),
            ServerConfig::default(),
        );
        let port = setup.system.add_host(Box::new(KvsClientHost::new(
            setup.kvs_port,
            args.workload("c0"),
        )));
        setup.system.power_on();
        run_single_system(&mut setup.system, port, RUN_CAP);
        victim_keys(&setup.system, setup.frontend)
    };

    let mut setup = build_cpuless_kvs(
        sys_config(seed, hardened, args),
        SsdConfig::default(),
        ServerConfig::default(),
    );
    // The app's PASID is public knowledge by design (§2.2): the NIC is
    // attached right after the SSD, and the app's address space is named
    // after the NIC's bus address.
    let app_pasid = setup.ssd.id.0 + 2;
    let memctl = setup
        .system
        .memctl_id()
        .expect("cpu-less build has a memory controller");
    let mut targets = AttackTargets::new(setup.frontend.id, memctl, app_pasid);
    targets.shadow_services = vec![format!("file:{KVS_FILE}"), "fs".into()];
    let attacker =
        setup
            .system
            .add_device(Box::new(MaliciousDevice::new("evil0", plan(seed), targets)));
    let port = setup.system.add_host(Box::new(KvsClientHost::new(
        setup.kvs_port,
        args.workload("c0"),
    )));
    setup.system.power_on();
    let client_done = run_single_system(&mut setup.system, port, RUN_CAP);

    let (wild_hits, deputy_hits) = probe_attacker(&setup.system, attacker, app_pasid);
    let probes = LeakProbes {
        wild_hits,
        stale_extra_windows: probe_victim_windows(&setup.system, setup.frontend, app_pasid)
            .saturating_sub(1),
        deputy_hits,
        shadow_entries: directory_shadow(setup.system.bus(), attacker),
        flood_shed: setup.system.stats().counter("sec.flood_dropped"),
        client_done,
    };
    let evil = setup
        .system
        .device_as::<MaliciousDevice>(attacker)
        .expect("attacker present");
    let attacks = attack_rows(&evil.all_stats(), &probes);
    let client: &KvsClientHost = setup.system.host_as(port).expect("client present");
    let vkeys = victim_keys(&setup.system, setup.frontend);
    let mut audit = AuditCell::default();
    audit.add_system(&setup.system);
    let cell = SingleCell {
        seed,
        policy: policy_name(hardened),
        client_done,
        client_ops: client.ops_done(),
        client_errors: client.errors(),
        victim_keys: vkeys,
        control_keys,
        integrity_ok: client_done && client.errors() == 0 && vkeys == control_keys,
        leaked: leaked_total(&attacks),
        audit,
        attacks,
    };
    (cell, setup.system)
}

// --- rack phase -----------------------------------------------------------

struct RackCell {
    seed: u64,
    machines: usize,
    replication: usize,
    clients_done: bool,
    client_ops: u64,
    client_errors: u64,
    lost_acked_keys: u64,
    audit: AuditCell,
    attacks: Vec<AttackRow>,
    leaked: u64,
}

impl RackCell {
    fn json(&self) -> String {
        let attacks: Vec<String> = self.attacks.iter().map(|a| a.json()).collect();
        format!(
            concat!(
                "{{\"seed\": {}, \"machines\": {}, \"replication\": {}, ",
                "\"policy\": \"hardened\", \"clients_done\": {}, \"client_ops\": {}, ",
                "\"client_errors\": {}, \"lost_acked_keys\": {}, \"audit\": {}, ",
                "\"attacks\": [{}], \"leaked_total\": {}}}"
            ),
            self.seed,
            self.machines,
            self.replication,
            self.clients_done,
            self.client_ops,
            self.client_errors,
            self.lost_acked_keys,
            self.audit.json(),
            attacks.join(", "),
            self.leaked,
        )
    }
}

/// The rack matrix: the same attacker embedded in machine 0 of an E10
/// rack — replicated shards, cross-machine traffic, acked-write audit.
fn run_rack(args: &Args, seed: u64) -> RackCell {
    let mut setup = build_rack_kvs(
        FabricConfig::default(),
        args.machines,
        args.replication,
        sys_config(seed, true, args),
    );
    let m0 = setup.machines[0];
    let frontend0 = setup.frontends[0];
    // Same attach-order arithmetic as the single-machine build: the NIC
    // follows the SSD on the bus, so app PASID = NIC id + 1.
    let app_pasid = frontend0.id.0 + 1;
    let memctl = setup
        .fabric
        .machine(m0)
        .memctl_id()
        .expect("rack machine has a memory controller");
    let mut targets = AttackTargets::new(frontend0.id, memctl, app_pasid);
    targets.shadow_services = vec![format!("file:{KVS_FILE}"), "fs".into()];
    let attacker = setup
        .fabric
        .machine_mut(m0)
        .add_device(Box::new(MaliciousDevice::new("evil0", plan(seed), targets)));
    let mut ports = Vec::new();
    for i in 0..args.machines {
        let m = setup.machines[i];
        let router_port = setup.router_ports[i];
        let port = setup
            .fabric
            .machine_mut(m)
            .add_host(Box::new(KvsClientHost::new(
                router_port,
                args.workload(&format!("c{i}")),
            )));
        ports.push(port);
    }
    setup.fabric.power_on();
    let all_done = |setup: &lastcpu_kvs::RackSetup, ports: &[PortId]| {
        (0..ports.len()).all(|i| {
            setup
                .fabric
                .machine(setup.machines[i])
                .host_as::<KvsClientHost>(ports[i])
                .is_some_and(|c| c.is_done())
        })
    };
    let deadline = setup.fabric.now() + RUN_CAP;
    let window = setup.fabric.now() + ATTACK_WINDOW;
    while setup.fabric.now() < deadline {
        setup.fabric.run_for(SimDuration::from_millis(10));
        if all_done(&setup, &ports) && setup.fabric.now() >= window {
            break;
        }
    }
    let clients_done = all_done(&setup, &ports);

    let sys0 = setup.fabric.machine(m0);
    let (wild_hits, deputy_hits) = probe_attacker(sys0, attacker, app_pasid);
    let probes = LeakProbes {
        wild_hits,
        stale_extra_windows: probe_victim_windows(sys0, frontend0, app_pasid).saturating_sub(1),
        deputy_hits,
        shadow_entries: directory_shadow(sys0.bus(), attacker),
        flood_shed: sys0.stats().counter("sec.flood_dropped"),
        client_done: clients_done,
    };
    let evil = sys0
        .device_as::<MaliciousDevice>(attacker)
        .expect("attacker present");
    let attacks = attack_rows(&evil.all_stats(), &probes);
    let mut audit = AuditCell::default();
    let mut client_ops = 0;
    let mut client_errors = 0;
    for (m, port) in setup.machines.iter().zip(&ports).take(args.machines) {
        let sys = setup.fabric.machine(*m);
        audit.add_system(sys);
        if let Some(c) = sys.host_as::<KvsClientHost>(*port) {
            client_ops += c.ops_done();
            client_errors += c.errors();
        }
    }
    RackCell {
        seed,
        machines: args.machines,
        replication: args.replication,
        clients_done,
        client_ops,
        client_errors,
        lost_acked_keys: setup.lost_acked_keys() as u64,
        leaked: leaked_total(&attacks),
        audit,
        attacks,
    }
}

// --- main -----------------------------------------------------------------

fn main() {
    let args = Args::parse();
    println!("E11: security — adversarial device vs the audited isolation layer");
    println!(
        "    (seeds {:?}, {} ops, {} keys, flood limit {}/ms, rack {}x R{})",
        args.seeds, args.ops, args.keys, args.flood_limit, args.machines, args.replication
    );
    println!();

    // --- Phase A: single machine, hardened policy, every seed; plus one
    // default-policy run on the first seed for the opt-in comparison.
    let mut singles: Vec<SingleCell> = Vec::new();
    let mut last_system: Option<System> = None;
    let mut runs: Vec<(u64, bool)> = args.seeds.iter().map(|&s| (s, true)).collect();
    runs.push((args.seeds[0], false));
    for &(seed, hardened) in &runs {
        let (cell, system) = run_single(&args, seed, hardened);
        if hardened {
            last_system = Some(system);
        }
        singles.push(cell);
    }

    let mut t = Table::new(&[
        "seed",
        "policy",
        "attempts",
        "blocked",
        "leaked",
        "dma denied",
        "privop denied",
        "flood shed",
        "integrity",
    ]);
    for c in &singles {
        t.row_strings(vec![
            format!("{:#x}", c.seed),
            c.policy.to_string(),
            c.attacks
                .iter()
                .map(|a| a.attempts)
                .sum::<u64>()
                .to_string(),
            c.attacks.iter().map(|a| a.blocked).sum::<u64>().to_string(),
            c.leaked.to_string(),
            c.audit.dma_denied.to_string(),
            c.audit.privops_denied.to_string(),
            c.audit.flood_dropped.to_string(),
            if c.integrity_ok { "ok" } else { "VIOLATED" }.to_string(),
        ]);
    }
    t.print();

    println!();
    println!(
        "attack matrix, seed {:#x}, hardened policy:",
        singles[0].seed
    );
    let mut at = Table::new(&[
        "attack",
        "attempts",
        "denied local",
        "denied remote",
        "acked ok",
        "unresolved",
        "leaked",
    ]);
    for a in &singles[0].attacks {
        at.row_strings(vec![
            a.kind.to_string(),
            a.attempts.to_string(),
            a.denied_local.to_string(),
            a.denied_remote.to_string(),
            a.acked_ok.to_string(),
            a.unresolved.to_string(),
            a.leaked.to_string(),
        ]);
    }
    at.print();

    // --- Phase B: the rack.
    let mut racks: Vec<RackCell> = Vec::new();
    if !args.no_rack {
        println!();
        println!(
            "rack: attacker embedded in m0 of {} machines, R = {}",
            args.machines, args.replication
        );
        let mut rt = Table::new(&[
            "seed",
            "attempts",
            "blocked",
            "leaked",
            "lost acked",
            "client errs",
            "done",
        ]);
        for &seed in &args.seeds {
            let c = run_rack(&args, seed);
            rt.row_strings(vec![
                format!("{:#x}", c.seed),
                c.attacks
                    .iter()
                    .map(|a| a.attempts)
                    .sum::<u64>()
                    .to_string(),
                c.attacks.iter().map(|a| a.blocked).sum::<u64>().to_string(),
                c.leaked.to_string(),
                c.lost_acked_keys.to_string(),
                c.client_errors.to_string(),
                c.clients_done.to_string(),
            ]);
            racks.push(c);
        }
        rt.print();
    }

    // Hardened rows must never leak; this is the number ci.sh pins to 0.
    let leaked_hardened: u64 = singles
        .iter()
        .filter(|c| c.policy == "hardened")
        .map(|c| c.leaked)
        .sum::<u64>()
        + racks.iter().map(|c| c.leaked).sum::<u64>();

    // --- Artifacts.
    if let Some(system) = &last_system {
        if let Some(path) = &args.trace_out {
            let body = if path.ends_with(".json") {
                export::trace_chrome(system.trace())
            } else {
                export::trace_jsonl(system.trace())
            };
            match std::fs::write(path, body) {
                Ok(()) => eprintln!("wrote trace to {path}"),
                Err(e) => eprintln!("failed to write trace to {path}: {e}"),
            }
        }
        if let Some(path) = &args.metrics_out {
            let body = if path.ends_with(".json") {
                export::metrics_json(system.stats())
            } else {
                export::metrics_prometheus(system.stats())
            };
            match std::fs::write(path, body) {
                Ok(()) => eprintln!("wrote metrics to {path}"),
                Err(e) => eprintln!("failed to write metrics to {path}: {e}"),
            }
        }
    }

    // --- JSON.
    let mut body = String::from("{\n  \"experiment\": \"e11\",\n  \"schema_version\": 1,\n");
    body.push_str(&format!(
        concat!(
            "  \"config\": {{\"seeds\": {:?}, \"ops\": {}, \"keys\": {}, ",
            "\"value_size\": {}, \"outstanding\": {}, \"flood_limit\": {}, ",
            "\"machines\": {}, \"replication\": {}}},\n"
        ),
        args.seeds,
        args.ops,
        args.keys,
        args.value_size,
        args.outstanding,
        args.flood_limit,
        args.machines,
        args.replication,
    ));
    body.push_str("  \"single\": [\n");
    for (i, c) in singles.iter().enumerate() {
        body.push_str(&format!(
            "    {}{}\n",
            c.json(),
            if i + 1 < singles.len() { "," } else { "" }
        ));
    }
    body.push_str("  ],\n  \"rack\": [\n");
    for (i, c) in racks.iter().enumerate() {
        body.push_str(&format!(
            "    {}{}\n",
            c.json(),
            if i + 1 < racks.len() { "," } else { "" }
        ));
    }
    body.push_str(&format!(
        "  ],\n  \"leaked_total_hardened\": {leaked_hardened}\n}}\n"
    ));
    match std::fs::write(&args.out, &body) {
        Ok(()) => println!("\nwrote {}", args.out),
        Err(e) => eprintln!("\nfailed to write {}: {e}", args.out),
    }

    println!();
    if leaked_hardened == 0 {
        println!("expected shape: every attack class fully blocked under the hardened");
        println!("policy (leaked_total_hardened = 0), with the denials *audited* — wild");
        println!("and stale DMA fault at the attacker's own IOMMU, deputy requests are");
        println!("refused at the bus/memctl, spoofed announces and floods are shed; the");
        println!("default-policy row documents that only discovery shadowing needs the");
        println!("opt-in hardening. The victim workload completes unharmed either way.");
    } else {
        println!("SECURITY LEAK: leaked_total_hardened = {leaked_hardened} — an attack class");
        println!("was not fully blocked under the hardened policy. This is a bug in the");
        println!("isolation layer, not an acceptable result; see the per-attack rows.");
    }
}
