//! E7 — service discovery at machine scale (§2.2).
//!
//! The paper adopts SSDP-style discovery: a broadcast query which every
//! matching device answers. The cost is a broadcast per lookup — this
//! experiment quantifies it against device count and compares with the
//! baseline kernel's O(1) central-directory lookup (the honest trade-off:
//! the paper gives up the global view, and pays broadcasts for it).

use lastcpu_baseline::{CpuDevice, IdleApp};
use lastcpu_bench::drivers::{Announcer, DiscoverProbe};
use lastcpu_bench::{ObsArgs, Table};
use lastcpu_bus::{DeviceId, Dst, Envelope, Payload, RequestId};
use lastcpu_core::devices::device::{Device, DeviceCtx};
use lastcpu_core::{System, SystemConfig};
use lastcpu_sim::{SimDuration, SimTime};

/// Decentralized sweep: returns (mean latency, broadcasts per query, bus
/// bytes per query).
fn run_decentralized(
    devices: u32,
    services_per_device: u16,
    obs: &ObsArgs,
) -> (SimDuration, f64, f64) {
    let mut config = SystemConfig {
        trace: false,
        ..SystemConfig::default()
    };
    obs.apply(&mut config);
    let mut sys = System::new(config);
    sys.add_memctl("memctl0");
    for i in 0..devices {
        sys.add_device(Box::new(Announcer::new(
            &format!("dev{i}"),
            services_per_device,
        )));
    }
    let probe = sys.add_device(Box::new(DiscoverProbe::new("probe0", "svc:dev1:*", 10)));
    sys.power_on();
    // Boot announcements settle well before the probe's 200us start delay.
    sys.run_for(SimDuration::from_micros(150));
    let before_b = sys.bus().stats().broadcast_deliveries;
    let before_bytes = sys.bus().stats().bytes;
    sys.run_for(SimDuration::from_millis(50));
    let p: &DiscoverProbe = sys.device_as(probe).expect("probe");
    assert!(
        p.is_done(),
        "probe incomplete ({} sweeps)",
        p.latencies.len()
    );
    assert_eq!(p.last_hits, services_per_device as usize);
    let mean = SimDuration::from_nanos(
        p.latencies.iter().map(|d| d.as_nanos()).sum::<u64>() / p.latencies.len() as u64,
    );
    let queries = p.latencies.len() as f64;
    // Broadcast traffic includes heartbeat-era noise; queries dominate.
    let bcasts = (sys.bus().stats().broadcast_deliveries - before_b) as f64 / queries;
    let bytes = (sys.bus().stats().bytes - before_bytes) as f64 / queries;
    obs.dump(&sys);
    (mean, bcasts, bytes)
}

/// A device that measures centralized lookups against the kernel directory.
struct CentralProbe {
    name: String,
    cpu: DeviceId,
    iterations: u32,
    sent_at: Option<SimTime>,
    req: Option<RequestId>,
    pub latencies: Vec<SimDuration>,
}

impl CentralProbe {
    fn new(name: &str, cpu: DeviceId, iterations: u32) -> Self {
        CentralProbe {
            name: name.to_string(),
            cpu,
            iterations,
            sent_at: None,
            req: None,
            latencies: Vec::new(),
        }
    }

    fn is_done(&self) -> bool {
        self.latencies.len() as u32 >= self.iterations
    }

    fn lookup(&mut self, ctx: &mut DeviceCtx<'_>) {
        self.sent_at = Some(ctx.now + ctx.elapsed());
        self.req = Some(ctx.send_bus(
            Dst::Device(self.cpu),
            Payload::Query {
                pattern: "svc:dev1:0".into(),
            },
        ));
    }
}

impl Device for CentralProbe {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "central-probe"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: self.name.clone(),
                kind: "central-probe".into(),
            },
        );
        ctx.set_timer(SimDuration::from_millis(2), 1);
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        match env.payload {
            Payload::HelloAck { .. } => {
                // Give the kernel time to boot + probe, then start.
                ctx.set_timer(SimDuration::from_millis(3), 2);
            }
            Payload::QueryHit { .. } if Some(env.req) == self.req => {
                if let Some(at) = self.sent_at.take() {
                    self.latencies.push(ctx.now.since(at));
                }
                if !self.is_done() {
                    self.lookup(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        match token {
            1 => {
                ctx.send_bus(Dst::Bus, Payload::Heartbeat);
                ctx.set_timer(SimDuration::from_millis(2), 1);
            }
            2 if self.latencies.is_empty() => self.lookup(ctx),
            _ => {}
        }
    }
}

/// Centralized sweep: mean lookup latency at the kernel directory.
fn run_centralized(devices: u32, services_per_device: u16) -> SimDuration {
    let mut sys = System::new(SystemConfig {
        trace: false,
        ..SystemConfig::default()
    });
    let cpu = sys.add_device_with("cpu0", "cpu", |id, dram| {
        Box::new(CpuDevice::new("cpu0", id, dram, IdleApp))
    });
    for i in 0..devices {
        sys.add_device(Box::new(Announcer::new(
            &format!("dev{i}"),
            services_per_device,
        )));
    }
    let probe = sys.add_device(Box::new(CentralProbe::new("probe0", cpu.id, 10)));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(60));
    let p: &CentralProbe = sys.device_as(probe).expect("probe");
    assert!(
        p.is_done(),
        "central probe incomplete ({})",
        p.latencies.len()
    );
    SimDuration::from_nanos(
        p.latencies.iter().map(|d| d.as_nanos()).sum::<u64>() / p.latencies.len() as u64,
    )
}

fn main() {
    let obs = ObsArgs::from_env();
    println!("E7: service discovery vs machine size");
    println!("    (decentralized: SSDP broadcast, 50us answer window;");
    println!("     centralized: kernel directory lookup; 2 services/device)");
    println!();
    let mut t = Table::new(&[
        "devices",
        "ssdp mean",
        "bcasts/query",
        "bus bytes/query",
        "central mean",
    ]);
    for &n in &[4u32, 16, 64, 256] {
        let (mean, bcasts, bytes) = run_decentralized(n, 2, &obs);
        let central = run_centralized(n, 2);
        t.row_strings(vec![
            n.to_string(),
            mean.to_string(),
            format!("{bcasts:.0}"),
            format!("{bytes:.0}"),
            central.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("expected shape: SSDP latency is dominated by the fixed answer");
    println!("window but its broadcast traffic grows linearly with device count;");
    println!("the centralized lookup is flat and cheap — the price is the global");
    println!("state the paper's design forbids (§2.2), and the kernel it rides on.");
}
