//! `bench_diff` — regression gate between two `BENCH_*.json` artifacts.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [flags]
//! ```
//!
//! Compares the candidate against the baseline metric-by-metric and exits
//! non-zero when any metric regresses beyond its threshold. Both files must
//! describe the same experiment (`"experiment"` field). Supported:
//!
//! - **e9** — per engine, per phase: `events_per_sec` may not drop more
//!   than `--events-tol` percent (default 5); `allocs_per_event` may not
//!   rise by more than `--allocs-tol` absolute (default 0.5).
//! - **e10** — per matched `(machines, replication, policy, threads)` cell
//!   (schema-v1 artifacts carry no policy and match as `"static"`;
//!   pre-v3 artifacts carry no thread count and match as `1`):
//!   `agg_ops_per_sec` may not drop more than `--events-tol` percent;
//!   `p99_us` may not rise more than `--p99-tol` percent (default 10);
//!   `failovers` may not exceed the baseline by more than the p99
//!   tolerance plus a flat slack of 10 (the retry-storm tail gate).
//!   Additionally, every candidate *crash* cell with R ≥ 2 must report
//!   `lost_acked_keys = 0` — the durability invariant is absolute, not
//!   a tolerance.
//! - **e12** — `attributed_alloc_fraction` and `wall_coverage_fraction`
//!   may not drop below the baseline by more than `--coverage-tol`
//!   absolute (default 0.02); the critical-path `sum_error` may not rise
//!   above `--p99-tol` percent of total.
//! - **e13** — per matched `threads` cell: `events` and the determinism
//!   `digest` must be *exactly* equal (virtual-time results are
//!   deterministic — any drift is a regression, not noise);
//!   `events_per_sec`, when both artifacts carry wall metrics, may not
//!   drop more than `--events-tol` percent.
//! - **e14** — per matched `(seed, threads, crash)` cell: the continuation
//!   `digest` and `ckpt_events` must be *exactly* equal; `ckpt_bytes` may
//!   not grow more than `--p99-tol` percent. Candidate-side invariants:
//!   crash cells at R ≥ 2 must report `lost_acked_keys = 0`, and the
//!   cross-process restart audit must have passed.
//!
//! Wall-clock metrics are host noise; CI double-runs of the same commit
//! should pass a relaxed `--events-tol` (see `ci.sh`), while cross-commit
//! comparisons on a quiet machine use the defaults. Allocation counts and
//! virtual-time metrics are deterministic and always use tight thresholds.
//!
//! Exit codes: 0 = no regression, 1 = regression(s) found, 2 = usage or
//! parse error.

use lastcpu_bench::Json;

struct Tolerances {
    /// Max allowed relative drop in throughput-style metrics (fraction).
    events: f64,
    /// Max allowed absolute rise in allocs/event.
    allocs: f64,
    /// Max allowed relative rise in latency-style metrics (fraction).
    p99: f64,
    /// Max allowed absolute drop in coverage fractions.
    coverage: f64,
}

struct Diff {
    tol: Tolerances,
    regressions: Vec<String>,
    compared: usize,
}

impl Diff {
    /// Lower-is-worse metric (throughput): fail on a drop beyond tolerance.
    fn throughput(&mut self, what: &str, base: f64, cand: f64) {
        self.compared += 1;
        let drop = (base - cand) / base.max(f64::MIN_POSITIVE);
        let verdict = if drop > self.tol.events {
            self.regressions.push(format!(
                "{what}: events/s {base:.1} -> {cand:.1} ({:+.1}%)",
                -100.0 * drop
            ));
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "  {what}: {base:.1} -> {cand:.1} ({:+.1}%) {verdict}",
            -100.0 * drop
        );
    }

    /// Higher-is-worse metric with absolute threshold (allocs/event).
    fn allocs(&mut self, what: &str, base: f64, cand: f64) {
        self.compared += 1;
        let rise = cand - base;
        let verdict = if rise > self.tol.allocs {
            self.regressions.push(format!(
                "{what}: allocs/event {base:.3} -> {cand:.3} (+{rise:.3})"
            ));
            "REGRESSION"
        } else {
            "ok"
        };
        println!("  {what}: {base:.3} -> {cand:.3} ({rise:+.3}) {verdict}");
    }

    /// Higher-is-worse metric with relative threshold (latency).
    fn latency(&mut self, what: &str, base: f64, cand: f64) {
        self.compared += 1;
        let rise = (cand - base) / base.max(f64::MIN_POSITIVE);
        let verdict = if rise > self.tol.p99 {
            self.regressions.push(format!(
                "{what}: p99 {base:.1} -> {cand:.1} ({:+.1}%)",
                100.0 * rise
            ));
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "  {what}: {base:.1} -> {cand:.1} ({:+.1}%) {verdict}",
            100.0 * rise
        );
    }

    /// Higher-is-worse event count (failovers): relative threshold plus a
    /// flat slack so tiny baselines (0 or a handful) don't trip on noise-
    /// scale absolute changes.
    fn counter(&mut self, what: &str, base: f64, cand: f64) {
        self.compared += 1;
        let limit = base * (1.0 + self.tol.p99) + 10.0;
        let verdict = if cand > limit {
            self.regressions.push(format!(
                "{what}: count {base:.0} -> {cand:.0} (limit {limit:.0})"
            ));
            "REGRESSION"
        } else {
            "ok"
        };
        println!("  {what}: {base:.0} -> {cand:.0} (limit {limit:.0}) {verdict}");
    }

    /// Invariant metric: any non-zero candidate value is a regression.
    fn must_be_zero(&mut self, what: &str, cand: f64) {
        self.compared += 1;
        let verdict = if cand != 0.0 {
            self.regressions
                .push(format!("{what}: must be 0, got {cand:.0}"));
            "REGRESSION"
        } else {
            "ok"
        };
        println!("  {what}: {cand:.0} {verdict}");
    }

    /// Deterministic metric: the candidate must equal the baseline exactly.
    fn identical(&mut self, what: &str, base: &str, cand: &str) {
        self.compared += 1;
        let verdict = if base != cand {
            self.regressions
                .push(format!("{what}: {base} -> {cand} (must be identical)"));
            "REGRESSION"
        } else {
            "ok"
        };
        println!("  {what}: {base} -> {cand} {verdict}");
    }

    /// Higher-is-better fraction with absolute threshold (coverage).
    fn coverage(&mut self, what: &str, base: f64, cand: f64) {
        self.compared += 1;
        let drop = base - cand;
        let verdict = if drop > self.tol.coverage {
            self.regressions.push(format!(
                "{what}: coverage {base:.4} -> {cand:.4} (-{drop:.4})"
            ));
            "REGRESSION"
        } else {
            "ok"
        };
        println!("  {what}: {base:.4} -> {cand:.4} ({:+.4}) {verdict}", -drop);
    }
}

fn num(j: &Json, path: &str) -> Result<f64, String> {
    j.path(path)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {path:?}"))
}

fn diff_e9(d: &mut Diff, base: &Json, cand: &Json) -> Result<(), String> {
    let engines = base
        .get("engines")
        .and_then(Json::as_obj)
        .ok_or("baseline e9 has no engines object")?;
    for (engine, b) in engines {
        let Some(c) = cand.path(&format!("engines.{engine}")) else {
            println!("  engines.{engine}: absent in candidate, skipped");
            continue;
        };
        for phase in ["queue", "system"] {
            let what = format!("{engine}.{phase}");
            d.throughput(
                &what,
                num(b, &format!("{phase}.events_per_sec"))?,
                num(c, &format!("{phase}.events_per_sec"))?,
            );
            d.allocs(
                &what,
                num(b, &format!("{phase}.allocs_per_event"))?,
                num(c, &format!("{phase}.allocs_per_event"))?,
            );
        }
    }
    Ok(())
}

fn diff_e10(d: &mut Diff, base: &Json, cand: &Json) -> Result<(), String> {
    let cells = |j: &Json, section: &str| -> Vec<Json> {
        j.get(section)
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default()
    };
    // Schema v1 predates the retry-policy ablation; its cells are what the
    // v2 schema calls the "static" arm. Pre-v3 cells predate the parallel
    // fabric and always ran single-threaded. Pre-v4 cells predate the
    // topology matrix and always ran the flat single-spine fabric.
    let key = |c: &Json| -> Option<(u64, u64, String, u64, String, u64)> {
        Some((
            c.get("machines")?.as_f64()? as u64,
            c.get("replication")?.as_f64()? as u64,
            c.get("policy")
                .and_then(Json::as_str)
                .unwrap_or("static")
                .to_string(),
            c.get("threads").and_then(Json::as_f64).unwrap_or(1.0) as u64,
            c.get("topology")
                .and_then(Json::as_str)
                .unwrap_or("flat")
                .to_string(),
            c.get("oversub").and_then(Json::as_f64).unwrap_or(1.0) as u64,
        ))
    };
    let cand_cells = cells(cand, "scaling");
    for b in cells(base, "scaling") {
        let Some(k) = key(&b) else { continue };
        let Some(c) = cand_cells.iter().find(|c| key(c).as_ref() == Some(&k)) else {
            println!("  cell {k:?}: absent in candidate, skipped");
            continue;
        };
        let what = format!("m{}r{}[{}]t{}.{}x{}", k.0, k.1, k.2, k.3, k.4, k.5);
        d.throughput(
            &what,
            num(&b, "agg_ops_per_sec")?,
            num(c, "agg_ops_per_sec")?,
        );
        d.latency(&what, num(&b, "p99_us")?, num(c, "p99_us")?);
        d.counter(
            &format!("{what}.failovers"),
            num(&b, "failovers")?,
            num(c, "failovers")?,
        );
    }
    // The durability audit is baseline-independent: no candidate crash run
    // with R >= 2 may lose an acknowledged write, ever.
    for c in cells(cand, "crash") {
        let Some(k) = key(&c) else { continue };
        if k.1 >= 2 {
            d.must_be_zero(
                &format!(
                    "crash.m{}r{}[{}]t{}.{}x{}.lost_acked_keys",
                    k.0, k.1, k.2, k.3, k.4, k.5
                ),
                num(&c, "lost_acked_keys")?,
            );
        }
    }
    Ok(())
}

fn diff_e13(d: &mut Diff, base: &Json, cand: &Json) -> Result<(), String> {
    let cells = |j: &Json| -> Vec<Json> {
        j.get("cells")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default()
    };
    let key = |c: &Json| -> Option<u64> { Some(c.get("threads")?.as_f64()? as u64) };
    let cand_cells = cells(cand);
    for b in cells(base) {
        let Some(k) = key(&b) else { continue };
        let Some(c) = cand_cells.iter().find(|c| key(c) == Some(k)) else {
            println!("  cell threads={k}: absent in candidate, skipped");
            continue;
        };
        let what = format!("threads{k}");
        // Virtual-time results are deterministic: the event count and the
        // determinism digest must be bitwise equal, never "close".
        d.identical(
            &format!("{what}.events"),
            &format!("{:.0}", num(&b, "events")?),
            &format!("{:.0}", num(c, "events")?),
        );
        let digest = |j: &Json| {
            j.get("digest")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        d.identical(&format!("{what}.digest"), &digest(&b), &digest(c));
        // Wall throughput is host noise; only compare when both artifacts
        // measured it (`--no-wall` omits it for byte-identical CI reruns).
        match (b.path("events_per_sec"), c.path("events_per_sec")) {
            (Some(bb), Some(cc)) => {
                let (bb, cc) = (
                    bb.as_f64().ok_or("bad events_per_sec")?,
                    cc.as_f64().ok_or("bad events_per_sec")?,
                );
                d.throughput(&what, bb, cc);
            }
            _ => println!("  {what}: wall metrics absent, throughput skipped"),
        }
    }
    Ok(())
}

fn diff_e14(d: &mut Diff, base: &Json, cand: &Json) -> Result<(), String> {
    let cells = |j: &Json| -> Vec<Json> {
        j.get("cells")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default()
    };
    let key = |c: &Json| -> Option<(u64, u64, bool)> {
        Some((
            c.get("seed")?.as_f64()? as u64,
            c.get("threads")?.as_f64()? as u64,
            matches!(c.get("crash").and_then(Json::as_bool), Some(true)),
        ))
    };
    let cand_cells = cells(cand);
    for b in cells(base) {
        let Some(k) = key(&b) else { continue };
        let Some(c) = cand_cells.iter().find(|c| key(c) == Some(k)) else {
            println!("  cell {k:?}: absent in candidate, skipped");
            continue;
        };
        let what = format!("s{:x}t{}{}", k.0, k.1, if k.2 { "c" } else { "" });
        // The continuation digest is deterministic: any drift means the
        // snapshot subsystem (or the simulator under it) changed behavior.
        let digest = |j: &Json| {
            j.get("digest")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        d.identical(&format!("{what}.digest"), &digest(&b), &digest(c));
        d.identical(
            &format!("{what}.ckpt_events"),
            &format!("{:.0}", num(&b, "ckpt_events")?),
            &format!("{:.0}", num(c, "ckpt_events")?),
        );
        // Checkpoint size may grow as components gain state, but a jump
        // beyond the latency tolerance is worth failing a diff over.
        d.latency(
            &format!("{what}.ckpt_bytes"),
            num(&b, "ckpt_bytes")?,
            num(c, "ckpt_bytes")?,
        );
    }
    // Candidate-side invariants, baseline-independent: the crash arms must
    // never lose an acked write, and the cross-process restart audit must
    // have passed.
    let replication = num(cand, "config.replication").unwrap_or(0.0);
    for c in &cand_cells {
        let Some(k) = key(c) else { continue };
        if k.2 && replication >= 2.0 {
            d.must_be_zero(
                &format!("s{:x}t{}c.lost_acked_keys", k.0, k.1),
                num(c, "lost_acked_keys")?,
            );
        }
    }
    let audit_ok = matches!(
        cand.path("cross_process_audit.ok").and_then(Json::as_bool),
        Some(true)
    );
    d.identical("cross_process_audit.ok", "true", &audit_ok.to_string());
    Ok(())
}

fn diff_e12(d: &mut Diff, base: &Json, cand: &Json) -> Result<(), String> {
    d.coverage(
        "attribution.allocs",
        num(base, "attribution.attributed_alloc_fraction")?,
        num(cand, "attribution.attributed_alloc_fraction")?,
    );
    // Wall coverage only exists in wall mode; `--no-wall` artifacts omit it.
    let wall = "attribution.wall_coverage_fraction";
    match (base.path(wall), cand.path(wall)) {
        (Some(b), Some(c)) => {
            let (b, c) = (
                b.as_f64().ok_or("bad wall_coverage_fraction")?,
                c.as_f64().ok_or("bad wall_coverage_fraction")?,
            );
            d.coverage("attribution.wall", b, c);
        }
        (None, None) => println!("  attribution.wall: absent (no-wall artifacts), skipped"),
        _ => return Err("wall mode differs between baseline and candidate".into()),
    }
    d.latency(
        "critical_path.sum_error",
        1.0 + num(base, "critical_path.worst_sum_error")?,
        1.0 + num(cand, "critical_path.worst_sum_error")?,
    );
    Ok(())
}

fn run() -> Result<i32, String> {
    let mut tol = Tolerances {
        events: 0.05,
        allocs: 0.5,
        p99: 0.10,
        coverage: 0.02,
    };
    let mut files: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut pct = |flag: &str| -> Result<f64, String> {
            it.next()
                .and_then(|v| v.parse::<f64>().ok())
                .map(|v| v / 100.0)
                .ok_or_else(|| format!("{flag} needs a percentage"))
        };
        match a.as_str() {
            "--events-tol" => tol.events = pct("--events-tol")?,
            "--p99-tol" => tol.p99 = pct("--p99-tol")?,
            "--coverage-tol" => tol.coverage = pct("--coverage-tol")?,
            "--allocs-tol" => {
                tol.allocs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--allocs-tol needs a number")?;
            }
            _ if a.starts_with("--") => return Err(format!("unknown flag {a:?}")),
            _ => files.push(a),
        }
    }
    let [base_path, cand_path] = files.as_slice() else {
        return Err("usage: bench_diff <baseline.json> <candidate.json> [flags]".into());
    };

    let read = |p: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("parse {p}: {e}"))
    };
    let base = read(base_path)?;
    let cand = read(cand_path)?;

    let experiment = base
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("baseline has no \"experiment\" field")?
        .to_string();
    let cand_exp = cand.get("experiment").and_then(Json::as_str).unwrap_or("?");
    if experiment != cand_exp {
        return Err(format!(
            "experiment mismatch: baseline {experiment:?} vs candidate {cand_exp:?}"
        ));
    }

    println!("bench_diff {experiment}: {base_path} -> {cand_path}");
    let mut d = Diff {
        tol,
        regressions: Vec::new(),
        compared: 0,
    };
    match experiment.as_str() {
        "e9" => diff_e9(&mut d, &base, &cand)?,
        "e10" => diff_e10(&mut d, &base, &cand)?,
        "e12" => diff_e12(&mut d, &base, &cand)?,
        "e13" => diff_e13(&mut d, &base, &cand)?,
        "e14" => diff_e14(&mut d, &base, &cand)?,
        other => return Err(format!("unsupported experiment {other:?}")),
    }
    if d.compared == 0 {
        return Err("no comparable metrics found".into());
    }
    if d.regressions.is_empty() {
        println!("PASS: {} metrics within thresholds", d.compared);
        Ok(0)
    } else {
        println!(
            "FAIL: {} of {} metrics regressed",
            d.regressions.len(),
            d.compared
        );
        for r in &d.regressions {
            println!("  - {r}");
        }
        Ok(1)
    }
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("bench_diff: {e}");
            std::process::exit(2);
        }
    }
}
