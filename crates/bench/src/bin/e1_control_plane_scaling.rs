//! E1 — control-plane scaling: decentralized bus vs centralized kernel.
//!
//! N clients concurrently run the complete Figure-2 setup sequence
//! (discover → open → allocate → grant → queue doorbell), repeatedly. In
//! the CPU-less system the steps fan out across the bus, the SSD and the
//! memory controller; in the baseline every step serializes through the
//! kernel. The paper's claim (§1): "decentralized control breaks the
//! dependency on an expensive general-purpose CPU".

use lastcpu_baseline::{CpuDevice, IdleApp};
use lastcpu_bench::drivers::{ControlMode, SetupClient};
use lastcpu_bench::{ObsArgs, Table};
use lastcpu_core::devices::flash::{NandChip, NandConfig};
use lastcpu_core::devices::fs::FlashFs;
use lastcpu_core::devices::ftl::Ftl;
use lastcpu_core::devices::ssd::{SmartSsd, SsdConfig};
use lastcpu_core::{System, SystemConfig};
use lastcpu_sim::{Histogram, SimDuration};

const FILE: &str = "/data/e1.db";
const ITERATIONS: u32 = 5;

fn fs() -> FlashFs {
    let mut fs = FlashFs::format(Ftl::new(NandChip::new(NandConfig {
        blocks: 64,
        pages_per_block: 32,
        page_size: 4096,
        max_erase_cycles: u32::MAX,
        ..NandConfig::default()
    })));
    fs.create(FILE).expect("fresh fs");
    fs
}

fn ssd() -> SmartSsd {
    SmartSsd::new(
        "ssd0",
        fs(),
        SsdConfig {
            exports: vec![FILE.into()],
            ..SsdConfig::default()
        },
    )
}

/// Runs `n` concurrent setup clients; returns (mean, p99, setups/sec).
fn run(n: u32, centralized: bool, obs: &ObsArgs) -> (SimDuration, SimDuration, f64) {
    let mut config = SystemConfig {
        trace: false,
        // 4 GiB so wide client counts never hit the allocator.
        dram_bytes: 4 << 30,
        ..SystemConfig::default()
    };
    obs.apply(&mut config);
    let mut sys = System::new(config);
    let mode = if centralized {
        let cpu = sys.add_device_with("cpu0", "cpu", |id, dram| {
            Box::new(CpuDevice::new("cpu0", id, dram, IdleApp))
        });
        ControlMode::Centralized { cpu: cpu.id }
    } else {
        let memctl = sys.add_memctl("memctl0");
        let _ = memctl;
        ControlMode::Decentralized
    };
    let memctl_id = match mode {
        ControlMode::Centralized { cpu } => cpu,
        ControlMode::Decentralized => sys.memctl_id().expect("memctl added above"),
    };
    sys.add_device(Box::new(ssd()));
    let mut clients = Vec::new();
    for i in 0..n {
        let mut c = SetupClient::new(
            &format!("client{i}"),
            mode,
            &format!("file:{FILE}"),
            ITERATIONS,
        );
        c.memctl_hint_value = memctl_id;
        clients.push(sys.add_device(Box::new(c)));
    }
    sys.power_on();
    let start = sys.now();
    sys.run_for(SimDuration::from_secs(5));

    let mut h = Histogram::new();
    let mut all_done = true;
    let mut last_done = start;
    for &c in &clients {
        let cl: &SetupClient = sys.device_as(c).expect("client");
        assert!(
            !cl.failed,
            "setup failed under n={n} centralized={centralized}"
        );
        if !cl.is_done() {
            all_done = false;
        }
        for &l in &cl.latencies {
            h.record(l);
        }
        last_done = last_done.max(sys.now());
    }
    assert!(
        all_done,
        "clients did not finish (n={n}, centralized={centralized})"
    );
    let total_setups = h.count();
    // Throughput over the span in which setups ran: approximate with the
    // mean latency times pipeline depth; simplest honest figure is
    // setups / (sum of latencies / n) — closed-loop per-client rate × n.
    let sum_ns: f64 = h.mean().as_nanos() as f64 * total_setups as f64;
    let tput = if sum_ns > 0.0 {
        total_setups as f64 / (sum_ns / n as f64 / 1e9)
    } else {
        0.0
    };
    obs.dump(&sys);
    (h.mean(), h.percentile(99.0), tput)
}

fn main() {
    let obs = ObsArgs::from_env();
    println!("E1: concurrent Figure-2 setups — decentralized vs centralized control plane");
    println!("    ({ITERATIONS} setups per client, closed loop)");
    println!();
    let mut t = Table::new(&[
        "clients",
        "decen mean",
        "decen p99",
        "decen setups/s",
        "central mean",
        "central p99",
        "central setups/s",
        "mean ratio",
    ]);
    for &n in &[1u32, 2, 4, 8, 16, 32] {
        let (dm, dp, dt) = run(n, false, &obs);
        let (cm, cp, ct) = run(n, true, &obs);
        let ratio = cm.as_nanos() as f64 / dm.as_nanos().max(1) as f64;
        t.row_strings(vec![
            n.to_string(),
            dm.to_string(),
            dp.to_string(),
            format!("{dt:.0}"),
            cm.to_string(),
            cp.to_string(),
            format!("{ct:.0}"),
            format!("{ratio:.2}x"),
        ]);
    }
    t.print();
    println!();
    println!("expected shape: decentralized mean stays near-flat with client count;");
    println!("centralized mean grows as setups serialize on the kernel.");
}
