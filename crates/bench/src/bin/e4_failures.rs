//! E4 — failure handling (§4 "Error Handling").
//!
//! Three measurements:
//!
//! 1. **Recoverable faults stay local.** A device DMAs outside its mapping;
//!    the IOMMU delivers the fault to *that device*, which handles it
//!    inline. Nothing else in the system notices.
//! 2. **Whole-device failure fan-out.** The SSD dies while N clients hold
//!    connections to it. The bus broadcasts `DeviceFailed`; we measure when
//!    the first and last survivor learns, and confirm the memory controller
//!    reclaimed every region the dead device could reach.
//! 3. **Reset recovery.** The bus pulses reset; we measure until the SSD is
//!    alive (re-registered) again.

use std::hash::{Hash, Hasher};

use lastcpu_bench::drivers::{ControlMode, DmaProbe, SetupClient};
use lastcpu_bench::{ObsArgs, Table};
use lastcpu_bus::RetryConfig;
use lastcpu_core::devices::flash::{NandChip, NandConfig};
use lastcpu_core::devices::fs::FlashFs;
use lastcpu_core::devices::ftl::Ftl;
use lastcpu_core::devices::ssd::{SmartSsd, SsdConfig};
use lastcpu_core::{System, SystemConfig};
use lastcpu_sim::{DetRng, FaultKind, FaultPlan, SimDuration, SimTime};

const FILE: &str = "/data/e4.db";

fn make_ssd() -> SmartSsd {
    let mut fs = FlashFs::format(Ftl::new(NandChip::new(NandConfig {
        blocks: 64,
        pages_per_block: 32,
        page_size: 4096,
        max_erase_cycles: u32::MAX,
        ..NandConfig::default()
    })));
    fs.create(FILE).expect("fresh fs");
    SmartSsd::new(
        "ssd0",
        fs,
        SsdConfig {
            exports: vec![FILE.into()],
            ..SsdConfig::default()
        },
    )
}

fn part1_local_faults(obs: &ObsArgs) {
    println!("part 1: recoverable faults are handled by the faulting device");
    let mut config = SystemConfig::default();
    obs.apply(&mut config);
    let mut sys = System::new(config);
    let memctl = sys.add_memctl("memctl0");
    let probe = sys.add_device(Box::new(DmaProbe::new("probe0", memctl.id)));
    let bystander = sys.add_device(Box::new(make_ssd()));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(20));
    let p: &DmaProbe = sys.device_as(probe).expect("probe");
    assert!(p.is_done(), "probe did not run");
    let mut t = Table::new(&["check", "result"]);
    t.row(&[
        "in-bounds DMA succeeds",
        if p.in_bounds_ok == Some(true) {
            "yes"
        } else {
            "NO"
        },
    ]);
    t.row(&[
        "out-of-bounds DMA faults",
        if p.out_of_bounds_faulted == Some(true) {
            "yes"
        } else {
            "NO"
        },
    ]);
    t.row_strings(vec![
        "fault handled at device in".into(),
        p.fault_handling.map(|d| d.to_string()).unwrap_or_default(),
    ]);
    t.row(&[
        "bystander SSD unaffected",
        if sys
            .bus()
            .device(bystander.id)
            .is_some_and(|d| d.state == lastcpu_bus::bus::DeviceState::Alive)
        {
            "yes (still alive)"
        } else {
            "NO"
        },
    ]);
    t.row_strings(vec![
        "iommu faults recorded".into(),
        sys.stats().counter("iommu.faults").to_string(),
    ]);
    t.print();
    println!();
}

fn part2_and_3_device_failure(obs: &ObsArgs) {
    println!("part 2+3: device-failure fan-out and reset recovery vs consumer count");
    let mut t = Table::new(&[
        "consumers",
        "first notified",
        "last notified",
        "regions reclaimed",
        "pages revoked",
        "ssd alive again",
    ]);
    for &n in &[1u32, 4, 16] {
        let mut config = SystemConfig::default();
        obs.apply(&mut config);
        let mut sys = System::new(config);
        let memctl = sys.add_memctl("memctl0");
        let ssd = sys.add_device(Box::new(make_ssd()));
        let mut clients = Vec::new();
        for i in 0..n {
            // One completed setup each: a live conn + a shared region.
            let mut c = SetupClient::new(
                &format!("client{i}"),
                ControlMode::Decentralized,
                &format!("file:{FILE}"),
                1,
            );
            c.memctl_hint_value = memctl.id;
            clients.push(sys.add_device(Box::new(c)));
        }
        sys.power_on();
        sys.run_for(SimDuration::from_millis(50));
        for &c in &clients {
            let cl: &SetupClient = sys.device_as(c).expect("client");
            assert!(cl.is_done(), "setup incomplete before failure injection");
        }
        let mapped_before = sys.stats().counter("bus.pages_mapped");
        let _ = mapped_before;

        // Kill the SSD (transient failure: the bus will reset it).
        let t_kill = sys.now();
        sys.kill_device(ssd, false);
        sys.run_for(SimDuration::from_millis(20));

        // Fan-out: DeviceFailed deliveries in the trace.
        let deliveries: Vec<SimTime> = sys
            .trace()
            .events()
            .filter(|e| e.at >= t_kill && e.what().contains("DeviceFailed"))
            .map(|e| e.at)
            .collect();
        let first = deliveries.iter().min().copied();
        let last = deliveries.iter().max().copied();

        // Reset recovery: when the SSD re-registered (HelloAck after kill).
        let alive_at = sys
            .trace()
            .events()
            .find(|e| e.at > t_kill && e.what().contains("-> ssd0: HelloAck"))
            .map(|e| e.at);

        let reclaimed = sys.stats().counter("bus.pages_unmapped");
        t.row_strings(vec![
            n.to_string(),
            first
                .map(|f| format!("+{}", f.since(t_kill)))
                .unwrap_or("-".into()),
            last.map(|l| format!("+{}", l.since(t_kill)))
                .unwrap_or("-".into()),
            {
                let mc: &lastcpu_core::MemCtlDevice = sys.device_as(memctl).expect("memctl");
                mc.controller().stats().reclaimed.to_string()
            },
            reclaimed.to_string(),
            alive_at
                .map(|a| format!("+{}", a.since(t_kill)))
                .unwrap_or("NOT RECOVERED".into()),
        ]);
        obs.dump(&sys);
    }
    t.print();
    println!();
    println!("expected shape: notification fan-out grows linearly (serialized");
    println!("broadcast) but stays in microseconds; reclamation covers every");
    println!("consumer's shared region; reset brings the device back after the");
    println!("configured reset latency.");
}

fn part4_owner_death() {
    println!("part 4: owner death — the memory controller reclaims its regions");
    let mut t = Table::new(&["dead owners", "regions reclaimed", "pages revoked from SSD"]);
    for &n in &[1u32, 4] {
        let mut sys = System::new(SystemConfig::default());
        let memctl = sys.add_memctl("memctl0");
        sys.add_device(Box::new(make_ssd()));
        let mut clients = Vec::new();
        for i in 0..4u32 {
            let mut c = SetupClient::new(
                &format!("client{i}"),
                ControlMode::Decentralized,
                &format!("file:{FILE}"),
                1,
            );
            c.memctl_hint_value = memctl.id;
            clients.push(sys.add_device(Box::new(c)));
        }
        sys.power_on();
        sys.run_for(SimDuration::from_millis(50));
        let before = sys.stats().counter("bus.pages_unmapped");
        for &c in clients.iter().take(n as usize) {
            sys.kill_device(c, true);
        }
        sys.run_for(SimDuration::from_millis(20));
        let mc: &lastcpu_core::MemCtlDevice = sys.device_as(memctl).expect("memctl");
        t.row_strings(vec![
            n.to_string(),
            mc.controller().stats().reclaimed.to_string(),
            (sys.stats().counter("bus.pages_unmapped") - before).to_string(),
        ]);
    }
    t.print();
    println!();
    println!("expected: every dead owner's region is reclaimed and the share it");
    println!("granted to the SSD is revoked from the SSD's IOMMU (64 pages each,");
    println!("revoked from both the dead owner and the surviving SSD).");
}

/// One cell of the part-5 fault matrix, summarised for comparison.
struct CellOutcome {
    /// Fingerprint of the full trace + final clock (determinism witness).
    fingerprint: u64,
    retries: u64,
    give_ups: u64,
    wire_hits: u64,
    recoveries: u64,
    recovery_mean: Option<SimDuration>,
    /// The SSD completed the Figure-2 re-init (HelloAck after the fault).
    reinit: bool,
}

/// Builds the fault plan for one matrix cell. Injection times are jittered
/// from the seed so different seeds exercise different interleavings, while
/// one seed always produces the same plan.
fn cell_plan(seed: u64, cell: u64, wire: FaultKind, dev: FaultKind) -> FaultPlan {
    let mut rng = DetRng::new(seed).split(0xE4_0000 | cell);
    let mut plan = FaultPlan::new(seed);
    // Wire fault lands during the Figure-2 setup burst (the session setup
    // RPCs all fly within the first ~120 us), so the dropped/corrupted
    // requests must be retransmitted by the timeout/backoff layer.
    let wire_at = SimTime::from_nanos(5_000 + rng.below(110_000));
    plan.inject(wire_at, "ssd0", wire);
    // Device fault lands once the system is quiescent.
    let dev_at = SimTime::from_nanos(12_000_000 + rng.below(2_000_000));
    plan.inject(dev_at, "ssd0", dev);
    plan
}

/// Runs one matrix cell to completion and summarises it.
fn run_cell(obs: &ObsArgs, seed: u64, cell: u64, wire: FaultKind, dev: FaultKind) -> CellOutcome {
    let plan = cell_plan(seed, cell, wire, dev);
    let dev_at = plan.events().last().expect("two injections").at;
    let mut config = SystemConfig {
        seed,
        trace: true, // the determinism witness hashes the trace
        liveness_interval: Some(SimDuration::from_millis(2)),
        fault_plan: Some(plan),
        rpc_retry: Some(RetryConfig::default()),
        ..SystemConfig::default()
    };
    obs.apply(&mut config);
    let mut sys = System::new(config);
    let memctl = sys.add_memctl("memctl0");
    sys.add_device(Box::new(make_ssd()));
    let mut client = SetupClient::new(
        "client0",
        ControlMode::Decentralized,
        &format!("file:{FILE}"),
        1,
    );
    client.memctl_hint_value = memctl.id;
    sys.add_device(Box::new(client));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(60));

    let mut h = std::collections::hash_map::DefaultHasher::new();
    sys.now().as_nanos().hash(&mut h);
    for e in sys.trace().events() {
        e.at.as_nanos().hash(&mut h);
        e.what().hash(&mut h);
    }
    let stats = sys.stats();
    let wire_hits = stats.counter("fault.msgs_dropped")
        + stats.counter("fault.msgs_corrupted")
        + stats.counter("fault.msgs_delayed");
    let rec = stats.histogram("bus.ssd0.recovery_latency");
    let reinit = sys
        .trace()
        .events()
        .any(|e| e.at > dev_at && e.what().contains("-> ssd0: HelloAck"));
    let out = CellOutcome {
        fingerprint: h.finish(),
        retries: stats.counter("bus.rpc_retries"),
        give_ups: stats.counter("bus.rpc_give_ups"),
        wire_hits,
        recoveries: rec.as_ref().map(|r| r.count()).unwrap_or(0),
        recovery_mean: rec.as_ref().filter(|r| r.count() > 0).map(|r| r.mean()),
        reinit,
    };
    obs.dump(&sys);
    out
}

/// Part 5 — the deterministic fault matrix: each {drop, corrupt, delay}
/// wire fault is paired with each {crash, hang} device fault, every cell is
/// run **twice** from the same `--fault-seed`, and the two runs must agree
/// bit-for-bit (same trace, same clock, same counters). This is the E4
/// acceptance check for the fault-injection subsystem: faults are ordinary
/// scheduled events, so a faulty run replays exactly.
fn part5_fault_matrix(obs: &ObsArgs, seed: u64) {
    println!("part 5: deterministic fault matrix (seed {seed:#x}, each cell run twice)");
    let wire_faults: [(&str, FaultKind); 3] = [
        ("drop", FaultKind::Drop { count: 3 }),
        ("corrupt", FaultKind::Corrupt { count: 3 }),
        (
            "delay",
            FaultKind::Delay {
                count: 3,
                extra_ns: 300_000,
            },
        ),
    ];
    let dev_faults: [(&str, FaultKind); 2] =
        [("crash", FaultKind::Crash), ("hang", FaultKind::Hang)];
    let mut t = Table::new(&[
        "wire fault",
        "device fault",
        "wire hits",
        "rpc retries",
        "give-ups",
        "recoveries",
        "mean recovery",
        "figure-2 re-init",
        "deterministic",
    ]);
    let mut cell = 0u64;
    for (wname, wkind) in &wire_faults {
        for (dname, dkind) in &dev_faults {
            let a = run_cell(obs, seed, cell, *wkind, *dkind);
            let b = run_cell(obs, seed, cell, *wkind, *dkind);
            assert_eq!(
                a.fingerprint, b.fingerprint,
                "cell {wname}x{dname} diverged across identical seeded runs"
            );
            assert!(
                a.reinit,
                "cell {wname}x{dname}: ssd0 never completed the Figure-2 re-init"
            );
            t.row_strings(vec![
                (*wname).into(),
                (*dname).into(),
                a.wire_hits.to_string(),
                a.retries.to_string(),
                a.give_ups.to_string(),
                a.recoveries.to_string(),
                a.recovery_mean.map(|m| m.to_string()).unwrap_or("-".into()),
                if a.reinit { "yes" } else { "NO" }.into(),
                "yes (bit-identical)".into(),
            ]);
            cell += 1;
        }
    }
    t.print();
    println!();
    println!("expected: every cell recovers (crash via the bus's loud reset path,");
    println!("hang via heartbeat-lapse detection), dropped/corrupted setup RPCs are");
    println!("retransmitted by the timeout/backoff layer, and re-running a cell from");
    println!("the same seed replays the exact same trace.");
}

/// Parses `--fault-seed <n>` (decimal or 0x-hex); defaults to 0xE4.
fn fault_seed_from_env() -> u64 {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--fault-seed" {
            if let Some(v) = it.next() {
                if let Some(hex) = v.strip_prefix("0x") {
                    if let Ok(s) = u64::from_str_radix(hex, 16) {
                        return s;
                    }
                } else if let Ok(s) = v.parse::<u64>() {
                    return s;
                }
                eprintln!("ignoring unparsable --fault-seed {v:?}");
            }
        }
    }
    0xE4
}

fn main() {
    let obs = ObsArgs::from_env();
    let fault_seed = fault_seed_from_env();
    println!("E4: failure handling on the CPU-less system (§4)");
    println!();
    part1_local_faults(&obs);
    part2_and_3_device_failure(&obs);
    part4_owner_death();
    println!();
    // Part 5 exercises the trace-rich injected-fault path; it dumps last so
    // the artifacts on disk (incl. bus.*.recovery_latency histograms and
    // bus.*.retries counters) describe the final matrix cell.
    part5_fault_matrix(&obs, fault_seed);
}
