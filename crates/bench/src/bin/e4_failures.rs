//! E4 — failure handling (§4 "Error Handling").
//!
//! Three measurements:
//!
//! 1. **Recoverable faults stay local.** A device DMAs outside its mapping;
//!    the IOMMU delivers the fault to *that device*, which handles it
//!    inline. Nothing else in the system notices.
//! 2. **Whole-device failure fan-out.** The SSD dies while N clients hold
//!    connections to it. The bus broadcasts `DeviceFailed`; we measure when
//!    the first and last survivor learns, and confirm the memory controller
//!    reclaimed every region the dead device could reach.
//! 3. **Reset recovery.** The bus pulses reset; we measure until the SSD is
//!    alive (re-registered) again.

use lastcpu_bench::drivers::{ControlMode, DmaProbe, SetupClient};
use lastcpu_bench::{ObsArgs, Table};
use lastcpu_core::devices::flash::{NandChip, NandConfig};
use lastcpu_core::devices::fs::FlashFs;
use lastcpu_core::devices::ftl::Ftl;
use lastcpu_core::devices::ssd::{SmartSsd, SsdConfig};
use lastcpu_core::{System, SystemConfig};
use lastcpu_sim::{SimDuration, SimTime};

const FILE: &str = "/data/e4.db";

fn make_ssd() -> SmartSsd {
    let mut fs = FlashFs::format(Ftl::new(NandChip::new(NandConfig {
        blocks: 64,
        pages_per_block: 32,
        page_size: 4096,
        max_erase_cycles: u32::MAX,
        ..NandConfig::default()
    })));
    fs.create(FILE).expect("fresh fs");
    SmartSsd::new(
        "ssd0",
        fs,
        SsdConfig {
            exports: vec![FILE.into()],
            ..SsdConfig::default()
        },
    )
}

fn part1_local_faults(obs: &ObsArgs) {
    println!("part 1: recoverable faults are handled by the faulting device");
    let mut config = SystemConfig::default();
    obs.apply(&mut config);
    let mut sys = System::new(config);
    let memctl = sys.add_memctl("memctl0");
    let probe = sys.add_device(Box::new(DmaProbe::new("probe0", memctl.id)));
    let bystander = sys.add_device(Box::new(make_ssd()));
    sys.power_on();
    sys.run_for(SimDuration::from_millis(20));
    let p: &DmaProbe = sys.device_as(probe).expect("probe");
    assert!(p.is_done(), "probe did not run");
    let mut t = Table::new(&["check", "result"]);
    t.row(&[
        "in-bounds DMA succeeds",
        if p.in_bounds_ok == Some(true) {
            "yes"
        } else {
            "NO"
        },
    ]);
    t.row(&[
        "out-of-bounds DMA faults",
        if p.out_of_bounds_faulted == Some(true) {
            "yes"
        } else {
            "NO"
        },
    ]);
    t.row_strings(vec![
        "fault handled at device in".into(),
        p.fault_handling.map(|d| d.to_string()).unwrap_or_default(),
    ]);
    t.row(&[
        "bystander SSD unaffected",
        if sys
            .bus()
            .device(bystander.id)
            .is_some_and(|d| d.state == lastcpu_bus::bus::DeviceState::Alive)
        {
            "yes (still alive)"
        } else {
            "NO"
        },
    ]);
    t.row_strings(vec![
        "iommu faults recorded".into(),
        sys.stats().counter("iommu.faults").to_string(),
    ]);
    t.print();
    println!();
}

fn part2_and_3_device_failure(obs: &ObsArgs) {
    println!("part 2+3: device-failure fan-out and reset recovery vs consumer count");
    let mut t = Table::new(&[
        "consumers",
        "first notified",
        "last notified",
        "regions reclaimed",
        "pages revoked",
        "ssd alive again",
    ]);
    for &n in &[1u32, 4, 16] {
        let mut config = SystemConfig::default();
        obs.apply(&mut config);
        let mut sys = System::new(config);
        let memctl = sys.add_memctl("memctl0");
        let ssd = sys.add_device(Box::new(make_ssd()));
        let mut clients = Vec::new();
        for i in 0..n {
            // One completed setup each: a live conn + a shared region.
            let mut c = SetupClient::new(
                &format!("client{i}"),
                ControlMode::Decentralized,
                &format!("file:{FILE}"),
                1,
            );
            c.memctl_hint_value = memctl.id;
            clients.push(sys.add_device(Box::new(c)));
        }
        sys.power_on();
        sys.run_for(SimDuration::from_millis(50));
        for &c in &clients {
            let cl: &SetupClient = sys.device_as(c).expect("client");
            assert!(cl.is_done(), "setup incomplete before failure injection");
        }
        let mapped_before = sys.stats().counter("bus.pages_mapped");
        let _ = mapped_before;

        // Kill the SSD (transient failure: the bus will reset it).
        let t_kill = sys.now();
        sys.kill_device(ssd, false);
        sys.run_for(SimDuration::from_millis(20));

        // Fan-out: DeviceFailed deliveries in the trace.
        let deliveries: Vec<SimTime> = sys
            .trace()
            .events()
            .filter(|e| e.at >= t_kill && e.what().contains("DeviceFailed"))
            .map(|e| e.at)
            .collect();
        let first = deliveries.iter().min().copied();
        let last = deliveries.iter().max().copied();

        // Reset recovery: when the SSD re-registered (HelloAck after kill).
        let alive_at = sys
            .trace()
            .events()
            .find(|e| e.at > t_kill && e.what().contains("-> ssd0: HelloAck"))
            .map(|e| e.at);

        let reclaimed = sys.stats().counter("bus.pages_unmapped");
        t.row_strings(vec![
            n.to_string(),
            first
                .map(|f| format!("+{}", f.since(t_kill)))
                .unwrap_or("-".into()),
            last.map(|l| format!("+{}", l.since(t_kill)))
                .unwrap_or("-".into()),
            {
                let mc: &lastcpu_core::MemCtlDevice = sys.device_as(memctl).expect("memctl");
                mc.controller().stats().reclaimed.to_string()
            },
            reclaimed.to_string(),
            alive_at
                .map(|a| format!("+{}", a.since(t_kill)))
                .unwrap_or("NOT RECOVERED".into()),
        ]);
        obs.dump(&sys);
    }
    t.print();
    println!();
    println!("expected shape: notification fan-out grows linearly (serialized");
    println!("broadcast) but stays in microseconds; reclamation covers every");
    println!("consumer's shared region; reset brings the device back after the");
    println!("configured reset latency.");
}

fn part4_owner_death() {
    println!("part 4: owner death — the memory controller reclaims its regions");
    let mut t = Table::new(&["dead owners", "regions reclaimed", "pages revoked from SSD"]);
    for &n in &[1u32, 4] {
        let mut sys = System::new(SystemConfig::default());
        let memctl = sys.add_memctl("memctl0");
        sys.add_device(Box::new(make_ssd()));
        let mut clients = Vec::new();
        for i in 0..4u32 {
            let mut c = SetupClient::new(
                &format!("client{i}"),
                ControlMode::Decentralized,
                &format!("file:{FILE}"),
                1,
            );
            c.memctl_hint_value = memctl.id;
            clients.push(sys.add_device(Box::new(c)));
        }
        sys.power_on();
        sys.run_for(SimDuration::from_millis(50));
        let before = sys.stats().counter("bus.pages_unmapped");
        for &c in clients.iter().take(n as usize) {
            sys.kill_device(c, true);
        }
        sys.run_for(SimDuration::from_millis(20));
        let mc: &lastcpu_core::MemCtlDevice = sys.device_as(memctl).expect("memctl");
        t.row_strings(vec![
            n.to_string(),
            mc.controller().stats().reclaimed.to_string(),
            (sys.stats().counter("bus.pages_unmapped") - before).to_string(),
        ]);
    }
    t.print();
    println!();
    println!("expected: every dead owner's region is reclaimed and the share it");
    println!("granted to the SSD is revoked from the SSD's IOMMU (64 pages each,");
    println!("revoked from both the dead owner and the surviving SSD).");
}

fn main() {
    let obs = ObsArgs::from_env();
    println!("E4: failure handling on the CPU-less system (§4)");
    println!();
    part1_local_faults(&obs);
    // Parts 2+3 exercise the trace-rich failure path; their artifacts are
    // the ones dumped (largest consumer count wins).
    part2_and_3_device_failure(&obs);
    part4_owner_death();
}
