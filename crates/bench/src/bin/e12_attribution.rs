//! E12 — performance attribution: where do the allocations, the wall-clock
//! nanoseconds, and the tail-latency nanoseconds actually go?
//!
//! E9 reports *how fast* the simulator core is and E10 reports *how slow*
//! the rack's p99 is; neither says *why*. E12 closes that gap with the
//! three instruments this crate's profiling layer provides:
//!
//! - **Attribution** — the E9 system phase re-run under the scoped
//!   profiler: every allocation and every profiled span is charged to a
//!   `subsystem.site` scope (engine dispatch, KVS engine, IOMMU, bus
//!   codec, fabric). The gate: ≥ 95% of the measured window's allocations
//!   — and, in wall mode, ≥ 95% of its wall time — land in named scopes.
//! - **Overhead** (wall mode only) — the same workload with the profiler
//!   off vs. on, priced in events/sec. The disabled configuration is the
//!   one E9's headline numbers use; its cost must be a compiled-out no-op.
//! - **Critical path** — the E10 rack cell (default 8 machines, R = 3)
//!   with stage + link-hop tracing on; the offline analyzer decomposes
//!   every completed op into nine named segments that sum exactly to its
//!   end-to-end latency, and names the dominant segment at p99.
//!
//! Writes `BENCH_e12.json` (override with `--out`); schema in
//! `EXPERIMENTS.md`. With `--no-wall` every host-clock-derived field is
//! omitted and the overhead phase is skipped: the remaining output is pure
//! virtual time and allocation counts, so two same-seed runs are
//! **byte-identical** (`scripts/ci.sh` double-runs and diffs).
//!
//! Exits non-zero when an acceptance gate fails (attribution below 95%,
//! or critical-path segment sums off by more than 5%).

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::time::Instant;

use lastcpu_bench::Table;
use lastcpu_core::SystemConfig;
use lastcpu_fabric::FabricConfig;
use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
use lastcpu_kvs::server::ServerConfig;
use lastcpu_kvs::{build_cpuless_kvs, build_rack_kvs};
use lastcpu_net::PortId;
use lastcpu_sim::critpath::{self, CritPathReport, SEGMENTS};
use lastcpu_sim::{profile, Histogram, SimDuration};

/// Forwards every allocation to the scoped profiler, same as the E9
/// harness; when profiling is disabled this is one predictable branch.
struct CountingAlloc;

// SAFETY: delegates to the std system allocator; `note_alloc` never
// allocates and tolerates TLS teardown.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        lastcpu_sim::profile::note_alloc(layout.size());
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        lastcpu_sim::profile::note_alloc(new_size);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Args {
    out: String,
    seed: u64,
    clients: usize,
    outstanding: usize,
    virtual_ms: u64,
    machines: usize,
    replication: usize,
    rack_ops: u64,
    no_wall: bool,
}

impl Args {
    fn parse() -> Args {
        let mut a = Args {
            out: "BENCH_e12.json".into(),
            seed: 0xE12,
            clients: 16,
            outstanding: 32,
            virtual_ms: 500,
            machines: 8,
            replication: 3,
            rack_ops: 400,
            no_wall: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = || it.next().unwrap_or_default();
            match flag.as_str() {
                "--out" => a.out = val(),
                "--seed" => a.seed = val().parse().expect("--seed"),
                "--clients" => a.clients = val().parse().expect("--clients"),
                "--outstanding" => a.outstanding = val().parse().expect("--outstanding"),
                "--virtual-ms" => a.virtual_ms = val().parse().expect("--virtual-ms"),
                "--machines" => a.machines = val().parse().expect("--machines"),
                "--replication" => a.replication = val().parse().expect("--replication"),
                "--rack-ops" => a.rack_ops = val().parse().expect("--rack-ops"),
                "--no-wall" => a.no_wall = true,
                _ => {} // same convention as ObsArgs: ignore unknown flags
            }
        }
        a
    }
}

/// One E9-style system-phase run: the CPU-less KVS deployment saturated by
/// closed-loop clients. Returns (events retired, wall seconds) for the
/// measured window; the profiler — if armed by the caller *after* warm-up —
/// sees exactly that window.
fn system_phase(args: &Args, profiled: bool) -> (u64, f64) {
    let sys_config = SystemConfig {
        seed: args.seed,
        trace: false,
        ..SystemConfig::default()
    };
    let server = ServerConfig {
        cache_entries: 512,
        ..ServerConfig::default()
    };
    let mut setup = build_cpuless_kvs(sys_config, Default::default(), server);
    for i in 0..args.clients {
        let workload = WorkloadConfig {
            keys: 400,
            theta: 0.99,
            read_fraction: 0.95,
            value_size: 128,
            outstanding: args.outstanding,
            total_ops: u64::MAX / 2, // never finishes: run_for bounds the phase
            preload: i == 0,
            stats_prefix: "wl".into(),
            ..WorkloadConfig::default()
        };
        setup
            .system
            .add_host(Box::new(KvsClientHost::new(setup.kvs_port, workload)));
    }
    // Warm up outside the profiled window: power-on, discovery, preload.
    setup.system.power_on();
    setup.system.run_for(SimDuration::from_millis(200));
    if profiled {
        profile::reset();
        profile::set_enabled(true);
    }
    let t0 = Instant::now();
    let events = setup
        .system
        .run_for(SimDuration::from_millis(args.virtual_ms));
    let wall = t0.elapsed().as_secs_f64();
    if profiled {
        profile::set_enabled(false);
    }
    assert!(events > 0, "system made no progress");
    (events, wall)
}

/// The E10 rack cell with full stage + link-hop tracing; returns the
/// critical-path report and the clients' own merged latency histogram as a
/// cross-check.
fn rack_phase(args: &Args) -> (CritPathReport, Histogram, bool) {
    let mut setup = build_rack_kvs(
        FabricConfig::default(),
        args.machines,
        args.replication,
        SystemConfig {
            seed: args.seed,
            trace: true,
            ..SystemConfig::default()
        },
    );
    // The decomposition needs every stage mark of the run: raise the ring
    // capacities so nothing is evicted, and turn on the fabric's hop trace.
    for i in 0..args.machines {
        let m = setup.machines[i];
        setup.fabric.machine_mut(m).set_trace_capacity(1 << 20);
    }
    setup.fabric.set_link_tracing(true);
    setup.fabric.set_link_trace_capacity(1 << 20);

    let mut client_ports: Vec<PortId> = Vec::new();
    for i in 0..args.machines {
        let m = setup.machines[i];
        let router_port = setup.router_ports[i];
        let port = setup
            .fabric
            .machine_mut(m)
            .add_host(Box::new(KvsClientHost::new(
                router_port,
                WorkloadConfig {
                    keys: 200,
                    theta: 0.99,
                    read_fraction: 0.95,
                    value_size: 128,
                    outstanding: 8,
                    total_ops: args.rack_ops,
                    preload: true,
                    stats_prefix: format!("c{i}"),
                    ..WorkloadConfig::default()
                },
            )));
        client_ports.push(port);
    }

    setup.fabric.power_on();
    let deadline = setup.fabric.now() + SimDuration::from_secs(60);
    let mut done = false;
    while setup.fabric.now() < deadline && !done {
        setup.fabric.run_for(SimDuration::from_millis(10));
        done = (0..args.machines).all(|i| {
            setup
                .fabric
                .machine(setup.machines[i])
                .host_as::<KvsClientHost>(client_ports[i])
                .expect("client present")
                .is_done()
        });
    }

    let merged = setup.fabric.merged_trace();
    let records: Vec<_> = merged.events().cloned().collect();
    let report = critpath::analyze(&records);

    let mut lat = Histogram::new();
    for i in 0..args.machines {
        let hub = setup.fabric.machine(setup.machines[i]).stats();
        if let Some(c) = hub.histogram(&format!("c{i}.latency")) {
            lat.merge(&c);
        }
    }
    (report, lat, done)
}

fn main() {
    let args = Args::parse();
    println!("E12: performance attribution — allocations, wall time, and p99 tail");
    println!(
        "    (system: {} clients x {} outstanding, {} ms virtual; rack: {} machines R={}, {} ops/client; seed {:#x}{})",
        args.clients,
        args.outstanding,
        args.virtual_ms,
        args.machines,
        args.replication,
        args.rack_ops,
        args.seed,
        if args.no_wall { "; no-wall" } else { "" }
    );
    println!();

    // --- Phase A (+B): scoped attribution of the E9 system phase ----------
    let mut overhead_json = String::new();
    let mut baseline_eps = 0.0f64;
    if !args.no_wall {
        // Overhead control first, so the profiled run's scope table is the
        // process-final profiler state.
        let (ev_off, wall_off) = system_phase(&args, false);
        baseline_eps = ev_off as f64 / wall_off;
        println!("profiler off: {ev_off} events in {wall_off:.3}s ({baseline_eps:.0} events/s)");
    }
    let (events, wall) = system_phase(&args, true);
    let snap = profile::snapshot();
    if !args.no_wall {
        let eps_on = events as f64 / wall;
        let overhead = 100.0 * (baseline_eps - eps_on) / baseline_eps;
        println!("profiler on:  {events} events in {wall:.3}s ({eps_on:.0} events/s, {overhead:+.1}% vs off)");
        overhead_json = format!(
            concat!(
                "  \"overhead\": {{\"events_per_sec_off\": {:.1}, ",
                "\"events_per_sec_on\": {:.1}, \"overhead_pct\": {:.2}}},\n"
            ),
            baseline_eps, eps_on, overhead
        );
    }

    let wall_ns = (wall * 1e9) as u64;
    let alloc_frac = snap.attributed_alloc_fraction();
    let wall_frac = snap.wall_root_total_ns() as f64 / wall_ns.max(1) as f64;

    println!();
    println!("attribution over the measured window ({events} events):");
    let mut t = Table::new(&["scope", "allocs", "allocs/event", "sim ms", "spans"]);
    let mut scopes: Vec<_> = snap
        .scopes
        .iter()
        .filter(|s| s.allocs > 0 || s.spans > 0)
        .collect();
    scopes.sort_by(|a, b| b.allocs.cmp(&a.allocs).then(a.name.cmp(b.name)));
    for s in &scopes {
        t.row_strings(vec![
            s.name.into(),
            s.allocs.to_string(),
            format!("{:.3}", s.allocs as f64 / events as f64),
            format!("{:.3}", s.sim_ns as f64 / 1e6),
            s.spans.to_string(),
        ]);
    }
    t.row_strings(vec![
        "(unattributed)".into(),
        snap.unattributed_allocs.to_string(),
        format!("{:.3}", snap.unattributed_allocs as f64 / events as f64),
        "-".into(),
        "-".into(),
    ]);
    t.print();
    println!(
        "attributed allocations: {:.1}% of {} (gate: >= 95%)",
        100.0 * alloc_frac,
        snap.total_allocs()
    );
    if !args.no_wall {
        println!(
            "attributed wall time:   {:.1}% of the measured window (gate: >= 95%)",
            100.0 * wall_frac
        );
    }

    // --- Phase C: rack critical path ---------------------------------------
    println!();
    println!(
        "critical path: {} machines, R={} (stage + link-hop trace)",
        args.machines, args.replication
    );
    let (report, lat, rack_done) = rack_phase(&args);
    let sum_error = report.worst_sum_error();
    let dominant = report.dominant_at_p99().unwrap_or("-");
    let mut ct = Table::new(&[
        "pctl", "total us", "dominant", "client_q", "dispatch", "uplink", "spine", "downlink",
        "local", "service", "ack_agg", "response",
    ]);
    for r in &report.rows {
        let mut row = vec![
            format!("p{}", r.percentile),
            format!("{:.1}", r.total_ns / 1e3),
            r.dominant.to_string(),
        ];
        row.extend(r.segments.iter().map(|s| format!("{:.1}", s / 1e3)));
        ct.row_strings(row);
    }
    ct.print();
    let client_p99 = lat.percentile(99.0).as_nanos();
    let analyzer_p99 = report.row(99.0).map_or(0.0, |r| r.total_ns);
    println!(
        "{} ops decomposed ({} incomplete), worst segment-sum error {:.2}% (gate: <= 5%)",
        report.ops.len(),
        report.incomplete,
        100.0 * sum_error
    );
    println!(
        "p99 cross-check: clients' histogram {:.1} us vs analyzer band {:.1} us; dominant: {dominant}",
        client_p99 as f64 / 1e3,
        analyzer_p99 / 1e3
    );

    // --- JSON --------------------------------------------------------------
    let mut body = String::from("{\n  \"experiment\": \"e12\",\n  \"schema_version\": 1,\n");
    body.push_str(&format!(
        concat!(
            "  \"config\": {{\"seed\": {}, \"clients\": {}, \"outstanding\": {}, ",
            "\"virtual_ms\": {}, \"machines\": {}, \"replication\": {}, ",
            "\"rack_ops\": {}, \"wall\": {}}},\n"
        ),
        args.seed,
        args.clients,
        args.outstanding,
        args.virtual_ms,
        args.machines,
        args.replication,
        args.rack_ops,
        !args.no_wall
    ));
    body.push_str(&overhead_json);
    body.push_str("  \"attribution\": {\n");
    body.push_str(&format!(
        "    \"events\": {events},\n    \"total_allocs\": {},\n    \"attributed_alloc_fraction\": {:.6},\n",
        snap.total_allocs(),
        alloc_frac
    ));
    if !args.no_wall {
        body.push_str(&format!(
            "    \"wall_ns\": {wall_ns},\n    \"wall_root_ns\": {},\n    \"wall_coverage_fraction\": {:.6},\n",
            snap.wall_root_total_ns(),
            wall_frac
        ));
    }
    body.push_str("    \"scopes\": {\n");
    let mut named: Vec<_> = snap.scopes.iter().collect();
    named.sort_by_key(|s| s.name);
    for (i, s) in named.iter().enumerate() {
        body.push_str(&format!(
            "      \"{}\": {{\"allocs\": {}, \"alloc_bytes\": {}, \"spans\": {}, \"sim_ns\": {}{}}}{}\n",
            s.name,
            s.allocs,
            s.alloc_bytes,
            s.spans,
            s.sim_ns,
            if args.no_wall {
                String::new()
            } else {
                format!(", \"wall_ns\": {}, \"wall_root_ns\": {}", s.wall_ns, s.wall_root_ns)
            },
            if i + 1 < named.len() { "," } else { "" }
        ));
    }
    body.push_str("    },\n");
    body.push_str(&format!(
        "    \"unattributed\": {{\"allocs\": {}, \"alloc_bytes\": {}}}\n  }},\n",
        snap.unattributed_allocs, snap.unattributed_bytes
    ));
    body.push_str("  \"critical_path\": {\n");
    body.push_str(&format!(
        concat!(
            "    \"machines\": {}, \"replication\": {}, \"done\": {}, ",
            "\"ops\": {}, \"incomplete\": {},\n",
            "    \"worst_sum_error\": {:.6},\n",
            "    \"dominant_p99\": \"{}\",\n",
            "    \"client_p99_ns\": {},\n"
        ),
        args.machines,
        args.replication,
        rack_done,
        report.ops.len(),
        report.incomplete,
        sum_error,
        dominant,
        client_p99
    ));
    body.push_str("    \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        let segs = SEGMENTS
            .iter()
            .zip(r.segments)
            .map(|(n, v)| format!("\"{n}\": {v:.1}"))
            .collect::<Vec<_>>()
            .join(", ");
        body.push_str(&format!(
            "      {{\"percentile\": {}, \"total_ns\": {:.1}, \"dominant\": \"{}\", \"segments\": {{{segs}}}}}{}\n",
            r.percentile,
            r.total_ns,
            r.dominant,
            if i + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    body.push_str("    ]\n  }\n}\n");
    match std::fs::write(&args.out, &body) {
        Ok(()) => println!("\nwrote {}", args.out),
        Err(e) => eprintln!("\nfailed to write {}: {e}", args.out),
    }

    // --- Gates -------------------------------------------------------------
    let mut failed = Vec::new();
    if alloc_frac < 0.95 {
        failed.push(format!("attributed_alloc_fraction {alloc_frac:.4} < 0.95"));
    }
    if !args.no_wall && wall_frac < 0.95 {
        failed.push(format!("wall_coverage_fraction {wall_frac:.4} < 0.95"));
    }
    if sum_error > 0.05 {
        failed.push(format!("worst_sum_error {sum_error:.4} > 0.05"));
    }
    if report.ops.is_empty() {
        failed.push("no operations decomposed".into());
    }
    if !rack_done {
        failed.push("rack workload did not complete".into());
    }
    if failed.is_empty() {
        println!("all attribution gates passed");
    } else {
        for f in &failed {
            eprintln!("GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}
