//! Driver devices the experiments use to exercise the system.

use lastcpu_baseline::{encode_broker_params, KERNEL_OPEN};
use lastcpu_bus::{ConnId, DeviceId, Dst, Envelope, Payload, RequestId, ServiceId, Token};
use lastcpu_core::devices::device::{Device, DeviceCtx};
use lastcpu_core::devices::monitor::{Monitor, MonitorEvent};
use lastcpu_core::devices::session::{FileSession, SessionEvent};
use lastcpu_mem::{Pasid, VirtAddr, PAGE_SIZE};
use lastcpu_sim::{Histogram, SimDuration, SimTime};

/// How a setup client reaches control-plane services.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMode {
    /// The paper's design: SSDP discovery, direct opens, memory-controller
    /// device.
    Decentralized,
    /// The baseline: directory lookup, open brokering, and memory
    /// management all at the kernel.
    Centralized {
        /// The CPU's bus address.
        cpu: DeviceId,
    },
}

/// A client that repeatedly runs the full Figure-2 setup sequence
/// (discover → open → alloc → share → queue doorbell) and records how long
/// each complete setup took. The E1 experiment runs many concurrently.
pub struct SetupClient {
    name: String,
    monitor: Monitor,
    mode: ControlMode,
    file_pattern: String,
    iterations: u32,
    completed: u32,
    begun_at: SimTime,
    /// Setup latencies, one per completed iteration.
    pub latencies: Vec<SimDuration>,
    /// Whether any iteration failed.
    pub failed: bool,
    state: SetupState,
    session: Option<FileSession>,
    // Centralized-mode bookkeeping.
    query_req: Option<RequestId>,
    target: Option<(DeviceId, ServiceId)>,
    open_op: u64,
    alloc_op: u64,
    share_op: u64,
    conn: ConnId,
    region: u64,
    retry_timer_armed: bool,
    /// The memory controller's address (decentralized mode), set by the
    /// experiment after system assembly — mirrors apps that discover it
    /// once at boot rather than per setup.
    pub memctl_hint_value: DeviceId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetupState {
    Boot,
    Discovering,
    Opening,
    Allocating,
    Sharing,
    Done,
}

const TOKEN_RETRY: u64 = 1;
const SETUP_VA: u64 = 0x3000_0000;

impl SetupClient {
    /// A client that runs `iterations` setups for `file_pattern`.
    pub fn new(name: &str, mode: ControlMode, file_pattern: &str, iterations: u32) -> Self {
        SetupClient {
            name: name.to_string(),
            monitor: Monitor::new(),
            mode,
            file_pattern: file_pattern.to_string(),
            iterations,
            completed: 0,
            begun_at: SimTime::ZERO,
            latencies: Vec::new(),
            failed: false,
            state: SetupState::Boot,
            session: None,
            query_req: None,
            target: None,
            open_op: 0,
            alloc_op: 0,
            share_op: 0,
            conn: ConnId(0),
            region: 0,
            retry_timer_armed: false,
            memctl_hint_value: DeviceId(0),
        }
    }

    /// Whether all iterations completed.
    pub fn is_done(&self) -> bool {
        self.completed >= self.iterations
    }

    fn begin_iteration(&mut self, ctx: &mut DeviceCtx<'_>) {
        self.begun_at = ctx.now + ctx.elapsed();
        self.state = SetupState::Discovering;
        match self.mode {
            ControlMode::Decentralized => {
                let pattern = self.file_pattern.clone();
                self.open_op = self.monitor.discover(ctx, &pattern);
            }
            ControlMode::Centralized { cpu } => {
                self.query_req = Some(ctx.send_bus(
                    Dst::Device(cpu),
                    Payload::Query {
                        pattern: self.file_pattern.clone(),
                    },
                ));
                if !self.retry_timer_armed {
                    self.retry_timer_armed = true;
                    ctx.set_timer(SimDuration::from_millis(1), TOKEN_RETRY);
                }
            }
        }
    }

    fn finish_iteration(&mut self, ctx: &mut DeviceCtx<'_>) {
        let done_at = ctx.now + ctx.elapsed();
        self.latencies.push(done_at.since(self.begun_at));
        self.completed += 1;
        self.state = SetupState::Done;
        self.session = None;
        if self.completed < self.iterations {
            // Tear down: close the connection and free the region so the
            // next iteration starts clean.
            if self.conn != ConnId(0) {
                self.monitor.close(ctx, self.conn);
            }
            if self.region != 0 {
                let memctl = match self.mode {
                    ControlMode::Centralized { cpu } => cpu,
                    ControlMode::Decentralized => self.memctl_hint(),
                };
                self.monitor.free_region(ctx, memctl, self.region);
            }
            self.conn = ConnId(0);
            self.region = 0;
            self.begin_iteration(ctx);
        }
    }

    fn handle_decentralized(&mut self, ctx: &mut DeviceCtx<'_>, ev: &MonitorEvent) {
        // In decentralized mode a FileSession drives everything after
        // discovery.
        if let Some(session) = self.session.as_mut() {
            match session.on_event(ctx, &mut self.monitor, ev) {
                Some(SessionEvent::Ready { conn, .. }) => {
                    self.conn = conn;
                    self.region = session.region();
                    self.finish_iteration(ctx);
                    return;
                }
                Some(SessionEvent::Failed { .. }) => {
                    self.failed = true;
                    return;
                }
                _ => {}
            }
        }
        if let (SetupState::Discovering, MonitorEvent::DiscoveryDone { op, hits }) =
            (self.state, ev)
        {
            if *op != self.open_op {
                return;
            }
            let found = hits
                .iter()
                .find(|(_, s)| Monitor::match_pattern(&self.file_pattern, &s.name));
            match found {
                Some((dev, svc)) => {
                    // The memory controller is discovered once (lazily) by
                    // the session config; simplest is a fixed "memory"
                    // lookup each time — but here the bus-level cost of
                    // interest is the whole handshake, so the session
                    // rediscovers nothing: we find memctl via hits cache.
                    let mut s = FileSession::new(
                        self.memctl_hint(),
                        *dev,
                        svc.id,
                        Token::NONE,
                        Pasid(ctx.dev.0),
                        SETUP_VA,
                        16,
                    );
                    self.state = SetupState::Opening;
                    s.start(ctx, &mut self.monitor);
                    self.session = Some(s);
                }
                None => {
                    // Target not announced yet: retry.
                    let pattern = self.file_pattern.clone();
                    self.open_op = self.monitor.discover(ctx, &pattern);
                }
            }
        }
    }

    fn memctl_hint(&self) -> DeviceId {
        self.memctl_hint_value
    }

    fn handle_centralized(&mut self, ctx: &mut DeviceCtx<'_>, env: &Envelope) -> bool {
        let ControlMode::Centralized { cpu } = self.mode else {
            return false;
        };
        match (&env.payload, self.state) {
            (Payload::QueryHit { device, service }, SetupState::Discovering)
                if Some(env.req) == self.query_req =>
            {
                self.target = Some((*device, service.id));
                self.state = SetupState::Opening;
                let mut inner = lastcpu_bus::wire::WireWriter::new();
                inner.u32(ctx.dev.0);
                self.open_op = self.monitor.open(
                    ctx,
                    cpu,
                    KERNEL_OPEN,
                    Token::NONE,
                    encode_broker_params(*device, service.id, Token::NONE, &inner.finish()),
                );
                true
            }
            _ => false,
        }
    }

    fn handle_centralized_event(&mut self, ctx: &mut DeviceCtx<'_>, ev: &MonitorEvent) {
        let ControlMode::Centralized { cpu } = self.mode else {
            return;
        };
        match (self.state, ev) {
            (SetupState::Opening, MonitorEvent::OpenDone { op, result, .. })
                if *op == self.open_op =>
            {
                match result {
                    Ok((conn, _shm, _)) => {
                        self.conn = *conn;
                        self.state = SetupState::Allocating;
                        self.alloc_op = self.monitor.alloc_shared(
                            ctx,
                            cpu,
                            ctx.dev.0,
                            SETUP_VA,
                            lastcpu_core::devices::ssd::FILE_CONN_SHM,
                            3,
                        );
                    }
                    Err(_) => self.failed = true,
                }
            }
            (SetupState::Allocating, MonitorEvent::AllocDone { op, result })
                if *op == self.alloc_op =>
            {
                match result {
                    Ok(region) => {
                        self.region = *region;
                        self.state = SetupState::Sharing;
                        let target = self.target.expect("set at discovery").0;
                        self.share_op = self.monitor.share(
                            ctx,
                            cpu,
                            self.region,
                            target,
                            ctx.dev.0,
                            SETUP_VA,
                            3,
                        );
                    }
                    Err(_) => self.failed = true,
                }
            }
            (SetupState::Sharing, MonitorEvent::ShareDone { op, status })
                if *op == self.share_op =>
            {
                if status.is_ok() {
                    // Queue layout + setup doorbell (the last Figure-2 step).
                    let target = self.target.expect("set at discovery").0;
                    let mut view = ctx.dma_view(Pasid(ctx.dev.0));
                    match lastcpu_core::devices::ssd::FileClient::create(&mut view, SETUP_VA, 16) {
                        Ok((_client, setup)) => {
                            ctx.doorbell(target, self.conn, setup);
                            self.finish_iteration(ctx);
                        }
                        Err(_) => self.failed = true,
                    }
                } else {
                    self.failed = true;
                }
            }
            _ => {}
        }
    }
}

impl Device for SetupClient {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "setup-client"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "setup-client");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(5));
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        if self.handle_centralized(ctx, &env) {
            return;
        }
        let events = self.monitor.handle(ctx, &env);
        for ev in events {
            match ev {
                MonitorEvent::Registered => {
                    if self.state == SetupState::Boot {
                        self.begin_iteration(ctx);
                    }
                }
                ref other => match self.mode {
                    ControlMode::Decentralized => self.handle_decentralized(ctx, other),
                    ControlMode::Centralized { .. } => self.handle_centralized_event(ctx, other),
                },
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if let Some(events) = self.monitor.on_timer(ctx, token) {
            for ev in events {
                match self.mode {
                    ControlMode::Decentralized => self.handle_decentralized(ctx, &ev),
                    ControlMode::Centralized { .. } => self.handle_centralized_event(ctx, &ev),
                }
            }
            return;
        }
        if token == TOKEN_RETRY {
            self.retry_timer_armed = false;
            if self.state == SetupState::Discovering && !self.is_done() {
                // Kernel not up yet or lookup lost: retry.
                self.begin_iteration(ctx);
            } else if !self.is_done() {
                self.retry_timer_armed = true;
                ctx.set_timer(SimDuration::from_millis(1), TOKEN_RETRY);
            }
        }
    }
}

/// A device that answers every doorbell with a doorbell — the reflector for
/// data-plane latency probes.
pub struct DoorbellPonger {
    name: String,
}

impl DoorbellPonger {
    /// A fresh reflector.
    pub fn new(name: &str) -> Self {
        DoorbellPonger {
            name: name.to_string(),
        }
    }
}

impl Device for DoorbellPonger {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "doorbell-ponger"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: self.name.clone(),
                kind: "doorbell-ponger".into(),
            },
        );
        ctx.set_timer(SimDuration::from_millis(2), 1);
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        if let Payload::Doorbell { conn, value } = env.payload {
            ctx.doorbell(env.src, conn, value);
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if token == 1 {
            ctx.send_bus(Dst::Bus, Payload::Heartbeat);
            ctx.set_timer(SimDuration::from_millis(2), 1);
        }
    }
}

/// Sends a doorbell to a [`DoorbellPonger`] on a fixed period and records
/// round-trip times — the data-plane latency probe for E6.
pub struct DoorbellPinger {
    name: String,
    peer: DeviceId,
    period: SimDuration,
    sent_at: Option<SimTime>,
    /// Round-trip time distribution.
    pub rtt: Histogram,
}

impl DoorbellPinger {
    /// A pinger aimed at `peer`, firing every `period`.
    pub fn new(name: &str, peer: DeviceId, period: SimDuration) -> Self {
        DoorbellPinger {
            name: name.to_string(),
            peer,
            period,
            sent_at: None,
            rtt: Histogram::new(),
        }
    }
}

impl Device for DoorbellPinger {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "doorbell-pinger"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: self.name.clone(),
                kind: "doorbell-pinger".into(),
            },
        );
        ctx.set_timer(SimDuration::from_millis(2), 1);
        ctx.set_timer(self.period, 2);
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        if let Payload::Doorbell { .. } = env.payload {
            if let Some(at) = self.sent_at.take() {
                self.rtt.record(ctx.now.since(at));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        match token {
            1 => {
                ctx.send_bus(Dst::Bus, Payload::Heartbeat);
                ctx.set_timer(SimDuration::from_millis(2), 1);
            }
            2 => {
                if self.sent_at.is_none() {
                    self.sent_at = Some(ctx.now);
                    ctx.doorbell(self.peer, ConnId(1), 0);
                }
                ctx.set_timer(self.period, 2);
            }
            _ => {}
        }
    }
}

/// Generates control-plane load at a configurable rate (E6's interference
/// source): either broadcast discovery queries, or — the truly damaging
/// case on a conflated interconnect — bulk `AppData` payloads tunneled over
/// the control path, the way a kernel-mediated system moves buffers.
pub struct ControlStorm {
    name: String,
    interval: SimDuration,
    /// When non-zero, send `AppData` of this size to `sink` instead of a
    /// broadcast query.
    bulk_bytes: usize,
    sink: DeviceId,
    /// Messages sent.
    pub sent: u64,
}

impl ControlStorm {
    /// A storm generator emitting one broadcast query every `interval`.
    pub fn new(name: &str, interval: SimDuration) -> Self {
        ControlStorm {
            name: name.to_string(),
            interval,
            bulk_bytes: 0,
            sink: DeviceId(0),
            sent: 0,
        }
    }

    /// A storm generator emitting `bulk_bytes` of `AppData` to `sink` every
    /// `interval`.
    pub fn bulk(name: &str, interval: SimDuration, bulk_bytes: usize, sink: DeviceId) -> Self {
        ControlStorm {
            name: name.to_string(),
            interval,
            bulk_bytes,
            sink,
            sent: 0,
        }
    }
}

impl Device for ControlStorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "control-storm"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: self.name.clone(),
                kind: "control-storm".into(),
            },
        );
        ctx.set_timer(SimDuration::from_millis(2), 1);
        ctx.set_timer(self.interval, 2);
    }

    fn on_message(&mut self, _ctx: &mut DeviceCtx<'_>, _env: Envelope) {}

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        match token {
            1 => {
                ctx.send_bus(Dst::Bus, Payload::Heartbeat);
                ctx.set_timer(SimDuration::from_millis(2), 1);
            }
            2 => {
                if self.bulk_bytes > 0 {
                    ctx.send_bus(
                        Dst::Device(self.sink),
                        Payload::AppData {
                            conn: ConnId(0),
                            data: vec![0u8; self.bulk_bytes],
                        },
                    );
                } else {
                    ctx.send_bus(
                        Dst::Bus,
                        Payload::Query {
                            pattern: "storm:no-such-service".into(),
                        },
                    );
                }
                self.sent += 1;
                ctx.set_timer(self.interval, 2);
            }
            _ => {}
        }
    }
}

/// A device announcing `n` services — population for the discovery
/// experiment (E7).
pub struct Announcer {
    name: String,
    monitor: Monitor,
}

impl Announcer {
    /// A device announcing `services` services named `svc:<name>:<i>`.
    pub fn new(name: &str, services: u16) -> Self {
        let mut monitor = Monitor::new();
        for i in 0..services {
            monitor.add_service(
                lastcpu_bus::ServiceDesc {
                    id: ServiceId(i + 1),
                    name: format!("svc:{name}:{i}"),
                    resource: lastcpu_bus::ResourceKind::Compute,
                },
                lastcpu_core::devices::monitor::AuthMode::Open,
            );
        }
        Announcer {
            name: name.to_string(),
            monitor,
        }
    }
}

impl Device for Announcer {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "announcer"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "announcer");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(5));
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        let _ = self.monitor.handle(ctx, &env);
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        let _ = self.monitor.on_timer(ctx, token);
    }
}

/// Runs discovery sweeps and records their latency (E7's prober).
pub struct DiscoverProbe {
    name: String,
    monitor: Monitor,
    pattern: String,
    iterations: u32,
    op: u64,
    begun: SimTime,
    /// Latency of each completed discovery.
    pub latencies: Vec<SimDuration>,
    /// Hits in the last discovery.
    pub last_hits: usize,
}

impl DiscoverProbe {
    /// A probe discovering `pattern` `iterations` times.
    pub fn new(name: &str, pattern: &str, iterations: u32) -> Self {
        DiscoverProbe {
            name: name.to_string(),
            monitor: Monitor::new(),
            pattern: pattern.to_string(),
            iterations,
            op: 0,
            begun: SimTime::ZERO,
            latencies: Vec::new(),
            last_hits: 0,
        }
    }

    /// Whether all sweeps completed.
    pub fn is_done(&self) -> bool {
        self.latencies.len() as u32 >= self.iterations
    }

    fn kick(&mut self, ctx: &mut DeviceCtx<'_>) {
        self.begun = ctx.now + ctx.elapsed();
        let pattern = self.pattern.clone();
        self.op = self.monitor.discover(ctx, &pattern);
    }

    fn on_ev(&mut self, ctx: &mut DeviceCtx<'_>, ev: &MonitorEvent) {
        match ev {
            // Let the announcers finish booting before the first sweep.
            MonitorEvent::Registered => ctx.set_timer(SimDuration::from_micros(200), 2),
            MonitorEvent::DiscoveryDone { op, hits } if *op == self.op => {
                self.latencies
                    .push((ctx.now + ctx.elapsed()).since(self.begun));
                self.last_hits = hits.len();
                if !self.is_done() {
                    self.kick(ctx);
                }
            }
            _ => {}
        }
    }
}

impl Device for DiscoverProbe {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "discover-probe"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "discover-probe");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(5));
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        let events = self.monitor.handle(ctx, &env);
        for ev in events {
            self.on_ev(ctx, &ev);
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if let Some(events) = self.monitor.on_timer(ctx, token) {
            for ev in events {
                self.on_ev(ctx, &ev);
            }
            return;
        }
        if token == 2 && self.latencies.is_empty() {
            self.kick(ctx);
        }
    }
}

/// Allocates and frees memory in a churn loop against the memory
/// controller, recording per-op latency (E8).
pub struct AllocChurn {
    name: String,
    monitor: Monitor,
    memctl: DeviceId,
    iterations: u32,
    /// Bytes per allocation (varied per-iteration by the size schedule).
    sizes: Vec<u64>,
    held: Vec<u64>,
    op: u64,
    op_kind: u8, // 0 alloc, 1 free
    begun: SimTime,
    next_va: u64,
    i: u32,
    /// Latency of each alloc.
    pub alloc_latencies: Vec<SimDuration>,
    /// Latency of each free.
    pub free_latencies: Vec<SimDuration>,
    /// Allocations denied.
    pub denials: u32,
}

impl AllocChurn {
    /// A churner doing `iterations` alloc/free cycles with the given size
    /// schedule (cycled).
    pub fn new(name: &str, memctl: DeviceId, iterations: u32, sizes: Vec<u64>) -> Self {
        AllocChurn {
            name: name.to_string(),
            monitor: Monitor::new(),
            memctl,
            iterations,
            sizes,
            held: Vec::new(),
            op: 0,
            op_kind: 0,
            begun: SimTime::ZERO,
            next_va: 0x5000_0000,
            i: 0,
            alloc_latencies: Vec::new(),
            free_latencies: Vec::new(),
            denials: 0,
        }
    }

    /// Whether the churn completed.
    pub fn is_done(&self) -> bool {
        self.i >= self.iterations
    }

    fn step(&mut self, ctx: &mut DeviceCtx<'_>) {
        if self.is_done() {
            return;
        }
        self.begun = ctx.now + ctx.elapsed();
        // Alternate: allocate mostly; free one in three when holding some.
        if self.i % 3 == 2 && !self.held.is_empty() {
            let region = self.held.remove((self.i as usize * 7) % self.held.len());
            self.op = self.monitor.free_region(ctx, self.memctl, region);
            self.op_kind = 1;
        } else {
            let bytes = self.sizes[self.i as usize % self.sizes.len()];
            let va = self.next_va;
            self.next_va += bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE + PAGE_SIZE;
            self.op = self
                .monitor
                .alloc_shared(ctx, self.memctl, ctx.dev.0, va, bytes, 3);
            self.op_kind = 0;
        }
    }

    fn on_ev(&mut self, ctx: &mut DeviceCtx<'_>, ev: &MonitorEvent) {
        match ev {
            // Let the rest of the machine finish booting (the memory
            // controller may register microseconds after us).
            MonitorEvent::Registered => ctx.set_timer(SimDuration::from_micros(200), 2),
            MonitorEvent::AllocDone { op, result } if *op == self.op && self.op_kind == 0 => {
                let lat = (ctx.now + ctx.elapsed()).since(self.begun);
                self.alloc_latencies.push(lat);
                match result {
                    Ok(region) => self.held.push(*region),
                    Err(_) => self.denials += 1,
                }
                self.i += 1;
                self.step(ctx);
            }
            MonitorEvent::FreeDone { op, .. } if *op == self.op && self.op_kind == 1 => {
                let lat = (ctx.now + ctx.elapsed()).since(self.begun);
                self.free_latencies.push(lat);
                self.i += 1;
                self.step(ctx);
            }
            _ => {}
        }
    }
}

impl Device for AllocChurn {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "alloc-churn"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "alloc-churn");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(5));
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        let events = self.monitor.handle(ctx, &env);
        for ev in events {
            self.on_ev(ctx, &ev);
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if let Some(events) = self.monitor.on_timer(ctx, token) {
            for ev in events {
                self.on_ev(ctx, &ev);
            }
            return;
        }
        if token == 2 && self.i == 0 && self.alloc_latencies.is_empty() {
            self.step(ctx);
        }
    }
}

/// A device that allocates one page, then deliberately probes inside and
/// outside its mapping — demonstrating that faults are delivered to (and
/// contained by) the faulting device (E4, §4 "Error Handling").
pub struct DmaProbe {
    name: String,
    monitor: Monitor,
    memctl: DeviceId,
    op: u64,
    /// Result of the in-bounds DMA.
    pub in_bounds_ok: Option<bool>,
    /// The out-of-bounds access faulted (as it must).
    pub out_of_bounds_faulted: Option<bool>,
    /// Virtual time the fault handling took (inline, at the device).
    pub fault_handling: Option<SimDuration>,
}

const PROBE_VA: u64 = 0x6000_0000;

impl DmaProbe {
    /// A probe using the given memory controller.
    pub fn new(name: &str, memctl: DeviceId) -> Self {
        DmaProbe {
            name: name.to_string(),
            monitor: Monitor::new(),
            memctl,
            op: 0,
            in_bounds_ok: None,
            out_of_bounds_faulted: None,
            fault_handling: None,
        }
    }

    /// Whether the probe ran.
    pub fn is_done(&self) -> bool {
        self.out_of_bounds_faulted.is_some()
    }

    fn on_ev(&mut self, ctx: &mut DeviceCtx<'_>, ev: &MonitorEvent) {
        match ev {
            MonitorEvent::Registered => {
                // Let the memory controller finish booting first.
                ctx.set_timer(SimDuration::from_micros(200), 2);
            }
            MonitorEvent::AllocDone { op, result } if *op == self.op => {
                if result.is_err() {
                    self.in_bounds_ok = Some(false);
                    self.out_of_bounds_faulted = Some(false);
                    return;
                }
                let pasid = Pasid(ctx.dev.0);
                // In bounds: must succeed.
                let mut buf = [0u8; 64];
                let ok = ctx
                    .dma_read(pasid, VirtAddr::new(PROBE_VA), &mut buf)
                    .is_ok();
                self.in_bounds_ok = Some(ok);
                // Out of bounds: must fault, handled here, device survives.
                let before = ctx.elapsed();
                let fault = ctx
                    .dma_read(pasid, VirtAddr::new(PROBE_VA + PAGE_SIZE), &mut buf)
                    .is_err();
                self.fault_handling = Some(SimDuration::from_nanos(
                    ctx.elapsed().as_nanos() - before.as_nanos(),
                ));
                self.out_of_bounds_faulted = Some(fault);
            }
            _ => {}
        }
    }
}

impl Device for DmaProbe {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "dma-probe"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        let name = self.name.clone();
        self.monitor.start(ctx, &name, "dma-probe");
        self.monitor
            .enable_heartbeat(ctx, SimDuration::from_millis(5));
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        let events = self.monitor.handle(ctx, &env);
        for ev in events {
            self.on_ev(ctx, &ev);
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if let Some(events) = self.monitor.on_timer(ctx, token) {
            for ev in events {
                self.on_ev(ctx, &ev);
            }
            return;
        }
        if token == 2 && !self.is_done() && self.in_bounds_ok.is_none() {
            self.op =
                self.monitor
                    .alloc_shared(ctx, self.memctl, ctx.dev.0, PROBE_VA, PAGE_SIZE, 3);
        }
    }
}
