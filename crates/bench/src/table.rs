//! Plain-text table output for experiment binaries.

/// A simple right-aligned column table.
///
/// # Examples
///
/// ```
/// use lastcpu_bench::Table;
///
/// let mut t = Table::new(&["n", "latency"]);
/// t.row(&["1", "3.2us"]);
/// let s = t.render();
/// assert!(s.contains("latency"));
/// assert!(s.contains("3.2us"));
/// ```
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row/header mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of owned strings.
    pub fn row_strings(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row/header mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["wide-cell", "1"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }
}
