//! A minimal JSON reader for `BENCH_*.json` artifacts.
//!
//! The workspace builds offline (no serde), and the exporters hand-roll
//! their JSON; `bench_diff` needs the inverse to compare two artifacts.
//! This is a strict-enough recursive-descent parser for the subset the
//! benchmarks emit: objects, arrays, double-quoted strings with the usual
//! escapes, numbers, booleans, null. Object keys keep **insertion order**
//! is not required — lookups go through [`Json::get`] — so a `BTreeMap`
//! keeps comparisons deterministic.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; bench artifacts stay well inside
    /// the 2^53 integer-exact range).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `s` as one JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing garbage at byte {i}"));
        }
        Ok(v)
    }

    /// Member lookup on an object (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Walks a `.`-separated path of object keys.
    pub fn path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for part in path.split('.') {
            cur = cur.get(part)?;
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*i) == Some(&c) {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, i))
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => Ok(Json::Str(string(b, i)?)),
        Some(b't') => literal(b, i, "true", Json::Bool(true)),
        Some(b'f') => literal(b, i, "false", Json::Bool(false)),
        Some(b'n') => literal(b, i, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        _ => Err(format!("unexpected token at byte {i}")),
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<Json, String> {
    expect(b, i, b'{')?;
    let mut m = BTreeMap::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(Json::Obj(m));
    }
    loop {
        skip_ws(b, i);
        let k = string(b, i)?;
        skip_ws(b, i);
        expect(b, i, b':')?;
        let v = value(b, i)?;
        m.insert(k, v);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Json::Obj(m));
            }
            _ => return Err(format!("bad object at byte {i}")),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<Json, String> {
    expect(b, i, b'[')?;
    let mut v = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(Json::Arr(v));
    }
    loop {
        v.push(value(b, i)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Json::Arr(v));
            }
            _ => return Err(format!("bad array at byte {i}")),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
    expect(b, i, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*i) {
        *i += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let e = b.get(*i).copied().ok_or("unterminated escape")?;
                *i += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*i..*i + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *i += 4;
                        // Surrogates are not emitted by our exporters; map
                        // them to the replacement character rather than fail.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(format!("unknown escape at byte {}", *i - 1)),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at c.
                let start = *i - 1;
                let len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = b.get(start..start + len).ok_or("truncated utf-8")?;
                let s = std::str::from_utf8(chunk).map_err(|_| "bad utf-8 in string")?;
                out.push_str(s);
                *i = start + len;
            }
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *i += 1;
    }
    let s = std::str::from_utf8(&b[start..*i]).map_err(|_| "bad number")?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {s:?} at byte {start}"))
}

fn literal(b: &[u8], i: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b.get(*i..*i + word.len()) == Some(word.as_bytes()) {
        *i += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_artifact_shape() {
        let doc = r#"{
  "experiment": "e9",
  "schema_version": 1,
  "config": {"queue_depth": 65536, "repeat": 3},
  "engines": {
    "wheel": {"system": {"events_per_sec": 376731.3, "allocs_per_event": 9.428}},
    "heap": {"system": {"events_per_sec": 300000.0, "allocs_per_event": 9.428}}
  },
  "flags": [true, false, null]
}"#;
        let j = Json::parse(doc).unwrap();
        assert_eq!(j.get("experiment").unwrap().as_str(), Some("e9"));
        assert_eq!(
            j.path("engines.wheel.system.events_per_sec")
                .unwrap()
                .as_f64(),
            Some(376731.3)
        );
        assert_eq!(
            j.path("config.queue_depth").unwrap().as_f64(),
            Some(65536.0)
        );
        assert_eq!(j.get("flags").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(j.get("flags").unwrap().as_arr().unwrap()[2], Json::Null);
    }

    #[test]
    fn parses_escapes_and_negatives() {
        let j = Json::parse(r#"{"s": "a\"b\nA", "n": -2.5e3}"#).unwrap();
        assert_eq!(j.get("s").unwrap().as_str(), Some("a\"b\nA"));
        assert_eq!(j.get("n").unwrap().as_f64(), Some(-2500.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("troo").is_err());
    }

    #[test]
    fn round_trips_exporter_output() {
        // The sim exporters' output must be parseable by this reader (they
        // are the two halves bench_diff glues together).
        let hub = lastcpu_sim::MetricsHub::new();
        hub.add("a.counter", 3);
        hub.record_value("h.lat", 700);
        let j = Json::parse(lastcpu_sim::export::metrics_json(&hub).trim()).unwrap();
        assert!(j.path("counters.a.counter").is_none()); // dotted key, not a path
        assert_eq!(
            j.get("counters")
                .unwrap()
                .get("a.counter")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
        assert!(j.get("histograms").unwrap().get("h.lat").is_some());
    }
}
