//! Observability CLI plumbing shared by every experiment binary.
//!
//! Every experiment accepts these optional flags:
//!
//! - `--trace-out <path>` — dump the protocol trace. A `.json` extension
//!   selects Chrome `trace_event` format (loadable in Perfetto /
//!   `chrome://tracing`); any other extension selects JSON-lines, one
//!   record per line.
//! - `--metrics-out <path>` — dump the metrics-hub snapshot. A `.json`
//!   extension selects a JSON document; any other extension selects a
//!   Prometheus-style text exposition.
//! - `--profile` — enable the E12 attribution profiler (scoped allocation
//!   accounting + hot-path span timing) for the run.
//! - `--profile-out <path>` — dump the profile snapshot as JSON after the
//!   run; implies `--profile`. Wall-clock fields are included (they are
//!   host noise by definition; the dedicated `e12_attribution` binary has
//!   a `--no-wall` mode for byte-stable artifacts).
//!
//! Unknown flags are ignored so experiments keep their own argument
//! conventions. Requesting `--trace-out` also forces tracing on in the
//! system configuration (several experiments disable it by default for
//! speed).
//!
//! Sweep-style experiments build a fresh [`System`] per configuration;
//! they dump after every run, so the artifact on disk describes the
//! **last** configuration of the sweep. The profiler, by contrast, is
//! process-wide (thread-local) state: its dump covers everything since
//! [`ObsArgs::begin`].

use lastcpu_core::{System, SystemConfig};
use lastcpu_sim::{export, profile};

/// Parsed observability arguments (see module docs).
#[derive(Debug, Default, Clone)]
pub struct ObsArgs {
    /// Trace dump destination, if requested.
    pub trace_out: Option<String>,
    /// Metrics dump destination, if requested.
    pub metrics_out: Option<String>,
    /// Whether `--profile` (or `--profile-out`) was given.
    pub profile: bool,
    /// Profile dump destination, if requested.
    pub profile_out: Option<String>,
}

impl ObsArgs {
    /// Parses the process arguments, ignoring flags it does not know.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (tests).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = ObsArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace-out" => out.trace_out = it.next(),
                "--metrics-out" => out.metrics_out = it.next(),
                "--profile" => out.profile = true,
                "--profile-out" => {
                    out.profile_out = it.next();
                    out.profile = true;
                }
                _ => {}
            }
        }
        out
    }

    /// Whether any artifact was requested.
    pub fn any(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.profile_out.is_some()
    }

    /// Forces tracing on in `config` when a trace dump was requested.
    pub fn apply(&self, config: &mut SystemConfig) {
        if self.trace_out.is_some() {
            config.trace = true;
        }
    }

    /// Arms the profiler when `--profile` was requested. Call once on the
    /// measuring thread before the workload; a no-op otherwise.
    pub fn begin(&self) {
        if self.profile {
            profile::reset();
            profile::set_enabled(true);
        }
    }

    /// Writes the requested artifacts from `system`. The file extension
    /// selects the format (see module docs). Failures are reported to
    /// stderr but do not abort the experiment.
    pub fn dump(&self, system: &System) {
        if let Some(path) = &self.trace_out {
            let body = if path.ends_with(".json") {
                export::trace_chrome(system.trace())
            } else {
                export::trace_jsonl(system.trace())
            };
            write_artifact(path, &body, "trace");
        }
        if let Some(path) = &self.metrics_out {
            let body = if path.ends_with(".json") {
                export::metrics_json(system.stats())
            } else {
                export::metrics_prometheus(system.stats())
            };
            write_artifact(path, &body, "metrics");
        }
        if let Some(path) = &self.profile_out {
            let body = export::profile_json(&profile::snapshot(), true);
            write_artifact(path, &body, "profile");
        }
    }
}

fn write_artifact(path: &str, body: &str, label: &str) {
    match std::fs::write(path, body) {
        Ok(()) => eprintln!("wrote {label} to {path}"),
        Err(e) => eprintln!("failed to write {label} to {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_ignores_unknowns() {
        let a = ObsArgs::parse(
            [
                "--clients",
                "8",
                "--trace-out",
                "t.jsonl",
                "--metrics-out",
                "m.json",
            ]
            .map(String::from),
        );
        assert_eq!(a.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(a.metrics_out.as_deref(), Some("m.json"));
        assert!(a.any());
        assert!(!a.profile);
        assert!(!ObsArgs::parse(Vec::new()).any());
    }

    #[test]
    fn profile_out_implies_profile() {
        let a = ObsArgs::parse(["--profile-out", "p.json"].map(String::from));
        assert!(a.profile);
        assert_eq!(a.profile_out.as_deref(), Some("p.json"));
        assert!(a.any());
        let b = ObsArgs::parse(["--profile"].map(String::from));
        assert!(b.profile);
        assert!(b.profile_out.is_none());
        assert!(!b.any(), "--profile alone writes no artifact");
    }

    #[test]
    fn trace_request_forces_tracing_on() {
        let a = ObsArgs::parse(["--trace-out", "t.jsonl"].map(String::from));
        let mut cfg = SystemConfig {
            trace: false,
            ..SystemConfig::default()
        };
        a.apply(&mut cfg);
        assert!(cfg.trace);
    }
}
