//! Two-tenant KVS assembly for the isolation experiment (E3).
//!
//! A victim tenant and an antagonist tenant each run their own KVS on their
//! own smart NIC, over their own file — but both files live on the *same*
//! smart SSD. The SSD is the shared resource; whether the antagonist can
//! destroy the victim's tail latency depends on the SSD's per-context
//! isolation scheduler (§2.1: devices must "provide isolation between the
//! instances").

use lastcpu_core::devices::flash::{NandChip, NandConfig};
use lastcpu_core::devices::fs::FlashFs;
use lastcpu_core::devices::ftl::Ftl;
use lastcpu_core::devices::nic::SmartNic;
use lastcpu_core::devices::ssd::{SmartSsd, SsdConfig};
use lastcpu_core::{DeviceHandle, System, SystemConfig};
use lastcpu_kvs::server::ServerConfig;
use lastcpu_kvs::KvsNicApp;
use lastcpu_mem::Pasid;
use lastcpu_net::PortId;

/// Victim's data file.
pub const VICTIM_FILE: &str = "/data/victim.db";
/// Antagonist's data file.
pub const ANTAGONIST_FILE: &str = "/data/antagonist.db";

/// The assembled two-tenant machine.
pub struct TwoTenantSetup {
    /// The machine.
    pub system: System,
    /// Victim KVS frontend.
    pub victim_nic: DeviceHandle,
    /// Antagonist KVS frontend.
    pub antagonist_nic: DeviceHandle,
    /// The shared SSD.
    pub ssd: DeviceHandle,
    /// Port clients of the victim send to.
    pub victim_port: PortId,
    /// Port clients of the antagonist send to.
    pub antagonist_port: PortId,
}

/// Builds the two-tenant machine with the SSD's isolation scheduler on or
/// off.
pub fn build_two_tenant(sys_config: SystemConfig, isolation: bool) -> TwoTenantSetup {
    let mut system = System::new(sys_config);
    system.add_memctl("memctl0");

    let mut fs = FlashFs::format(Ftl::new(NandChip::new(NandConfig {
        blocks: 256,
        pages_per_block: 64,
        page_size: 4096,
        max_erase_cycles: u32::MAX,
        ..NandConfig::default()
    })));
    fs.create(VICTIM_FILE).expect("fresh fs");
    fs.create(ANTAGONIST_FILE).expect("fresh fs");
    let ssd = system.add_device(Box::new(SmartSsd::new(
        "ssd0",
        fs,
        SsdConfig {
            isolation,
            exports: vec![VICTIM_FILE.into(), ANTAGONIST_FILE.into()],
            ..SsdConfig::default()
        },
    )));

    let victim_nic = system.add_net_device(Box::new(SmartNic::new(
        "nic-victim",
        KvsNicApp::new(
            ServerConfig {
                file_pattern: format!("file:{VICTIM_FILE}"),
                ..ServerConfig::default()
            },
            Pasid(100),
        ),
    )));
    let antagonist_nic = system.add_net_device(Box::new(SmartNic::new(
        "nic-antagonist",
        KvsNicApp::new(
            ServerConfig {
                file_pattern: format!("file:{ANTAGONIST_FILE}"),
                ..ServerConfig::default()
            },
            Pasid(101),
        ),
    )));
    let victim_port = system.device_port(victim_nic).expect("port");
    let antagonist_port = system.device_port(antagonist_nic).expect("port");
    TwoTenantSetup {
        system,
        victim_nic,
        antagonist_nic,
        ssd,
        victim_port,
        antagonist_port,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastcpu_kvs::client::{KvsClientHost, WorkloadConfig};
    use lastcpu_kvs::server::ServerState;
    use lastcpu_sim::SimDuration;

    #[test]
    fn both_tenants_come_up_and_serve() {
        let mut setup = build_two_tenant(SystemConfig::default(), true);
        let vp = setup.system.add_host(Box::new(KvsClientHost::new(
            setup.victim_port,
            WorkloadConfig {
                keys: 20,
                total_ops: 50,
                stats_prefix: "victim".into(),
                ..WorkloadConfig::default()
            },
        )));
        let ap = setup.system.add_host(Box::new(KvsClientHost::new(
            setup.antagonist_port,
            WorkloadConfig {
                keys: 20,
                total_ops: 50,
                read_fraction: 0.0,
                stats_prefix: "antagonist".into(),
                ..WorkloadConfig::default()
            },
        )));
        setup.system.power_on();
        setup.system.run_for(SimDuration::from_secs(3));
        let v: &KvsClientHost = setup.system.host_as(vp).unwrap();
        let a: &KvsClientHost = setup.system.host_as(ap).unwrap();
        assert!(v.is_done(), "victim incomplete: {}", v.ops_done());
        assert!(a.is_done(), "antagonist incomplete: {}", a.ops_done());
        let vnic: &SmartNic<KvsNicApp> = setup.system.device_as(setup.victim_nic).unwrap();
        assert_eq!(vnic.app().state(), ServerState::Ready);
        // Both tenants' data went through the same SSD.
        let ssd: &SmartSsd = setup.system.device_as(setup.ssd).unwrap();
        assert!(ssd.stats().requests >= 100);
    }
}
