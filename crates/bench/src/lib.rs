//! Experiment harness for the `lastcpu` reproduction.
//!
//! The paper (HotOS'21) contains no quantitative evaluation; DESIGN.md
//! derives an experiment per explicit claim. Each experiment is a binary in
//! `src/bin/` that builds the system(s), runs the workload in virtual time,
//! and prints the table/series EXPERIMENTS.md records:
//!
//! | Binary | Claim |
//! |---|---|
//! | `f2_init_sequence` | Figure 2 replay: the 7-step CPU-less init handshake |
//! | `e1_control_plane_scaling` | decentralized setup scales past a central kernel |
//! | `e2_kvs_dataplane` | the CPU-less data path beats the kernel-mediated one |
//! | `e3_isolation` | per-context isolation bounds a victim's tail latency |
//! | `e4_failures` | failure notification fan-out + reset recovery (§4) |
//! | `e5_iommu` | IOMMU translation overhead is bounded (IOTLB behaviour) |
//! | `e6_plane_separation` | separate control/data planes beat a conflated bus |
//! | `e7_discovery` | SSDP-style discovery at machine scale vs central directory |
//! | `e8_memctl` | a memory-controller device can own allocation policy |
//!
//! This library hosts the shared pieces: a column formatter and the small
//! driver devices the experiments need (setup clients, doorbell pingers,
//! control-storm generators, allocation churners, DMA probes).

pub mod drivers;
pub mod json;
pub mod obs;
pub mod table;
pub mod twotenant;

pub use json::Json;
pub use obs::ObsArgs;
pub use table::Table;
