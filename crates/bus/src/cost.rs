//! Bus latency model.
//!
//! §2.3: the management bus "must be able to process messages, so it can
//! update the management tables on behalf of applications", but it does not
//! need data-plane throughput. The defaults model a modest embedded
//! message processor on a shared control interconnect: ~200 ns propagation
//! per hop (device → bus → device), ~300 ns of message processing, and a
//! small per-byte cost. Experiment E6 sweeps these to locate the point where
//! an under-provisioned control plane would start to matter.

use lastcpu_sim::SimDuration;

/// Latency/bandwidth model for control-plane messages.
#[derive(Debug, Clone, Copy)]
pub struct BusCostModel {
    /// Wire propagation per hop (sender→bus or bus→receiver).
    pub hop_latency: SimDuration,
    /// Fixed processing time the bus spends per message.
    pub processing: SimDuration,
    /// Per-byte serialization cost in picoseconds.
    pub per_byte_ps: u64,
}

impl Default for BusCostModel {
    fn default() -> Self {
        BusCostModel {
            hop_latency: SimDuration::from_nanos(200),
            processing: SimDuration::from_nanos(300),
            per_byte_ps: 400, // 2.5 GB/s control link
        }
    }
}

impl BusCostModel {
    /// Latency for a unicast message of `bytes` bytes: two hops plus bus
    /// processing plus serialization.
    pub fn unicast(&self, bytes: usize) -> SimDuration {
        self.hop_latency.saturating_mul(2)
            + self.processing
            + SimDuration::from_nanos(bytes as u64 * self.per_byte_ps / 1000)
    }

    /// Latency until the `n`-th broadcast recipient (0-based) sees the
    /// message: the bus serializes the fan-out, so later recipients see it
    /// later. This serialization is what E7 measures at scale.
    pub fn broadcast_nth(&self, bytes: usize, n: usize) -> SimDuration {
        self.unicast(bytes) + self.processing.saturating_mul(n as u64)
    }

    /// Processing-only cost (bus-terminated messages such as heartbeats).
    pub fn terminal(&self, bytes: usize) -> SimDuration {
        self.hop_latency
            + self.processing
            + SimDuration::from_nanos(bytes as u64 * self.per_byte_ps / 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_has_two_hops() {
        let m = BusCostModel::default();
        let u = m.unicast(0);
        assert_eq!(
            u.as_nanos(),
            2 * m.hop_latency.as_nanos() + m.processing.as_nanos()
        );
    }

    #[test]
    fn bytes_add_cost() {
        let m = BusCostModel::default();
        assert!(m.unicast(1000) > m.unicast(10));
    }

    #[test]
    fn broadcast_recipients_are_serialized() {
        let m = BusCostModel::default();
        assert!(m.broadcast_nth(64, 10) > m.broadcast_nth(64, 0));
        assert_eq!(m.broadcast_nth(64, 0), m.unicast(64));
    }

    #[test]
    fn terminal_is_cheaper_than_unicast() {
        let m = BusCostModel::default();
        assert!(m.terminal(64) < m.unicast(64));
    }
}
