//! The bus protocol vocabulary.
//!
//! Every control-plane interaction in the CPU-less system is one of these
//! messages. The set is the concrete spelling of the paper's contribution
//! (1): the functions an OS must perform in a CPU-less system, as protocol.
//!
//! | Group | Messages | Paper reference |
//! |---|---|---|
//! | Lifecycle | `Hello`, `HelloAck`, `Heartbeat`, `Bye` | §2.2 "System Initialization" |
//! | Discovery | `Announce`, `Withdraw`, `Query`, `QueryHit` | §2.2 (SSDP analogy) |
//! | Sessions | `OpenRequest/Response`, `CloseRequest/Response` | §3 steps 3–4 |
//! | Memory | `MemAlloc`, `MemFree`, `Share`, + responses | §3 steps 5–7 |
//! | Privileged | `RegisterController`, `MapInstruction`, `MapComplete` | §2.2 "Address Translation" |
//! | Notify | `Doorbell`, `ErrorNotify`, `ResetRequest/Done`, `DeviceFailed` | §2.3, §4 |

use crate::ids::{ConnId, DeviceId, RequestId, ServiceId, Token};
use crate::wire::{frame_check, varint_len, WireError, WireReader, WireWriter};
use lastcpu_sim::CorrId;

/// Message destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dst {
    /// One device.
    Device(DeviceId),
    /// The bus itself (privileged requests, registration).
    Bus,
    /// All registered devices (discovery queries, failure notices).
    Broadcast,
}

/// Result status carried in responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success.
    Ok,
    /// Authorization failed.
    Denied,
    /// No such service/file/connection.
    NotFound,
    /// Resource exhausted (memory, contexts, queue slots).
    NoResources,
    /// Target is temporarily unable to serve.
    Busy,
    /// The request was malformed or violated protocol.
    BadRequest,
    /// The operation was attempted and failed.
    Failed,
}

impl Status {
    /// Whether this status reports success.
    pub fn is_ok(self) -> bool {
        self == Status::Ok
    }
}

/// Classes of resources a controller can own (§2.1: "physical memory, FPGA
/// blocks, GPU cores, storage space, etc.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Physical DRAM. Controller: the memory-controller device.
    Memory,
    /// Persistent storage.
    Storage,
    /// Network ports.
    Network,
    /// Programmable compute (FPGA regions, GPU cores).
    Compute,
}

/// Error classes for [`Payload::ErrorNotify`], following the paper's §4
/// error taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// A service context was reset; consumers must reconnect.
    ServiceReset,
    /// A resource failed fatally but the device survived (§4: "the device is
    /// responsible for handling the error itself ... send a message to any
    /// consumer using that resource").
    ResourceFailed,
    /// An entire device failed (broadcast by the bus).
    DeviceFailed,
    /// A recoverable translation fault was handled by the device.
    PageFault,
    /// Authentication/authorization failure.
    AuthFailure,
    /// Protocol violation.
    Protocol,
}

/// Mapping operation carried by a [`Payload::MapInstruction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp {
    /// Install translations.
    Map,
    /// Remove translations.
    Unmap,
}

/// A service descriptor, as announced to the bus directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDesc {
    /// Device-local service id.
    pub id: ServiceId,
    /// Hierarchical service name, e.g. `"file:/data/kv.db"`, `"memory"`,
    /// `"loader"`, `"auth"`, `"kvs:frontend"`.
    pub name: String,
    /// The resource class this service exposes.
    pub resource: ResourceKind,
}

/// The protocol payload.
///
/// `params`/`detail` blobs are opaque to the bus (the bus carries no policy
/// and inspects nothing it does not need); their schema belongs to the
/// endpoint services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    // --- Lifecycle ---------------------------------------------------
    /// Device announces itself after passing self-test.
    Hello {
        /// Human-readable device name, e.g. `"nic0"`.
        name: String,
        /// Device kind, e.g. `"smart-nic"`.
        kind: String,
    },
    /// Bus acknowledges registration and assigns the bus address.
    HelloAck {
        /// The address the device must use as `src` from now on.
        assigned: DeviceId,
    },
    /// Periodic liveness beacon.
    Heartbeat,
    /// Orderly departure.
    Bye,

    // --- Discovery ----------------------------------------------------
    /// Device publishes a service into the bus directory.
    Announce {
        /// The service being published.
        service: ServiceDesc,
    },
    /// Device withdraws a previously announced service.
    Withdraw {
        /// The device-local id of the withdrawn service.
        service: ServiceId,
    },
    /// Discovery query (broadcast or to the bus directory). `pattern` is an
    /// exact name or a prefix ending in `*`.
    Query {
        /// Name pattern to match.
        pattern: String,
    },
    /// Discovery answer.
    QueryHit {
        /// Device offering the service.
        device: DeviceId,
        /// Matching service descriptor.
        service: ServiceDesc,
    },

    // --- Service sessions ----------------------------------------------
    /// Open a connection (isolated context) to a service (§3 step 3).
    OpenRequest {
        /// Target service on the destination device.
        service: ServiceId,
        /// Authorization token.
        token: Token,
        /// Service-specific parameters.
        params: Vec<u8>,
    },
    /// Connection response (§3 step 4), including how much shared memory the
    /// service requires for its queues.
    OpenResponse {
        /// Outcome.
        status: Status,
        /// Connection id (valid when `status` is `Ok`).
        conn: ConnId,
        /// Shared-memory bytes the service needs for this connection.
        shm_bytes: u64,
        /// Service-specific response parameters.
        params: Vec<u8>,
    },
    /// Close a connection.
    CloseRequest {
        /// Connection to close.
        conn: ConnId,
    },
    /// Close acknowledgement.
    CloseResponse {
        /// Outcome.
        status: Status,
    },

    // --- Memory (device -> memory controller) ---------------------------
    /// Allocate physical memory and map it at `va` in the requester's
    /// address space (§3 step 5).
    MemAlloc {
        /// Address space the mapping belongs to.
        pasid: u32,
        /// Requested virtual base (page-aligned).
        va: u64,
        /// Bytes to allocate (rounded up to pages).
        bytes: u64,
        /// Permission bits (1=R, 2=W, 4=X).
        perms: u8,
    },
    /// Allocation response carrying an opaque region handle.
    MemAllocResponse {
        /// Outcome.
        status: Status,
        /// Region handle for later `Share`/`MemFree` (valid on `Ok`).
        region: u64,
    },
    /// Release a region.
    MemFree {
        /// The region to release.
        region: u64,
    },
    /// Free acknowledgement.
    MemFreeResponse {
        /// Outcome.
        status: Status,
    },
    /// Ask the memory controller to extend an existing region's mapping to
    /// another device (§3 step 7: "grant access to the shared memory to the
    /// SSD"). Only the region's owner may share it.
    Share {
        /// Region to share.
        region: u64,
        /// Device that should gain access.
        target: DeviceId,
        /// Address space on the target side.
        pasid: u32,
        /// Virtual base in that address space.
        va: u64,
        /// Permission bits granted to the target.
        perms: u8,
    },
    /// Share acknowledgement.
    ShareResponse {
        /// Outcome.
        status: Status,
    },

    // --- Privileged (resource controller <-> bus) -----------------------
    /// A device claims controllership of a resource class. The bus accepts
    /// the first claim per class and denies the rest.
    RegisterController {
        /// Resource class being claimed.
        resource: ResourceKind,
    },
    /// Generic acknowledgement for bus-directed requests.
    BusAck {
        /// Outcome.
        status: Status,
    },
    /// Controller instructs the bus to program a device's IOMMU. This is
    /// the **only** message that carries physical addresses, and the bus
    /// accepts it **only** from the registered controller of `resource`
    /// (§2.2: "the system bus updates the page tables of a device only when
    /// it is instructed to do so by the controller of that particular
    /// resource").
    MapInstruction {
        /// Resource class authorizing this mapping.
        resource: ResourceKind,
        /// Map or unmap.
        op: MapOp,
        /// Device whose IOMMU is programmed.
        device: DeviceId,
        /// Address space on that device.
        pasid: u32,
        /// Virtual base (page-aligned).
        va: u64,
        /// Physical base (page-aligned; ignored for unmap).
        pa: u64,
        /// Number of 4 KiB pages.
        pages: u64,
        /// Permission bits (ignored for unmap).
        perms: u8,
    },
    /// Bus tells a device that a mapping in its IOMMU changed (§3 step 6
    /// completion signal).
    MapComplete {
        /// Outcome.
        status: Status,
        /// Virtual base of the affected range.
        va: u64,
        /// Pages affected.
        pages: u64,
    },

    // --- Notifications & errors -----------------------------------------
    /// A doorbell: "data ready / look at the queue" (§2.3 "Notifications").
    Doorbell {
        /// Connection the doorbell belongs to.
        conn: ConnId,
        /// Implementation-defined value (e.g. queue index).
        value: u64,
    },
    /// An error notification between devices (§4 "Error Handling").
    ErrorNotify {
        /// Error class.
        code: ErrorCode,
        /// Affected connection (0 when not applicable).
        conn: ConnId,
        /// Human-readable detail.
        detail: String,
    },
    /// Bus asks a device to reset (after failure detection).
    ResetRequest,
    /// Device reports reset completion.
    ResetDone,
    /// Bus broadcast: a device died; consumers of its resources must
    /// recover (§4: "the resource bus must send messages to all other
    /// devices in the system that may be using a resource of the failed
    /// device").
    DeviceFailed {
        /// The dead device.
        device: DeviceId,
    },
    /// Opaque application data carried over the *control* plane.
    ///
    /// The CPU-less design never uses this — bulk data belongs in shared
    /// memory (§2.2/§2.3). It exists for the centralized baseline, where a
    /// traditional kernel moves packets and I/O buffers through itself, and
    /// for the conflated-planes experiment that measures why that is a bad
    /// idea.
    AppData {
        /// Connection/context the data belongs to (0 when N/A).
        conn: ConnId,
        /// The bytes.
        data: Vec<u8>,
    },
}

/// A routed message: source, destination, request id, causal correlation
/// id, payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sender's bus address.
    pub src: DeviceId,
    /// Destination.
    pub dst: Dst,
    /// Request id; responses echo the request's id.
    pub req: RequestId,
    /// Causal correlation id: the activity this message belongs to.
    ///
    /// Allocated at the root of an activity (device start, host timer) and
    /// propagated through every message, reply, broadcast, and IOMMU
    /// programming it causes, so a trace filtered by one `CorrId` replays an
    /// end-to-end operation (e.g. nic → bus → ssd → iommu) as one span.
    pub corr: CorrId,
    /// The message.
    pub payload: Payload,
}

impl Envelope {
    /// Encoded size in bytes (used for cost accounting).
    ///
    /// Alias of [`encoded_len`](Self::encoded_len); kept for callers that
    /// predate the analytic size computation.
    pub fn wire_len(&self) -> usize {
        self.encoded_len()
    }

    /// Encoded size in bytes, computed **without** materializing the frame.
    ///
    /// The routing hot path only needs the wire size (for serialization-cost
    /// and link-occupancy accounting); encoding every message just to call
    /// `.len()` on the buffer was one allocation + full payload copy per
    /// routed message. This mirrors [`encode`](Self::encode) field for
    /// field — the `encoded_len_matches_encode_for_all_variants` regression
    /// test locks the two together.
    pub fn encoded_len(&self) -> usize {
        let dst = match self.dst {
            Dst::Device(_) => 1 + 4,
            Dst::Bus | Dst::Broadcast => 1,
        };
        // src + dst + req + corr + payload + 4-byte frame check sequence.
        4 + dst + 8 + 8 + payload_encoded_len(&self.payload) + 4
    }

    /// Encodes to the wire format. The frame ends with a 4-byte frame check
    /// sequence over the body (see [`frame_check`]); corruption in flight is
    /// detected at decode and the frame dropped rather than misparsed.
    pub fn encode(&self) -> Vec<u8> {
        let _prof = lastcpu_sim::profile::span("bus.encode");
        let mut w = WireWriter::new();
        w.u32(self.src.0);
        match self.dst {
            Dst::Device(d) => {
                w.u8(0);
                w.u32(d.0);
            }
            Dst::Bus => w.u8(1),
            Dst::Broadcast => w.u8(2),
        }
        w.u64(self.req.0);
        w.u64(self.corr.0);
        encode_payload(&mut w, &self.payload);
        let mut bytes = w.finish();
        let fcs = frame_check(&bytes);
        bytes.extend_from_slice(&fcs.to_le_bytes());
        bytes
    }

    /// Decodes from the wire format, requiring the buffer to hold exactly
    /// one message and its frame check sequence.
    pub fn decode(buf: &[u8]) -> Result<Envelope, WireError> {
        let _prof = lastcpu_sim::profile::span("bus.decode");
        let Some(body_len) = buf.len().checked_sub(4) else {
            return Err(WireError::Truncated);
        };
        let (body, fcs) = buf.split_at(body_len);
        let expected = u32::from_le_bytes(fcs.try_into().expect("len 4"));
        let actual = frame_check(body);
        if expected != actual {
            return Err(WireError::ChecksumMismatch { expected, actual });
        }
        let mut r = WireReader::new(body);
        let src = DeviceId(r.u32()?);
        let dst = match r.u8()? {
            0 => Dst::Device(DeviceId(r.u32()?)),
            1 => Dst::Bus,
            2 => Dst::Broadcast,
            v => {
                return Err(WireError::BadDiscriminant {
                    what: "Dst",
                    value: v as u64,
                })
            }
        };
        let req = RequestId(r.u64()?);
        let corr = CorrId(r.u64()?);
        let payload = decode_payload(&mut r)?;
        r.expect_end()?;
        Ok(Envelope {
            src,
            dst,
            req,
            corr,
            payload,
        })
    }
}

fn encode_status(w: &mut WireWriter, s: Status) {
    w.u8(match s {
        Status::Ok => 0,
        Status::Denied => 1,
        Status::NotFound => 2,
        Status::NoResources => 3,
        Status::Busy => 4,
        Status::BadRequest => 5,
        Status::Failed => 6,
    });
}

fn decode_status(r: &mut WireReader<'_>) -> Result<Status, WireError> {
    Ok(match r.u8()? {
        0 => Status::Ok,
        1 => Status::Denied,
        2 => Status::NotFound,
        3 => Status::NoResources,
        4 => Status::Busy,
        5 => Status::BadRequest,
        6 => Status::Failed,
        v => {
            return Err(WireError::BadDiscriminant {
                what: "Status",
                value: v as u64,
            })
        }
    })
}

fn encode_resource(w: &mut WireWriter, k: ResourceKind) {
    w.u8(match k {
        ResourceKind::Memory => 0,
        ResourceKind::Storage => 1,
        ResourceKind::Network => 2,
        ResourceKind::Compute => 3,
    });
}

fn decode_resource(r: &mut WireReader<'_>) -> Result<ResourceKind, WireError> {
    Ok(match r.u8()? {
        0 => ResourceKind::Memory,
        1 => ResourceKind::Storage,
        2 => ResourceKind::Network,
        3 => ResourceKind::Compute,
        v => {
            return Err(WireError::BadDiscriminant {
                what: "ResourceKind",
                value: v as u64,
            })
        }
    })
}

fn encode_error_code(w: &mut WireWriter, c: ErrorCode) {
    w.u8(match c {
        ErrorCode::ServiceReset => 0,
        ErrorCode::ResourceFailed => 1,
        ErrorCode::DeviceFailed => 2,
        ErrorCode::PageFault => 3,
        ErrorCode::AuthFailure => 4,
        ErrorCode::Protocol => 5,
    });
}

fn decode_error_code(r: &mut WireReader<'_>) -> Result<ErrorCode, WireError> {
    Ok(match r.u8()? {
        0 => ErrorCode::ServiceReset,
        1 => ErrorCode::ResourceFailed,
        2 => ErrorCode::DeviceFailed,
        3 => ErrorCode::PageFault,
        4 => ErrorCode::AuthFailure,
        5 => ErrorCode::Protocol,
        v => {
            return Err(WireError::BadDiscriminant {
                what: "ErrorCode",
                value: v as u64,
            })
        }
    })
}

fn encode_service_desc(w: &mut WireWriter, s: &ServiceDesc) {
    w.u16(s.id.0);
    w.string(&s.name);
    encode_resource(w, s.resource);
}

fn decode_service_desc(r: &mut WireReader<'_>) -> Result<ServiceDesc, WireError> {
    Ok(ServiceDesc {
        id: ServiceId(r.u16()?),
        name: r.string()?,
        resource: decode_resource(r)?,
    })
}

fn encode_payload(w: &mut WireWriter, p: &Payload) {
    match p {
        Payload::Hello { name, kind } => {
            w.u8(0);
            w.string(name);
            w.string(kind);
        }
        Payload::HelloAck { assigned } => {
            w.u8(1);
            w.u32(assigned.0);
        }
        Payload::Heartbeat => w.u8(2),
        Payload::Bye => w.u8(3),
        Payload::Announce { service } => {
            w.u8(4);
            encode_service_desc(w, service);
        }
        Payload::Withdraw { service } => {
            w.u8(5);
            w.u16(service.0);
        }
        Payload::Query { pattern } => {
            w.u8(6);
            w.string(pattern);
        }
        Payload::QueryHit { device, service } => {
            w.u8(7);
            w.u32(device.0);
            encode_service_desc(w, service);
        }
        Payload::OpenRequest {
            service,
            token,
            params,
        } => {
            w.u8(8);
            w.u16(service.0);
            w.u128(token.0);
            w.bytes(params);
        }
        Payload::OpenResponse {
            status,
            conn,
            shm_bytes,
            params,
        } => {
            w.u8(9);
            encode_status(w, *status);
            w.u64(conn.0);
            w.u64(*shm_bytes);
            w.bytes(params);
        }
        Payload::CloseRequest { conn } => {
            w.u8(10);
            w.u64(conn.0);
        }
        Payload::CloseResponse { status } => {
            w.u8(11);
            encode_status(w, *status);
        }
        Payload::MemAlloc {
            pasid,
            va,
            bytes,
            perms,
        } => {
            w.u8(12);
            w.u32(*pasid);
            w.u64(*va);
            w.u64(*bytes);
            w.u8(*perms);
        }
        Payload::MemAllocResponse { status, region } => {
            w.u8(13);
            encode_status(w, *status);
            w.u64(*region);
        }
        Payload::MemFree { region } => {
            w.u8(14);
            w.u64(*region);
        }
        Payload::MemFreeResponse { status } => {
            w.u8(15);
            encode_status(w, *status);
        }
        Payload::Share {
            region,
            target,
            pasid,
            va,
            perms,
        } => {
            w.u8(16);
            w.u64(*region);
            w.u32(target.0);
            w.u32(*pasid);
            w.u64(*va);
            w.u8(*perms);
        }
        Payload::ShareResponse { status } => {
            w.u8(17);
            encode_status(w, *status);
        }
        Payload::RegisterController { resource } => {
            w.u8(18);
            encode_resource(w, *resource);
        }
        Payload::BusAck { status } => {
            w.u8(19);
            encode_status(w, *status);
        }
        Payload::MapInstruction {
            resource,
            op,
            device,
            pasid,
            va,
            pa,
            pages,
            perms,
        } => {
            w.u8(20);
            encode_resource(w, *resource);
            w.u8(match op {
                MapOp::Map => 0,
                MapOp::Unmap => 1,
            });
            w.u32(device.0);
            w.u32(*pasid);
            w.u64(*va);
            w.u64(*pa);
            w.u64(*pages);
            w.u8(*perms);
        }
        Payload::MapComplete { status, va, pages } => {
            w.u8(21);
            encode_status(w, *status);
            w.u64(*va);
            w.u64(*pages);
        }
        Payload::Doorbell { conn, value } => {
            w.u8(22);
            w.u64(conn.0);
            w.u64(*value);
        }
        Payload::ErrorNotify { code, conn, detail } => {
            w.u8(23);
            encode_error_code(w, *code);
            w.u64(conn.0);
            w.string(detail);
        }
        Payload::ResetRequest => w.u8(24),
        Payload::ResetDone => w.u8(25),
        Payload::DeviceFailed { device } => {
            w.u8(26);
            w.u32(device.0);
        }
        Payload::AppData { conn, data } => {
            w.u8(27);
            w.u64(conn.0);
            w.bytes(data);
        }
    }
}

/// Size of a length-prefixed byte field: varint length prefix + the bytes.
fn field_len(n: usize) -> usize {
    varint_len(n as u64) + n
}

/// Encoded size of one payload, mirroring [`encode_payload`] field for
/// field. Every arm is `1` (the tag byte) plus the fixed widths of its
/// fields; only strings and byte blobs are data-dependent.
fn payload_encoded_len(p: &Payload) -> usize {
    match p {
        Payload::Hello { name, kind } => 1 + field_len(name.len()) + field_len(kind.len()),
        Payload::HelloAck { .. } => 1 + 4,
        Payload::Heartbeat | Payload::Bye | Payload::ResetRequest | Payload::ResetDone => 1,
        Payload::Announce { service } => 1 + service_desc_len(service),
        Payload::Withdraw { .. } => 1 + 2,
        Payload::Query { pattern } => 1 + field_len(pattern.len()),
        Payload::QueryHit { service, .. } => 1 + 4 + service_desc_len(service),
        Payload::OpenRequest { params, .. } => 1 + 2 + 16 + field_len(params.len()),
        Payload::OpenResponse { params, .. } => 1 + 1 + 8 + 8 + field_len(params.len()),
        Payload::CloseRequest { .. } => 1 + 8,
        Payload::CloseResponse { .. } => 1 + 1,
        Payload::MemAlloc { .. } => 1 + 4 + 8 + 8 + 1,
        Payload::MemAllocResponse { .. } => 1 + 1 + 8,
        Payload::MemFree { .. } => 1 + 8,
        Payload::MemFreeResponse { .. } => 1 + 1,
        Payload::Share { .. } => 1 + 8 + 4 + 4 + 8 + 1,
        Payload::ShareResponse { .. } => 1 + 1,
        Payload::RegisterController { .. } => 1 + 1,
        Payload::BusAck { .. } => 1 + 1,
        Payload::MapInstruction { .. } => 1 + 1 + 1 + 4 + 4 + 8 + 8 + 8 + 1,
        Payload::MapComplete { .. } => 1 + 1 + 8 + 8,
        Payload::Doorbell { .. } => 1 + 8 + 8,
        Payload::ErrorNotify { detail, .. } => 1 + 1 + 8 + field_len(detail.len()),
        Payload::DeviceFailed { .. } => 1 + 4,
        Payload::AppData { data, .. } => 1 + 8 + field_len(data.len()),
    }
}

/// Encoded size of a [`ServiceDesc`], mirroring [`encode_service_desc`].
fn service_desc_len(s: &ServiceDesc) -> usize {
    2 + field_len(s.name.len()) + 1
}

fn decode_payload(r: &mut WireReader<'_>) -> Result<Payload, WireError> {
    Ok(match r.u8()? {
        0 => Payload::Hello {
            name: r.string()?,
            kind: r.string()?,
        },
        1 => Payload::HelloAck {
            assigned: DeviceId(r.u32()?),
        },
        2 => Payload::Heartbeat,
        3 => Payload::Bye,
        4 => Payload::Announce {
            service: decode_service_desc(r)?,
        },
        5 => Payload::Withdraw {
            service: ServiceId(r.u16()?),
        },
        6 => Payload::Query {
            pattern: r.string()?,
        },
        7 => Payload::QueryHit {
            device: DeviceId(r.u32()?),
            service: decode_service_desc(r)?,
        },
        8 => Payload::OpenRequest {
            service: ServiceId(r.u16()?),
            token: Token(r.u128()?),
            params: r.bytes()?,
        },
        9 => Payload::OpenResponse {
            status: decode_status(r)?,
            conn: ConnId(r.u64()?),
            shm_bytes: r.u64()?,
            params: r.bytes()?,
        },
        10 => Payload::CloseRequest {
            conn: ConnId(r.u64()?),
        },
        11 => Payload::CloseResponse {
            status: decode_status(r)?,
        },
        12 => Payload::MemAlloc {
            pasid: r.u32()?,
            va: r.u64()?,
            bytes: r.u64()?,
            perms: r.u8()?,
        },
        13 => Payload::MemAllocResponse {
            status: decode_status(r)?,
            region: r.u64()?,
        },
        14 => Payload::MemFree { region: r.u64()? },
        15 => Payload::MemFreeResponse {
            status: decode_status(r)?,
        },
        16 => Payload::Share {
            region: r.u64()?,
            target: DeviceId(r.u32()?),
            pasid: r.u32()?,
            va: r.u64()?,
            perms: r.u8()?,
        },
        17 => Payload::ShareResponse {
            status: decode_status(r)?,
        },
        18 => Payload::RegisterController {
            resource: decode_resource(r)?,
        },
        19 => Payload::BusAck {
            status: decode_status(r)?,
        },
        20 => Payload::MapInstruction {
            resource: decode_resource(r)?,
            op: match r.u8()? {
                0 => MapOp::Map,
                1 => MapOp::Unmap,
                v => {
                    return Err(WireError::BadDiscriminant {
                        what: "MapOp",
                        value: v as u64,
                    })
                }
            },
            device: DeviceId(r.u32()?),
            pasid: r.u32()?,
            va: r.u64()?,
            pa: r.u64()?,
            pages: r.u64()?,
            perms: r.u8()?,
        },
        21 => Payload::MapComplete {
            status: decode_status(r)?,
            va: r.u64()?,
            pages: r.u64()?,
        },
        22 => Payload::Doorbell {
            conn: ConnId(r.u64()?),
            value: r.u64()?,
        },
        23 => Payload::ErrorNotify {
            code: decode_error_code(r)?,
            conn: ConnId(r.u64()?),
            detail: r.string()?,
        },
        24 => Payload::ResetRequest,
        25 => Payload::ResetDone,
        26 => Payload::DeviceFailed {
            device: DeviceId(r.u32()?),
        },
        27 => Payload::AppData {
            conn: ConnId(r.u64()?),
            data: r.bytes()?,
        },
        v => {
            return Err(WireError::BadDiscriminant {
                what: "Payload",
                value: v as u64,
            })
        }
    })
}

impl Payload {
    /// Whether this payload is a reply/acknowledgement kind — a message
    /// that echoes a request's id and may complete an RPC tracked by the
    /// retry layer (`retry::RpcTracker`).
    pub fn is_reply(&self) -> bool {
        matches!(
            self,
            Payload::HelloAck { .. }
                | Payload::OpenResponse { .. }
                | Payload::CloseResponse { .. }
                | Payload::MemAllocResponse { .. }
                | Payload::MemFreeResponse { .. }
                | Payload::ShareResponse { .. }
                | Payload::BusAck { .. }
                | Payload::MapComplete { .. }
                | Payload::ResetDone
        )
    }

    /// Short tag for tracing.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Payload::Hello { .. } => "Hello",
            Payload::HelloAck { .. } => "HelloAck",
            Payload::Heartbeat => "Heartbeat",
            Payload::Bye => "Bye",
            Payload::Announce { .. } => "Announce",
            Payload::Withdraw { .. } => "Withdraw",
            Payload::Query { .. } => "Query",
            Payload::QueryHit { .. } => "QueryHit",
            Payload::OpenRequest { .. } => "OpenRequest",
            Payload::OpenResponse { .. } => "OpenResponse",
            Payload::CloseRequest { .. } => "CloseRequest",
            Payload::CloseResponse { .. } => "CloseResponse",
            Payload::MemAlloc { .. } => "MemAlloc",
            Payload::MemAllocResponse { .. } => "MemAllocResponse",
            Payload::MemFree { .. } => "MemFree",
            Payload::MemFreeResponse { .. } => "MemFreeResponse",
            Payload::Share { .. } => "Share",
            Payload::ShareResponse { .. } => "ShareResponse",
            Payload::RegisterController { .. } => "RegisterController",
            Payload::BusAck { .. } => "BusAck",
            Payload::MapInstruction { .. } => "MapInstruction",
            Payload::MapComplete { .. } => "MapComplete",
            Payload::Doorbell { .. } => "Doorbell",
            Payload::ErrorNotify { .. } => "ErrorNotify",
            Payload::ResetRequest => "ResetRequest",
            Payload::ResetDone => "ResetDone",
            Payload::DeviceFailed { .. } => "DeviceFailed",
            Payload::AppData { .. } => "AppData",
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The privileged bus parser must never panic on untrusted bytes,
        /// and anything it accepts must re-encode to the same bytes
        /// (canonical encoding — no malleability).
        #[test]
        fn prop_decode_never_panics_and_is_canonical(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            if let Ok(env) = Envelope::decode(&data) {
                prop_assert_eq!(env.encode(), data);
            }
        }

        /// Truncating any valid message at any point is rejected.
        #[test]
        fn prop_truncation_always_detected(cut_ratio in 0.0f64..1.0, seed in any::<u64>()) {
            let env = Envelope {
                src: DeviceId(seed as u32),
                dst: Dst::Device(DeviceId((seed >> 32) as u32)),
                req: RequestId(seed),
                corr: CorrId::NONE,
                payload: Payload::ErrorNotify {
                    code: ErrorCode::Protocol,
                    conn: ConnId(seed ^ 0xFFFF),
                    detail: format!("detail-{seed}"),
                },
            };
            let bytes = env.encode();
            let cut = ((bytes.len() as f64) * cut_ratio) as usize;
            if cut < bytes.len() {
                prop_assert!(Envelope::decode(&bytes[..cut]).is_err());
            }
        }

        /// Bit flips are either rejected or decode to a *different* message
        /// that still re-encodes canonically — never to a corrupted clone.
        #[test]
        fn prop_bitflip_safety(flip_byte in 0usize..64, flip_bit in 0u8..8) {
            let env = Envelope {
                src: DeviceId(3),
                dst: Dst::Bus,
                req: RequestId(9),
                corr: CorrId::NONE,
                payload: Payload::MapInstruction {
                    resource: ResourceKind::Memory,
                    op: MapOp::Map,
                    device: DeviceId(4),
                    pasid: 7,
                    va: 0x10000,
                    pa: 0x200000,
                    pages: 16,
                    perms: 3,
                },
            };
            let mut bytes = env.encode();
            let i = flip_byte % bytes.len();
            bytes[i] ^= 1 << flip_bit;
            if let Ok(decoded) = Envelope::decode(&bytes) {
                prop_assert_eq!(decoded.encode(), bytes);
            }
        }
    }
}

/// Stable tag for [`ResourceKind`] in snapshot sections (same numbering as
/// the wire codec).
pub(crate) fn resource_kind_tag(k: ResourceKind) -> u8 {
    match k {
        ResourceKind::Memory => 0,
        ResourceKind::Storage => 1,
        ResourceKind::Network => 2,
        ResourceKind::Compute => 3,
    }
}

/// Inverse of [`resource_kind_tag`].
pub(crate) fn resource_kind_from_tag(t: u8) -> Option<ResourceKind> {
    Some(match t {
        0 => ResourceKind::Memory,
        1 => ResourceKind::Storage,
        2 => ResourceKind::Network,
        3 => ResourceKind::Compute,
        _ => return None,
    })
}

impl ServiceDesc {
    /// Serializes into a snapshot section.
    pub fn snap_encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u16(self.id.0);
        w.put_str(&self.name);
        w.put_u8(resource_kind_tag(self.resource));
    }

    /// Inverse of [`ServiceDesc::snap_encode`].
    pub fn snap_decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(ServiceDesc {
            id: ServiceId(r.u16()?),
            name: r.str()?,
            resource: {
                let t = r.u8()?;
                resource_kind_from_tag(t)
                    .ok_or_else(|| r.corrupt(format!("bad ResourceKind tag {t}")))?
            },
        })
    }
}

impl Status {
    /// Serializes into a snapshot section (same tags as the wire codec).
    pub fn snap_encode(self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u8(match self {
            Status::Ok => 0,
            Status::Denied => 1,
            Status::NotFound => 2,
            Status::NoResources => 3,
            Status::Busy => 4,
            Status::BadRequest => 5,
            Status::Failed => 6,
        });
    }

    /// Inverse of [`Status::snap_encode`].
    pub fn snap_decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(match r.u8()? {
            0 => Status::Ok,
            1 => Status::Denied,
            2 => Status::NotFound,
            3 => Status::NoResources,
            4 => Status::Busy,
            5 => Status::BadRequest,
            6 => Status::Failed,
            t => return Err(r.corrupt(format!("bad Status tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(p: Payload) {
        let env = Envelope {
            src: DeviceId(7),
            dst: Dst::Device(DeviceId(9)),
            req: RequestId(42),
            corr: CorrId::NONE,
            payload: p,
        };
        let bytes = env.encode();
        let back = Envelope::decode(&bytes).expect("decode");
        assert_eq!(back, env);
    }

    /// One instance of every payload variant (kept exhaustive by the
    /// `match` in `payload_encoded_len`: adding a variant without extending
    /// this list will fail the round-trip or the encoded-len regression).
    fn all_variants() -> Vec<Payload> {
        let svc = ServiceDesc {
            id: ServiceId(3),
            name: "file:/data/kv.db".into(),
            resource: ResourceKind::Storage,
        };
        let variants = vec![
            Payload::Hello {
                name: "nic0".into(),
                kind: "smart-nic".into(),
            },
            Payload::HelloAck {
                assigned: DeviceId(5),
            },
            Payload::Heartbeat,
            Payload::Bye,
            Payload::Announce {
                service: svc.clone(),
            },
            Payload::Withdraw {
                service: ServiceId(3),
            },
            Payload::Query {
                pattern: "file:*".into(),
            },
            Payload::QueryHit {
                device: DeviceId(2),
                service: svc,
            },
            Payload::OpenRequest {
                service: ServiceId(1),
                token: Token(0xDEAD),
                params: vec![1, 2, 3],
            },
            Payload::OpenResponse {
                status: Status::Ok,
                conn: ConnId(77),
                shm_bytes: 65536,
                params: vec![],
            },
            Payload::CloseRequest { conn: ConnId(77) },
            Payload::CloseResponse {
                status: Status::NotFound,
            },
            Payload::MemAlloc {
                pasid: 4,
                va: 0x10000,
                bytes: 4096,
                perms: 3,
            },
            Payload::MemAllocResponse {
                status: Status::Ok,
                region: 12,
            },
            Payload::MemFree { region: 12 },
            Payload::MemFreeResponse { status: Status::Ok },
            Payload::Share {
                region: 12,
                target: DeviceId(3),
                pasid: 4,
                va: 0x10000,
                perms: 3,
            },
            Payload::ShareResponse {
                status: Status::Denied,
            },
            Payload::RegisterController {
                resource: ResourceKind::Memory,
            },
            Payload::BusAck { status: Status::Ok },
            Payload::MapInstruction {
                resource: ResourceKind::Memory,
                op: MapOp::Map,
                device: DeviceId(3),
                pasid: 4,
                va: 0x10000,
                pa: 0x200000,
                pages: 16,
                perms: 3,
            },
            Payload::MapComplete {
                status: Status::Ok,
                va: 0x10000,
                pages: 16,
            },
            Payload::Doorbell {
                conn: ConnId(77),
                value: 1,
            },
            Payload::ErrorNotify {
                code: ErrorCode::ResourceFailed,
                conn: ConnId(77),
                detail: "flash block died".into(),
            },
            Payload::ResetRequest,
            Payload::ResetDone,
            Payload::DeviceFailed {
                device: DeviceId(2),
            },
            Payload::AppData {
                conn: ConnId(3),
                data: vec![0xAB; 100],
            },
        ];
        variants
    }

    #[test]
    fn all_payload_variants_round_trip() {
        for v in all_variants() {
            round_trip(v);
        }
    }

    /// Regression lock between the analytic `encoded_len` and the real
    /// encoder: they must agree for every payload variant, every `Dst`
    /// shape, and data-dependent fields long enough to need multi-byte
    /// varint length prefixes.
    #[test]
    fn encoded_len_matches_encode_for_all_variants() {
        let mut payloads = all_variants();
        // Field lengths straddling the 1-byte/2-byte varint boundary (128).
        for n in [0usize, 1, 127, 128, 300, 5000] {
            payloads.push(Payload::AppData {
                conn: ConnId(1),
                data: vec![0x5A; n],
            });
            payloads.push(Payload::Query {
                pattern: "q".repeat(n),
            });
            payloads.push(Payload::ErrorNotify {
                code: ErrorCode::Protocol,
                conn: ConnId(0),
                detail: "d".repeat(n),
            });
        }
        for p in payloads {
            for dst in [Dst::Device(DeviceId(9)), Dst::Bus, Dst::Broadcast] {
                let env = Envelope {
                    src: DeviceId(7),
                    dst,
                    req: RequestId(42),
                    corr: CorrId(3),
                    payload: p.clone(),
                };
                assert_eq!(
                    env.encoded_len(),
                    env.encode().len(),
                    "encoded_len mismatch for {} to {dst:?}",
                    env.payload.kind_name()
                );
            }
        }
    }

    #[test]
    fn all_dsts_round_trip() {
        for dst in [Dst::Device(DeviceId(3)), Dst::Bus, Dst::Broadcast] {
            let env = Envelope {
                src: DeviceId(1),
                dst,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::Heartbeat,
            };
            assert_eq!(Envelope::decode(&env.encode()).unwrap(), env);
        }
    }

    /// Recomputes the trailing frame check sequence after the test mutated
    /// the body, so the mutation under test (not the FCS) trips the decoder.
    fn reframe(mut bytes: Vec<u8>) -> Vec<u8> {
        let body_len = bytes.len() - 4;
        let fcs = crate::wire::frame_check(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&fcs.to_le_bytes());
        bytes
    }

    #[test]
    fn bad_payload_tag_rejected() {
        let env = Envelope {
            src: DeviceId(1),
            dst: Dst::Bus,
            req: RequestId(0),
            corr: CorrId::NONE,
            payload: Payload::Heartbeat,
        };
        let mut bytes = env.encode();
        let tag_at = bytes.len() - 5; // last body byte: the payload tag
        bytes[tag_at] = 200;
        let bytes = reframe(bytes);
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(WireError::BadDiscriminant {
                what: "Payload",
                ..
            })
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let env = Envelope {
            src: DeviceId(1),
            dst: Dst::Bus,
            req: RequestId(0),
            corr: CorrId::NONE,
            payload: Payload::Heartbeat,
        };
        let mut bytes = env.encode();
        let fcs_at = bytes.len() - 4;
        bytes.insert(fcs_at, 0); // garbage between payload and FCS
        let bytes = reframe(bytes);
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn unframed_corruption_trips_the_frame_check() {
        let env = Envelope {
            src: DeviceId(1),
            dst: Dst::Bus,
            req: RequestId(0),
            corr: CorrId::NONE,
            payload: Payload::Heartbeat,
        };
        let mut bytes = env.encode();
        bytes.push(0); // appended garbage without re-framing
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    /// Regression: before the frame check existed, flipping one bit of an
    /// encoded `Heartbeat` could alias it into a *valid* `Bye`, silently
    /// deregistering the device (found by the E4 fault-injection matrix).
    /// With the FCS, every single-bit flip must be rejected, never
    /// misparsed.
    #[test]
    fn single_bit_corruption_never_aliases() {
        let env = Envelope {
            src: DeviceId(3),
            dst: Dst::Bus,
            req: RequestId(7),
            corr: CorrId(9),
            payload: Payload::Heartbeat,
        };
        let bytes = env.encode();
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert!(
                Envelope::decode(&flipped).is_err(),
                "bit flip {bit} decoded as a valid message"
            );
        }
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let env = Envelope {
            src: DeviceId(7),
            dst: Dst::Device(DeviceId(9)),
            req: RequestId(42),
            corr: CorrId::NONE,
            payload: Payload::ErrorNotify {
                code: ErrorCode::Protocol,
                conn: ConnId(1),
                detail: "detail string".into(),
            },
        };
        let bytes = env.encode();
        for cut in 0..bytes.len() {
            assert!(Envelope::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wire_len_matches_encoding() {
        let env = Envelope {
            src: DeviceId(1),
            dst: Dst::Broadcast,
            req: RequestId(9),
            corr: CorrId::NONE,
            payload: Payload::Query {
                pattern: "memory".into(),
            },
        };
        assert_eq!(env.wire_len(), env.encode().len());
    }

    #[test]
    fn status_helpers() {
        assert!(Status::Ok.is_ok());
        assert!(!Status::Failed.is_ok());
    }

    #[test]
    fn kind_name_is_stable() {
        assert_eq!(Payload::Heartbeat.kind_name(), "Heartbeat");
        assert_eq!(
            Payload::Query {
                pattern: String::new()
            }
            .kind_name(),
            "Query"
        );
    }
}
