//! Privileged-operation audit and security policy for the bus.
//!
//! The paper's central security claim (§2.2) is that *only the management
//! bus programs IOMMU page tables, and only on instruction from the
//! registered controller of the resource being mapped*. The E11 security
//! evaluation attacks that claim; this module is the bus side of the
//! evidence it needs: an append-only record of every privileged-operation
//! verdict ([`BusAudit`]) so a denied confused-deputy request is *provably*
//! denied, plus an opt-in [`SecurityPolicy`] covering the two attack
//! classes the baseline protocol is silent about (service shadowing and
//! control-plane floods).
//!
//! Like the IOMMU's `DmaAudit` (in `lastcpu-iommu`), the audit is
//! opt-in ([`crate::SystemBus::enable_audit`]) and deterministic: records
//! are appended in message-handling order, a pure function of the seed.
//!
//! # Examples
//!
//! Auditing a confused-deputy `MapInstruction` from a non-controller:
//!
//! ```
//! use lastcpu_bus::{
//!     BusVerdict, CorrId, DenyReason, Dst, Envelope, MapOp, Payload, PrivOpKind, RequestId,
//!     ResourceKind, Status, SystemBus,
//! };
//! use lastcpu_sim::SimTime;
//!
//! let mut bus = SystemBus::new();
//! bus.enable_audit(64);
//! let evil = bus.attach("evil0", "malicious");
//! let victim = bus.attach("nic0", "smart-nic");
//! let mut fx = Vec::new();
//! for d in [evil, victim] {
//!     bus.handle(SimTime::ZERO, Envelope {
//!         src: d, dst: Dst::Bus, req: RequestId(1), corr: CorrId::NONE,
//!         payload: Payload::Hello { name: format!("{d}"), kind: "x".into() },
//!     }, &mut fx);
//! }
//! fx.clear();
//! // No controller registered `evil0` for Memory, so this must be denied.
//! bus.handle(SimTime::ZERO, Envelope {
//!     src: evil, dst: Dst::Bus, req: RequestId(2), corr: CorrId::NONE,
//!     payload: Payload::MapInstruction {
//!         resource: ResourceKind::Memory, op: MapOp::Map, device: victim,
//!         pasid: 7, va: 0x4000, pa: 0x1000, pages: 1, perms: 3,
//!     },
//! }, &mut fx);
//! let audit = bus.audit().expect("audit enabled");
//! let rec = audit.records().last().unwrap();
//! assert_eq!(rec.op, PrivOpKind::MapInstruction);
//! assert_eq!(rec.verdict, BusVerdict::Denied);
//! assert_eq!(rec.reason, Some(DenyReason::NotController));
//! assert_eq!(audit.denied(), 1);
//! ```

use lastcpu_sim::SimDuration;

use crate::ids::DeviceId;
use crate::message::ResourceKind;

/// Which privileged (or policed) bus operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivOpKind {
    /// `RegisterController` — a claim on a resource class.
    RegisterController,
    /// `MapInstruction` — a request to program some device's IOMMU.
    MapInstruction,
    /// `Announce` — a service advertisement (policed for shadowing).
    Announce,
    /// Any bus-directed control message (policed for flooding).
    Control,
}

/// The bus's verdict on one privileged operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusVerdict {
    /// The operation passed every check and its effects were emitted.
    Allowed,
    /// The operation was refused; the sender got a `Denied`/`BadRequest`
    /// style reply and no effect was emitted.
    Denied,
    /// The message was dropped by the flood limiter without a reply
    /// (back-pressure by silence, as real fabrics shed load).
    RateLimited,
}

/// Why a privileged operation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyReason {
    /// `MapInstruction` from a device that is not the registered controller
    /// of the named resource class (the confused-deputy check).
    NotController,
    /// `MapInstruction` naming a resource class other than `Memory`.
    ///
    /// IOMMU page tables translate to physical DRAM, so only the memory
    /// controller's resource class can legitimately instruct them. Without
    /// this check a device could claim a vacant class (`Compute`,
    /// `Storage`, `Network`) via `RegisterController` and then instruct
    /// arbitrary DRAM mappings — the leak E11 found and this PR fixed.
    ResourceNotMemory,
    /// `RegisterController` for a class already owned by another device.
    ControllerTaken,
    /// Map target unknown or not alive.
    TargetNotFound,
    /// Malformed instruction (e.g. zero pages) or a payload class the bus
    /// does not accept.
    BadRequest,
    /// Discovery shadowing, refused under
    /// [`SecurityPolicy::deny_shadow_announce`]: either an `Announce` of a
    /// service name already announced by a different alive device, or a
    /// `QueryHit` whose sender is not the device it names / has not
    /// announced the service it claims (a spoofed discovery answer).
    ShadowAnnounce,
    /// Sender exceeded [`SecurityPolicy::flood_limit`] in the current
    /// window.
    FloodLimited,
}

/// One audited privileged-operation verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusAuditRecord {
    /// Sender of the operation.
    pub src: DeviceId,
    /// Operation class.
    pub op: PrivOpKind,
    /// Resource class named by the operation, when it names one.
    pub resource: Option<ResourceKind>,
    /// Device targeted by the operation (map target), when there is one.
    pub target: Option<DeviceId>,
    /// The verdict.
    pub verdict: BusVerdict,
    /// Why it was refused (`None` iff allowed).
    pub reason: Option<DenyReason>,
}

/// Bounded audit of privileged-operation verdicts.
///
/// Counters are exact; the record log is capped so an attacker flooding
/// denied operations cannot exhaust host memory through its own audit
/// trail. Overflowed records are counted in `dropped_records`.
#[derive(Debug, Clone, Default)]
pub struct BusAudit {
    allowed: u64,
    denied: u64,
    rate_limited: u64,
    pending_allowed: u64,
    pending_denied: u64,
    pending_rate_limited: u64,
    dropped: u64,
    cap: usize,
    log: Vec<BusAuditRecord>,
}

/// Verdicts accumulated since the previous [`BusAudit::drain`].
#[derive(Debug, Clone, Default)]
pub struct BusAuditDelta {
    /// Allowed privileged operations since the last drain (exact).
    pub allowed: u64,
    /// Denied privileged operations since the last drain (exact).
    pub denied: u64,
    /// Flood-shed messages since the last drain (exact).
    pub rate_limited: u64,
    /// Retained verdict records (bounded; see
    /// [`BusAudit::dropped_records`]).
    pub records: Vec<BusAuditRecord>,
}

impl BusAudit {
    /// Creates an audit keeping at most `cap` records.
    pub fn new(cap: usize) -> Self {
        BusAudit {
            cap,
            ..BusAudit::default()
        }
    }

    pub(crate) fn record(&mut self, rec: BusAuditRecord) {
        match rec.verdict {
            BusVerdict::Allowed => {
                self.allowed += 1;
                self.pending_allowed += 1;
            }
            BusVerdict::Denied => {
                self.denied += 1;
                self.pending_denied += 1;
            }
            BusVerdict::RateLimited => {
                self.rate_limited += 1;
                self.pending_rate_limited += 1;
            }
        }
        if self.log.len() < self.cap {
            self.log.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// Exact count of allowed privileged operations.
    pub fn allowed(&self) -> u64 {
        self.allowed
    }

    /// Exact count of denied privileged operations.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Exact count of messages shed by the flood limiter.
    pub fn rate_limited(&self) -> u64 {
        self.rate_limited
    }

    /// Records dropped because the bounded log was full.
    pub fn dropped_records(&self) -> u64 {
        self.dropped
    }

    /// Retained verdict records, oldest first.
    pub fn records(&self) -> &[BusAuditRecord] {
        &self.log
    }

    /// Drains verdicts accumulated since the previous drain.
    ///
    /// The event core calls this after each `handle()` to convert fresh
    /// verdicts into `sec.*` metrics and trace events exactly once.
    /// Cumulative counters are unaffected.
    pub fn drain(&mut self) -> BusAuditDelta {
        BusAuditDelta {
            allowed: std::mem::take(&mut self.pending_allowed),
            denied: std::mem::take(&mut self.pending_denied),
            rate_limited: std::mem::take(&mut self.pending_rate_limited),
            records: std::mem::take(&mut self.log),
        }
    }
}

/// Opt-in hardening knobs for attack classes the baseline protocol is
/// silent about. The default policy changes **nothing** — every existing
/// experiment runs under it bit-identically.
#[derive(Debug, Clone, Copy)]
pub struct SecurityPolicy {
    /// Refuse an `Announce` whose service *name* is already announced by a
    /// different alive device, and shed any `QueryHit` whose sender is not
    /// the device it names or has not announced the service it claims.
    /// Together these stop a malicious device from shadowing (spoofing or
    /// replaying) a live service so that discovery clients resolve to the
    /// attacker.
    pub deny_shadow_announce: bool,
    /// Per-sender cap on bus-directed control messages per
    /// [`SecurityPolicy::flood_window`]; messages beyond the cap are
    /// dropped (and audited as [`BusVerdict::RateLimited`]). `None`
    /// disables the limiter.
    pub flood_limit: Option<u32>,
    /// Window over which [`SecurityPolicy::flood_limit`] is counted.
    pub flood_window: SimDuration,
}

impl Default for SecurityPolicy {
    fn default() -> Self {
        SecurityPolicy {
            deny_shadow_announce: false,
            flood_limit: None,
            flood_window: SimDuration::from_millis(1),
        }
    }
}

impl SecurityPolicy {
    /// The policy the E11 security evaluation runs under: shadow-announce
    /// denial on, flood limiter at `limit` messages per millisecond.
    pub fn hardened(limit: u32) -> Self {
        SecurityPolicy {
            deny_shadow_announce: true,
            flood_limit: Some(limit),
            flood_window: SimDuration::from_millis(1),
        }
    }
}
