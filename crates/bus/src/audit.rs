//! Privileged-operation audit and security policy for the bus.
//!
//! The paper's central security claim (§2.2) is that *only the management
//! bus programs IOMMU page tables, and only on instruction from the
//! registered controller of the resource being mapped*. The E11 security
//! evaluation attacks that claim; this module is the bus side of the
//! evidence it needs: an append-only record of every privileged-operation
//! verdict ([`BusAudit`]) so a denied confused-deputy request is *provably*
//! denied, plus an opt-in [`SecurityPolicy`] covering the two attack
//! classes the baseline protocol is silent about (service shadowing and
//! control-plane floods).
//!
//! Like the IOMMU's `DmaAudit` (in `lastcpu-iommu`), the audit is
//! opt-in ([`crate::SystemBus::enable_audit`]) and deterministic: records
//! are appended in message-handling order, a pure function of the seed.
//!
//! # Examples
//!
//! Auditing a confused-deputy `MapInstruction` from a non-controller:
//!
//! ```
//! use lastcpu_bus::{
//!     BusVerdict, CorrId, DenyReason, Dst, Envelope, MapOp, Payload, PrivOpKind, RequestId,
//!     ResourceKind, Status, SystemBus,
//! };
//! use lastcpu_sim::SimTime;
//!
//! let mut bus = SystemBus::new();
//! bus.enable_audit(64);
//! let evil = bus.attach("evil0", "malicious");
//! let victim = bus.attach("nic0", "smart-nic");
//! let mut fx = Vec::new();
//! for d in [evil, victim] {
//!     bus.handle(SimTime::ZERO, Envelope {
//!         src: d, dst: Dst::Bus, req: RequestId(1), corr: CorrId::NONE,
//!         payload: Payload::Hello { name: format!("{d}"), kind: "x".into() },
//!     }, &mut fx);
//! }
//! fx.clear();
//! // No controller registered `evil0` for Memory, so this must be denied.
//! bus.handle(SimTime::ZERO, Envelope {
//!     src: evil, dst: Dst::Bus, req: RequestId(2), corr: CorrId::NONE,
//!     payload: Payload::MapInstruction {
//!         resource: ResourceKind::Memory, op: MapOp::Map, device: victim,
//!         pasid: 7, va: 0x4000, pa: 0x1000, pages: 1, perms: 3,
//!     },
//! }, &mut fx);
//! let audit = bus.audit().expect("audit enabled");
//! let rec = audit.records().last().unwrap();
//! assert_eq!(rec.op, PrivOpKind::MapInstruction);
//! assert_eq!(rec.verdict, BusVerdict::Denied);
//! assert_eq!(rec.reason, Some(DenyReason::NotController));
//! assert_eq!(audit.denied(), 1);
//! ```

use lastcpu_sim::SimDuration;

use crate::ids::DeviceId;
use crate::message::ResourceKind;

/// Which privileged (or policed) bus operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivOpKind {
    /// `RegisterController` — a claim on a resource class.
    RegisterController,
    /// `MapInstruction` — a request to program some device's IOMMU.
    MapInstruction,
    /// `Announce` — a service advertisement (policed for shadowing).
    Announce,
    /// Any bus-directed control message (policed for flooding).
    Control,
}

/// The bus's verdict on one privileged operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusVerdict {
    /// The operation passed every check and its effects were emitted.
    Allowed,
    /// The operation was refused; the sender got a `Denied`/`BadRequest`
    /// style reply and no effect was emitted.
    Denied,
    /// The message was dropped by the flood limiter without a reply
    /// (back-pressure by silence, as real fabrics shed load).
    RateLimited,
}

/// Why a privileged operation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyReason {
    /// `MapInstruction` from a device that is not the registered controller
    /// of the named resource class (the confused-deputy check).
    NotController,
    /// `MapInstruction` naming a resource class other than `Memory`.
    ///
    /// IOMMU page tables translate to physical DRAM, so only the memory
    /// controller's resource class can legitimately instruct them. Without
    /// this check a device could claim a vacant class (`Compute`,
    /// `Storage`, `Network`) via `RegisterController` and then instruct
    /// arbitrary DRAM mappings — the leak E11 found and this PR fixed.
    ResourceNotMemory,
    /// `RegisterController` for a class already owned by another device.
    ControllerTaken,
    /// Map target unknown or not alive.
    TargetNotFound,
    /// Malformed instruction (e.g. zero pages) or a payload class the bus
    /// does not accept.
    BadRequest,
    /// Discovery shadowing, refused under
    /// [`SecurityPolicy::deny_shadow_announce`]: either an `Announce` of a
    /// service name already announced by a different alive device, or a
    /// `QueryHit` whose sender is not the device it names / has not
    /// announced the service it claims (a spoofed discovery answer).
    ShadowAnnounce,
    /// Sender exceeded [`SecurityPolicy::flood_limit`] in the current
    /// window.
    FloodLimited,
}

/// One audited privileged-operation verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusAuditRecord {
    /// Sender of the operation.
    pub src: DeviceId,
    /// Operation class.
    pub op: PrivOpKind,
    /// Resource class named by the operation, when it names one.
    pub resource: Option<ResourceKind>,
    /// Device targeted by the operation (map target), when there is one.
    pub target: Option<DeviceId>,
    /// The verdict.
    pub verdict: BusVerdict,
    /// Why it was refused (`None` iff allowed).
    pub reason: Option<DenyReason>,
}

/// Bounded audit of privileged-operation verdicts.
///
/// Counters are exact; the record log is capped so an attacker flooding
/// denied operations cannot exhaust host memory through its own audit
/// trail. Overflowed records are counted in `dropped_records`.
#[derive(Debug, Clone, Default)]
pub struct BusAudit {
    allowed: u64,
    denied: u64,
    rate_limited: u64,
    pending_allowed: u64,
    pending_denied: u64,
    pending_rate_limited: u64,
    dropped: u64,
    cap: usize,
    log: Vec<BusAuditRecord>,
}

/// Verdicts accumulated since the previous [`BusAudit::drain`].
#[derive(Debug, Clone, Default)]
pub struct BusAuditDelta {
    /// Allowed privileged operations since the last drain (exact).
    pub allowed: u64,
    /// Denied privileged operations since the last drain (exact).
    pub denied: u64,
    /// Flood-shed messages since the last drain (exact).
    pub rate_limited: u64,
    /// Retained verdict records (bounded; see
    /// [`BusAudit::dropped_records`]).
    pub records: Vec<BusAuditRecord>,
}

impl BusAudit {
    /// Creates an audit keeping at most `cap` records.
    pub fn new(cap: usize) -> Self {
        BusAudit {
            cap,
            ..BusAudit::default()
        }
    }

    pub(crate) fn record(&mut self, rec: BusAuditRecord) {
        match rec.verdict {
            BusVerdict::Allowed => {
                self.allowed += 1;
                self.pending_allowed += 1;
            }
            BusVerdict::Denied => {
                self.denied += 1;
                self.pending_denied += 1;
            }
            BusVerdict::RateLimited => {
                self.rate_limited += 1;
                self.pending_rate_limited += 1;
            }
        }
        if self.log.len() < self.cap {
            self.log.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// Exact count of allowed privileged operations.
    pub fn allowed(&self) -> u64 {
        self.allowed
    }

    /// Exact count of denied privileged operations.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Exact count of messages shed by the flood limiter.
    pub fn rate_limited(&self) -> u64 {
        self.rate_limited
    }

    /// Records dropped because the bounded log was full.
    pub fn dropped_records(&self) -> u64 {
        self.dropped
    }

    /// Retained verdict records, oldest first.
    pub fn records(&self) -> &[BusAuditRecord] {
        &self.log
    }

    /// Drains verdicts accumulated since the previous drain.
    ///
    /// The event core calls this after each `handle()` to convert fresh
    /// verdicts into `sec.*` metrics and trace events exactly once.
    /// Cumulative counters are unaffected.
    pub fn drain(&mut self) -> BusAuditDelta {
        BusAuditDelta {
            allowed: std::mem::take(&mut self.pending_allowed),
            denied: std::mem::take(&mut self.pending_denied),
            rate_limited: std::mem::take(&mut self.pending_rate_limited),
            records: std::mem::take(&mut self.log),
        }
    }
}

/// Opt-in hardening knobs for attack classes the baseline protocol is
/// silent about. The default policy changes **nothing** — every existing
/// experiment runs under it bit-identically.
#[derive(Debug, Clone, Copy)]
pub struct SecurityPolicy {
    /// Refuse an `Announce` whose service *name* is already announced by a
    /// different alive device, and shed any `QueryHit` whose sender is not
    /// the device it names or has not announced the service it claims.
    /// Together these stop a malicious device from shadowing (spoofing or
    /// replaying) a live service so that discovery clients resolve to the
    /// attacker.
    pub deny_shadow_announce: bool,
    /// Per-sender cap on bus-directed control messages per
    /// [`SecurityPolicy::flood_window`]; messages beyond the cap are
    /// dropped (and audited as [`BusVerdict::RateLimited`]). `None`
    /// disables the limiter.
    pub flood_limit: Option<u32>,
    /// Window over which [`SecurityPolicy::flood_limit`] is counted.
    pub flood_window: SimDuration,
}

impl Default for SecurityPolicy {
    fn default() -> Self {
        SecurityPolicy {
            deny_shadow_announce: false,
            flood_limit: None,
            flood_window: SimDuration::from_millis(1),
        }
    }
}

impl SecurityPolicy {
    /// The policy the E11 security evaluation runs under: shadow-announce
    /// denial on, flood limiter at `limit` messages per millisecond.
    pub fn hardened(limit: u32) -> Self {
        SecurityPolicy {
            deny_shadow_announce: true,
            flood_limit: Some(limit),
            flood_window: SimDuration::from_millis(1),
        }
    }
}

impl PrivOpKind {
    /// Serializes into a snapshot section.
    pub fn encode(self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u8(match self {
            PrivOpKind::RegisterController => 0,
            PrivOpKind::MapInstruction => 1,
            PrivOpKind::Announce => 2,
            PrivOpKind::Control => 3,
        });
    }

    /// Inverse of [`PrivOpKind::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(match r.u8()? {
            0 => PrivOpKind::RegisterController,
            1 => PrivOpKind::MapInstruction,
            2 => PrivOpKind::Announce,
            3 => PrivOpKind::Control,
            t => return Err(r.corrupt(format!("bad PrivOpKind tag {t}"))),
        })
    }
}

impl BusVerdict {
    /// Serializes into a snapshot section.
    pub fn encode(self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u8(match self {
            BusVerdict::Allowed => 0,
            BusVerdict::Denied => 1,
            BusVerdict::RateLimited => 2,
        });
    }

    /// Inverse of [`BusVerdict::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(match r.u8()? {
            0 => BusVerdict::Allowed,
            1 => BusVerdict::Denied,
            2 => BusVerdict::RateLimited,
            t => return Err(r.corrupt(format!("bad BusVerdict tag {t}"))),
        })
    }
}

impl DenyReason {
    /// Serializes into a snapshot section.
    pub fn encode(self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u8(match self {
            DenyReason::NotController => 0,
            DenyReason::ResourceNotMemory => 1,
            DenyReason::ControllerTaken => 2,
            DenyReason::TargetNotFound => 3,
            DenyReason::BadRequest => 4,
            DenyReason::ShadowAnnounce => 5,
            DenyReason::FloodLimited => 6,
        });
    }

    /// Inverse of [`DenyReason::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(match r.u8()? {
            0 => DenyReason::NotController,
            1 => DenyReason::ResourceNotMemory,
            2 => DenyReason::ControllerTaken,
            3 => DenyReason::TargetNotFound,
            4 => DenyReason::BadRequest,
            5 => DenyReason::ShadowAnnounce,
            6 => DenyReason::FloodLimited,
            t => return Err(r.corrupt(format!("bad DenyReason tag {t}"))),
        })
    }
}

impl BusAuditRecord {
    /// Serializes into a snapshot section.
    pub fn encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u32(self.src.0);
        self.op.encode(w);
        w.put_opt(self.resource.as_ref(), |w, k| {
            w.put_u8(crate::message::resource_kind_tag(*k))
        });
        w.put_opt(self.target.as_ref(), |w, d| w.put_u32(d.0));
        self.verdict.encode(w);
        w.put_opt(self.reason.as_ref(), |w, x| x.encode(w));
    }

    /// Inverse of [`BusAuditRecord::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(BusAuditRecord {
            src: DeviceId(r.u32()?),
            op: PrivOpKind::decode(r)?,
            resource: r.opt(|r| {
                let t = r.u8()?;
                crate::message::resource_kind_from_tag(t)
                    .ok_or_else(|| r.corrupt(format!("bad ResourceKind tag {t}")))
            })?,
            target: r.opt(|r| Ok(DeviceId(r.u32()?)))?,
            verdict: BusVerdict::decode(r)?,
            reason: r.opt(DenyReason::decode)?,
        })
    }
}

impl lastcpu_snap::Snapshot for BusAudit {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.allowed);
        w.put_u64(self.denied);
        w.put_u64(self.rate_limited);
        w.put_u64(self.pending_allowed);
        w.put_u64(self.pending_denied);
        w.put_u64(self.pending_rate_limited);
        w.put_u64(self.dropped);
        w.put_u64(self.cap as u64);
        w.put_len(self.log.len());
        for rec in &self.log {
            rec.encode(w);
        }
    }
}

impl lastcpu_snap::Restore for BusAudit {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.allowed = r.u64()?;
        self.denied = r.u64()?;
        self.rate_limited = r.u64()?;
        self.pending_allowed = r.u64()?;
        self.pending_denied = r.u64()?;
        self.pending_rate_limited = r.u64()?;
        self.dropped = r.u64()?;
        self.cap = r.u64()? as usize;
        let n = r.len()?;
        if n > self.cap {
            return Err(r.corrupt("audit log exceeds its capacity"));
        }
        self.log = Vec::with_capacity(n);
        for _ in 0..n {
            self.log.push(BusAuditRecord::decode(r)?);
        }
        Ok(())
    }
}

impl SecurityPolicy {
    /// Serializes into a snapshot section.
    pub fn encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_bool(self.deny_shadow_announce);
        w.put_opt(self.flood_limit.as_ref(), |w, v| w.put_u32(*v));
        w.put_u64(self.flood_window.as_nanos());
    }

    /// Inverse of [`SecurityPolicy::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(SecurityPolicy {
            deny_shadow_announce: r.bool()?,
            flood_limit: r.opt(|r| r.u32())?,
            flood_window: SimDuration::from_nanos(r.u64()?),
        })
    }
}
