//! The privileged bus engine.
//!
//! The engine is a pure state machine over [`Envelope`]s. It owns exactly
//! the state the paper allows it (§2.2): which devices exist and are alive,
//! who controls which resource class, and nothing else. In particular it
//! holds **no service directory and no allocation tables** — "no entity sees
//! the entire system and there is no global state replication". Discovery
//! queries are re-broadcast to the devices, which answer from their own
//! service tables; allocation policy lives in the memory controller.
//!
//! Every rule the bus enforces is a *mechanism* rule:
//!
//! 1. Only registered, alive devices may send (dead devices are fenced).
//! 2. IOMMU programming is accepted only from the registered controller of
//!    the resource class being mapped, and a controller can never program a
//!    mapping into its own IOMMU via a self-directed instruction chain —
//!    the target is named explicitly and audited.
//! 3. Failure of a device is broadcast to everyone, followed by a reset
//!    attempt (§4 "Error Handling").

use std::fmt;
use std::sync::Arc;

use lastcpu_sim::{CorrId, DetHashMap, SimDuration, SimTime};

use crate::audit::{BusAudit, BusAuditRecord, BusVerdict, DenyReason, PrivOpKind, SecurityPolicy};
use crate::cost::BusCostModel;
use crate::ids::{DeviceId, RequestId};
use crate::message::{Dst, Envelope, ErrorCode, MapOp, Payload, ResourceKind, ServiceDesc, Status};

/// Effects the bus asks its host simulator to apply.
///
/// The bus crate has no access to devices, IOMMUs or memory: it returns
/// intentions, and the system glue (in `lastcpu-core`) applies them. This is
/// what keeps the privileged logic independently testable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusEffect {
    /// Deliver `env` to device `to` after `latency`.
    ///
    /// The envelope is `Arc`-shared: a broadcast hands the *same* allocation
    /// to every recipient instead of deep-cloning the payload per receiver,
    /// and a unicast forwards the sender's envelope untouched. Receivers
    /// that need ownership (device dispatch) unwrap the `Arc`, which is a
    /// move — not a copy — whenever they hold the last reference.
    Deliver {
        /// Receiving device.
        to: DeviceId,
        /// The message.
        env: Arc<Envelope>,
        /// Control-plane latency until delivery.
        latency: SimDuration,
    },
    /// Program `pages` mappings into `device`'s IOMMU.
    ProgramMap {
        /// Device whose IOMMU is written.
        device: DeviceId,
        /// Target address space.
        pasid: u32,
        /// Virtual base (page-aligned).
        va: u64,
        /// Physical base (page-aligned).
        pa: u64,
        /// Number of pages.
        pages: u64,
        /// Permission bits (1=R,2=W,4=X).
        perms: u8,
        /// Activity that caused this programming.
        corr: CorrId,
    },
    /// Remove `pages` mappings from `device`'s IOMMU.
    ProgramUnmap {
        /// Device whose IOMMU is written.
        device: DeviceId,
        /// Target address space.
        pasid: u32,
        /// Virtual base (page-aligned).
        va: u64,
        /// Number of pages.
        pages: u64,
        /// Activity that caused this revocation.
        corr: CorrId,
    },
    /// Pulse the reset line of `device` (failure recovery attempt).
    ResetDevice {
        /// Device to reset.
        device: DeviceId,
        /// Activity that caused the reset.
        corr: CorrId,
    },
}

/// Errors from the bus's host-facing API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// Operation referenced an unknown device.
    UnknownDevice(DeviceId),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::UnknownDevice(d) => write!(f, "unknown device {d}"),
        }
    }
}

impl std::error::Error for BusError {}

/// Liveness state of a registered device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// Physically present, has not completed self-test yet.
    Attached,
    /// Sent `Hello`; fully operational.
    Alive,
    /// Declared failed; a reset has been attempted.
    Failed,
    /// Departed via `Bye`.
    Departed,
}

/// Bus-side record for one device.
#[derive(Debug, Clone)]
pub struct DeviceEntry {
    /// Stable bus address.
    pub id: DeviceId,
    /// Device name, e.g. `"nic0"`.
    pub name: String,
    /// Device kind, e.g. `"smart-nic"`.
    pub kind: String,
    /// Liveness state.
    pub state: DeviceState,
    /// Last time the bus heard from the device.
    pub last_seen: SimTime,
    /// Services the device has announced (observability only; the bus does
    /// not answer queries from this).
    pub services: Vec<ServiceDesc>,
}

/// Traffic counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct BusStats {
    /// Messages handled.
    pub messages: u64,
    /// Bytes carried (control plane only).
    pub bytes: u64,
    /// Unicast deliveries emitted.
    pub unicasts: u64,
    /// Broadcast deliveries emitted (one per recipient).
    pub broadcast_deliveries: u64,
    /// Map/unmap instructions executed.
    pub map_ops: u64,
    /// Requests denied by privilege checks.
    pub denials: u64,
    /// Messages shed by the flood limiter (see
    /// [`SecurityPolicy::flood_limit`]).
    pub flood_dropped: u64,
    /// Device failures detected (heartbeat timeout or explicit).
    pub failures: u64,
}

/// The system management bus.
///
/// # Examples
///
/// ```
/// use lastcpu_bus::{CorrId, Dst, Envelope, Payload, RequestId, SystemBus};
/// use lastcpu_sim::SimTime;
///
/// let mut bus = SystemBus::new();
/// let nic = bus.attach("nic0", "smart-nic");
/// let mut fx = Vec::new();
/// bus.handle(
///     SimTime::ZERO,
///     Envelope {
///         src: nic,
///         dst: Dst::Bus,
///         req: RequestId(1),
///         corr: CorrId(1),
///         payload: Payload::Hello { name: "nic0".into(), kind: "smart-nic".into() },
///     },
///     &mut fx,
/// );
/// assert!(matches!(fx[0], lastcpu_bus::BusEffect::Deliver { .. })); // HelloAck
/// ```
pub struct SystemBus {
    devices: DetHashMap<DeviceId, DeviceEntry>,
    order: Vec<DeviceId>,
    next_id: u32,
    controllers: DetHashMap<ResourceKind, DeviceId>,
    cost: BusCostModel,
    heartbeat_timeout: SimDuration,
    stats: BusStats,
    /// Correlation id of the message currently being handled; stamped onto
    /// every reply, broadcast, and IOMMU-programming effect it causes.
    cur_corr: CorrId,
    /// Privileged-operation audit (E11); `None` until enabled.
    audit: Option<BusAudit>,
    /// Opt-in hardening policy; the default changes nothing.
    policy: SecurityPolicy,
    /// Flood-limiter state: per-sender (window start, messages in window).
    flood: DetHashMap<DeviceId, (SimTime, u32)>,
}

impl Default for SystemBus {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemBus {
    /// A bus with default cost model and a 10 ms heartbeat timeout.
    pub fn new() -> Self {
        SystemBus {
            devices: DetHashMap::default(),
            order: Vec::new(),
            next_id: 1, // 0 is the bus itself
            controllers: DetHashMap::default(),
            cost: BusCostModel::default(),
            heartbeat_timeout: SimDuration::from_millis(10),
            stats: BusStats::default(),
            cur_corr: CorrId::NONE,
            audit: None,
            policy: SecurityPolicy::default(),
            flood: DetHashMap::default(),
        }
    }

    /// Enables the privileged-operation audit ([`BusAudit`]), keeping at
    /// most `cap` verdict records. Idempotent.
    pub fn enable_audit(&mut self, cap: usize) {
        if self.audit.is_none() {
            self.audit = Some(BusAudit::new(cap));
        }
    }

    /// The audit record, if [`SystemBus::enable_audit`] was called.
    pub fn audit(&self) -> Option<&BusAudit> {
        self.audit.as_ref()
    }

    /// Mutable audit access (the event core drains verdict records here).
    pub fn audit_mut(&mut self) -> Option<&mut BusAudit> {
        self.audit.as_mut()
    }

    /// Installs a hardening policy. The default [`SecurityPolicy`] changes
    /// nothing; see [`SecurityPolicy::hardened`] for the E11 settings.
    pub fn set_security_policy(&mut self, policy: SecurityPolicy) {
        self.policy = policy;
    }

    /// The hardening policy in effect.
    pub fn security_policy(&self) -> SecurityPolicy {
        self.policy
    }

    fn audit_record(
        &mut self,
        src: DeviceId,
        op: PrivOpKind,
        resource: Option<ResourceKind>,
        target: Option<DeviceId>,
        verdict: BusVerdict,
        reason: Option<DenyReason>,
    ) {
        if let Some(a) = self.audit.as_mut() {
            a.record(BusAuditRecord {
                src,
                op,
                resource,
                target,
                verdict,
                reason,
            });
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: BusCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the heartbeat timeout after which a silent device is declared
    /// failed by [`SystemBus::check_liveness`].
    pub fn set_heartbeat_timeout(&mut self, t: SimDuration) {
        self.heartbeat_timeout = t;
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> &BusCostModel {
        &self.cost
    }

    /// Traffic counters.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Registers a physically present device and assigns its bus address.
    ///
    /// This models slot enumeration (PCIe-style): presence is physical and
    /// synchronous. The device becomes *alive* only after it passes
    /// self-test and sends [`Payload::Hello`] (§2.2 "System
    /// Initialization").
    pub fn attach(&mut self, name: &str, kind: &str) -> DeviceId {
        let id = DeviceId(self.next_id);
        self.next_id += 1;
        self.devices.insert(
            id,
            DeviceEntry {
                id,
                name: name.to_string(),
                kind: kind.to_string(),
                state: DeviceState::Attached,
                last_seen: SimTime::ZERO,
                services: Vec::new(),
            },
        );
        self.order.push(id);
        id
    }

    /// Looks up a device entry.
    pub fn device(&self, id: DeviceId) -> Option<&DeviceEntry> {
        self.devices.get(&id)
    }

    /// All registered devices in attach order.
    pub fn devices(&self) -> impl Iterator<Item = &DeviceEntry> {
        self.order.iter().filter_map(|id| self.devices.get(id))
    }

    /// Devices currently alive, in attach order.
    pub fn alive(&self) -> impl Iterator<Item = &DeviceEntry> {
        self.devices().filter(|d| d.state == DeviceState::Alive)
    }

    /// The registered controller of `resource`, if any.
    pub fn controller_of(&self, resource: ResourceKind) -> Option<DeviceId> {
        self.controllers.get(&resource).copied()
    }

    fn deliver(
        &mut self,
        to: DeviceId,
        env: Arc<Envelope>,
        latency: SimDuration,
        fx: &mut Vec<BusEffect>,
    ) {
        self.stats.unicasts += 1;
        fx.push(BusEffect::Deliver { to, env, latency });
    }

    fn reply(
        &mut self,
        now_bytes: usize,
        to: DeviceId,
        req: RequestId,
        payload: Payload,
        fx: &mut Vec<BusEffect>,
    ) {
        let env = Envelope {
            src: DeviceId::BUS,
            dst: Dst::Device(to),
            req,
            corr: self.cur_corr,
            payload,
        };
        let latency = self.cost.unicast(now_bytes.max(env.encoded_len()));
        self.deliver(to, Arc::new(env), latency, fx);
    }

    /// Shared rebroadcast path for bus-directed discovery messages
    /// (`Announce` / `Withdraw` / `Query`): builds the broadcast envelope
    /// **once**, shares it across all recipients, and re-uses the incoming
    /// message's wire size for cost accounting. Previously each call site
    /// rebuilt and re-cloned the envelope per recipient.
    fn rebroadcast(
        &mut self,
        src: DeviceId,
        req: RequestId,
        payload: Payload,
        bytes: usize,
        fx: &mut Vec<BusEffect>,
    ) {
        let env = Arc::new(Envelope {
            src,
            dst: Dst::Broadcast,
            req,
            corr: self.cur_corr,
            payload,
        });
        self.broadcast_from(src, env, bytes, fx);
    }

    /// Handles one message, appending resulting effects to `fx`.
    ///
    /// Accepts either an owned [`Envelope`] or an already-shared
    /// `Arc<Envelope>`; the routing path never re-encodes or deep-clones
    /// the message.
    ///
    /// Unknown or fenced senders are dropped silently (a dead device's
    /// messages must not reach anyone — that is the fencing property the
    /// failure experiment checks).
    pub fn handle(&mut self, now: SimTime, env: impl Into<Arc<Envelope>>, fx: &mut Vec<BusEffect>) {
        let env: Arc<Envelope> = env.into();
        let bytes = env.encoded_len();
        self.cur_corr = env.corr;
        self.stats.messages += 1;
        self.stats.bytes += bytes as u64;

        // Fencing: only attached/alive devices may talk. `Hello` is allowed
        // from `Attached` (that is how a device becomes alive) and from
        // `Failed` (a reset device re-introduces itself).
        let sender_state = match self.devices.get(&env.src) {
            Some(e) => e.state,
            None => return,
        };
        let is_hello = matches!(env.payload, Payload::Hello { .. });
        match sender_state {
            DeviceState::Alive => {}
            DeviceState::Attached | DeviceState::Failed if is_hello => {}
            _ => return,
        }
        if let Some(e) = self.devices.get_mut(&env.src) {
            e.last_seen = now;
        }

        // Flood limiter (opt-in policy): a per-sender cap on control-plane
        // messages per window. Excess messages are shed silently — the
        // attacker gets no reply to amplify — but every shed message is
        // audited and counted, so the defence is provable.
        if let Some(limit) = self.policy.flood_limit {
            if matches!(env.dst, Dst::Bus | Dst::Broadcast) {
                let window = self.policy.flood_window;
                let slot = self.flood.entry(env.src).or_insert((now, 0));
                if now.since(slot.0) >= window {
                    *slot = (now, 0);
                }
                slot.1 += 1;
                if slot.1 > limit {
                    self.stats.flood_dropped += 1;
                    self.audit_record(
                        env.src,
                        PrivOpKind::Control,
                        None,
                        None,
                        BusVerdict::RateLimited,
                        Some(DenyReason::FloodLimited),
                    );
                    return;
                }
            }
        }

        match env.dst {
            Dst::Bus => self.handle_bus_directed(now, &env, bytes, fx),
            Dst::Device(target) => {
                // Discovery-spoof defence (opt-in policy, the second half of
                // the shadow-announce check): owners answer `Query`
                // broadcasts *directly* with `QueryHit`, so a spoofed hit
                // would capture a discovery client without ever touching
                // the announce directory. Under the policy, a `QueryHit`
                // must (a) name its own sender as the offering device and
                // (b) name a service that sender has announced. Spoofs are
                // shed silently — a reply would tell the attacker which
                // names are live — but every one is audited.
                if self.policy.deny_shadow_announce {
                    if let Payload::QueryHit { device, service } = &env.payload {
                        let legit = *device == env.src
                            && self
                                .devices
                                .get(&env.src)
                                .is_some_and(|e| e.services.iter().any(|s| s.name == service.name));
                        if !legit {
                            self.stats.denials += 1;
                            self.audit_record(
                                env.src,
                                PrivOpKind::Announce,
                                Some(service.resource),
                                Some(*device),
                                BusVerdict::Denied,
                                Some(DenyReason::ShadowAnnounce),
                            );
                            return;
                        }
                    }
                }
                let alive = self
                    .devices
                    .get(&target)
                    .is_some_and(|e| e.state == DeviceState::Alive);
                if alive {
                    let latency = self.cost.unicast(bytes);
                    // Zero-copy forward: the sender's envelope is handed
                    // through untouched.
                    self.deliver(target, env, latency, fx);
                } else {
                    // Bounce: tell the sender its peer is gone.
                    let req = env.req;
                    let src = env.src;
                    self.reply(
                        bytes,
                        src,
                        req,
                        Payload::ErrorNotify {
                            code: ErrorCode::DeviceFailed,
                            conn: crate::ids::ConnId(0),
                            detail: format!("{target} is not alive"),
                        },
                        fx,
                    );
                }
            }
            Dst::Broadcast => self.broadcast_from(env.src, env, bytes, fx),
        }
    }

    fn broadcast_from(
        &mut self,
        src: DeviceId,
        env: Arc<Envelope>,
        bytes: usize,
        fx: &mut Vec<BusEffect>,
    ) {
        let mut n = 0usize;
        for i in 0..self.order.len() {
            let id = self.order[i];
            if id == src
                || !self
                    .devices
                    .get(&id)
                    .is_some_and(|e| e.state == DeviceState::Alive)
            {
                continue;
            }
            let latency = self.cost.broadcast_nth(bytes, n);
            n += 1;
            self.stats.broadcast_deliveries += 1;
            fx.push(BusEffect::Deliver {
                to: id,
                // Reference-count bump only — the payload is shared, not
                // deep-cloned per recipient.
                env: Arc::clone(&env),
                latency,
            });
        }
    }

    fn handle_bus_directed(
        &mut self,
        now: SimTime,
        env: &Envelope,
        bytes: usize,
        fx: &mut Vec<BusEffect>,
    ) {
        let src = env.src;
        let req = env.req;
        match &env.payload {
            Payload::Hello { .. } => {
                if let Some(e) = self.devices.get_mut(&src) {
                    e.state = DeviceState::Alive;
                    e.last_seen = now;
                }
                self.reply(bytes, src, req, Payload::HelloAck { assigned: src }, fx);
            }
            Payload::Heartbeat => {
                // last_seen already refreshed in handle().
            }
            Payload::Bye => {
                if let Some(e) = self.devices.get_mut(&src) {
                    e.state = DeviceState::Departed;
                }
                self.fan_out_failure(src, bytes, fx);
            }
            Payload::Announce { service } => {
                // Shadowing defence (opt-in policy): refuse to let one
                // device announce a service *name* another alive device is
                // currently announcing. Stops spoofed/replayed SSDP
                // announcements from capturing a victim's discovery
                // clients.
                if self.policy.deny_shadow_announce {
                    let shadowed = self.devices.values().any(|e| {
                        e.id != src
                            && e.state == DeviceState::Alive
                            && e.services.iter().any(|s| s.name == service.name)
                    });
                    if shadowed {
                        self.stats.denials += 1;
                        self.audit_record(
                            src,
                            PrivOpKind::Announce,
                            Some(service.resource),
                            None,
                            BusVerdict::Denied,
                            Some(DenyReason::ShadowAnnounce),
                        );
                        self.reply(
                            bytes,
                            src,
                            req,
                            Payload::BusAck {
                                status: Status::Denied,
                            },
                            fx,
                        );
                        return;
                    }
                }
                if let Some(e) = self.devices.get_mut(&src) {
                    e.services.retain(|s| s.id != service.id);
                    e.services.push(service.clone());
                }
                // Capability broadcast (§2.2): others may cache it.
                self.rebroadcast(
                    src,
                    req,
                    Payload::Announce {
                        service: service.clone(),
                    },
                    bytes,
                    fx,
                );
            }
            Payload::Withdraw { service } => {
                let service = *service;
                if let Some(e) = self.devices.get_mut(&src) {
                    e.services.retain(|s| s.id != service);
                }
                self.rebroadcast(src, req, Payload::Withdraw { service }, bytes, fx);
            }
            Payload::Query { pattern } => {
                // SSDP-style: the bus re-broadcasts; owners answer directly.
                self.rebroadcast(
                    src,
                    req,
                    Payload::Query {
                        pattern: pattern.clone(),
                    },
                    bytes,
                    fx,
                );
            }
            Payload::RegisterController { resource } => {
                let resource = *resource;
                let status = match self.controllers.get(&resource) {
                    None => {
                        self.controllers.insert(resource, src);
                        Status::Ok
                    }
                    Some(&owner) if owner == src => Status::Ok,
                    Some(_) => {
                        self.stats.denials += 1;
                        Status::Denied
                    }
                };
                let (verdict, reason) = if status == Status::Ok {
                    (BusVerdict::Allowed, None)
                } else {
                    (BusVerdict::Denied, Some(DenyReason::ControllerTaken))
                };
                self.audit_record(
                    src,
                    PrivOpKind::RegisterController,
                    Some(resource),
                    None,
                    verdict,
                    reason,
                );
                self.reply(bytes, src, req, Payload::BusAck { status }, fx);
            }
            Payload::MapInstruction {
                resource,
                op,
                device,
                pasid,
                va,
                pa,
                pages,
                perms,
            } => {
                self.handle_map_instruction(
                    bytes, src, req, *resource, *op, *device, *pasid, *va, *pa, *pages, *perms, fx,
                );
            }
            Payload::ResetDone => {
                if let Some(e) = self.devices.get_mut(&src) {
                    // The device still re-registers via Hello.
                    e.last_seen = now;
                }
            }
            _ => {
                // Anything else aimed at the bus is a protocol violation.
                self.stats.denials += 1;
                self.audit_record(
                    src,
                    PrivOpKind::Control,
                    None,
                    None,
                    BusVerdict::Denied,
                    Some(DenyReason::BadRequest),
                );
                self.reply(
                    bytes,
                    src,
                    req,
                    Payload::BusAck {
                        status: Status::BadRequest,
                    },
                    fx,
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // Mirrors the wire message fields.
    fn handle_map_instruction(
        &mut self,
        bytes: usize,
        src: DeviceId,
        req: RequestId,
        resource: ResourceKind,
        op: MapOp,
        device: DeviceId,
        pasid: u32,
        va: u64,
        pa: u64,
        pages: u64,
        perms: u8,
        fx: &mut Vec<BusEffect>,
    ) {
        // Hardening (E11 finding): IOMMU page tables translate to physical
        // DRAM, so only the *memory* resource class can legitimately
        // instruct them. Before this check, a device could claim a vacant
        // class (Compute/Storage/Network) via `RegisterController` — first
        // claim wins — and then use it as a deputy to program arbitrary
        // DRAM mappings into any IOMMU. Denied before the controller check:
        // a non-Memory map instruction is a protocol violation no matter
        // who sends it.
        if resource != ResourceKind::Memory {
            self.stats.denials += 1;
            self.audit_record(
                src,
                PrivOpKind::MapInstruction,
                Some(resource),
                Some(device),
                BusVerdict::Denied,
                Some(DenyReason::ResourceNotMemory),
            );
            self.reply(
                bytes,
                src,
                req,
                Payload::BusAck {
                    status: Status::Denied,
                },
                fx,
            );
            return;
        }
        // Privilege check: only the registered controller of this resource
        // class may instruct mappings (§2.2 "Address Translation").
        if self.controllers.get(&resource) != Some(&src) {
            self.stats.denials += 1;
            self.audit_record(
                src,
                PrivOpKind::MapInstruction,
                Some(resource),
                Some(device),
                BusVerdict::Denied,
                Some(DenyReason::NotController),
            );
            self.reply(
                bytes,
                src,
                req,
                Payload::BusAck {
                    status: Status::Denied,
                },
                fx,
            );
            return;
        }
        // Map requires a live target; *unmap* is allowed on any attached
        // device — revocation must work on a failed device precisely so its
        // IOMMU is scrubbed before any reset revives it (§4).
        let target_ok = match op {
            MapOp::Map => self
                .devices
                .get(&device)
                .is_some_and(|e| e.state == DeviceState::Alive),
            MapOp::Unmap => self.devices.contains_key(&device),
        };
        if !target_ok || pages == 0 {
            self.audit_record(
                src,
                PrivOpKind::MapInstruction,
                Some(resource),
                Some(device),
                BusVerdict::Denied,
                Some(if pages == 0 {
                    DenyReason::BadRequest
                } else {
                    DenyReason::TargetNotFound
                }),
            );
            self.reply(
                bytes,
                src,
                req,
                Payload::BusAck {
                    status: if pages == 0 {
                        Status::BadRequest
                    } else {
                        Status::NotFound
                    },
                },
                fx,
            );
            return;
        }
        self.stats.map_ops += 1;
        self.audit_record(
            src,
            PrivOpKind::MapInstruction,
            Some(resource),
            Some(device),
            BusVerdict::Allowed,
            None,
        );
        match op {
            MapOp::Map => fx.push(BusEffect::ProgramMap {
                device,
                pasid,
                va,
                pa,
                pages,
                perms,
                corr: self.cur_corr,
            }),
            MapOp::Unmap => fx.push(BusEffect::ProgramUnmap {
                device,
                pasid,
                va,
                pages,
                corr: self.cur_corr,
            }),
        }
        // Completion signal to the device whose address space changed…
        self.reply(
            bytes,
            device,
            req,
            Payload::MapComplete {
                status: Status::Ok,
                va,
                pages,
            },
            fx,
        );
        // …and an ack to the instructing controller.
        self.reply(bytes, src, req, Payload::BusAck { status: Status::Ok }, fx);
    }

    fn fan_out_failure(&mut self, failed: DeviceId, bytes: usize, fx: &mut Vec<BusEffect>) {
        self.stats.failures += 1;
        // Not `rebroadcast`: the notice is *from the bus* but must exclude
        // the failed device, so the exclusion differs from the envelope src.
        let note = Arc::new(Envelope {
            src: DeviceId::BUS,
            dst: Dst::Broadcast,
            req: RequestId(0),
            corr: self.cur_corr,
            payload: Payload::DeviceFailed { device: failed },
        });
        self.broadcast_from(failed, note, bytes, fx);
    }

    /// Declares `device` failed right now (fault injection or an external
    /// detector), fencing it, notifying everyone, and attempting a reset.
    pub fn mark_failed(
        &mut self,
        device: DeviceId,
        fx: &mut Vec<BusEffect>,
    ) -> Result<(), BusError> {
        let entry = self
            .devices
            .get_mut(&device)
            .ok_or(BusError::UnknownDevice(device))?;
        // Failure detection is spontaneous, not caused by an in-flight
        // message; do not attribute it to whatever was handled last.
        self.cur_corr = CorrId::NONE;
        entry.state = DeviceState::Failed;
        self.fan_out_failure(device, 32, fx);
        fx.push(BusEffect::ResetDevice {
            device,
            corr: self.cur_corr,
        });
        Ok(())
    }

    /// Scans for devices whose heartbeat lapsed and declares them failed.
    ///
    /// A device is lapsed once the full timeout has elapsed, *inclusive* of
    /// the boundary tick: with a strict `>` a deterministic sweep schedule
    /// whose period divides the timeout would land exactly on the deadline
    /// every time and keep a dead device "Alive" forever.
    ///
    /// Returns the devices newly declared failed.
    pub fn check_liveness(&mut self, now: SimTime, fx: &mut Vec<BusEffect>) -> Vec<DeviceId> {
        let timeout = self.heartbeat_timeout;
        let lapsed: Vec<DeviceId> = self
            .order
            .iter()
            .copied()
            .filter(|id| {
                self.devices.get(id).is_some_and(|e| {
                    e.state == DeviceState::Alive && now.since(e.last_seen) >= timeout
                })
            })
            .collect();
        for &d in &lapsed {
            // Cannot fail: `d` came from the registry.
            let _ = self.mark_failed(d, fx);
        }
        lapsed
    }
}

impl fmt::Debug for SystemBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SystemBus(devices={}, alive={}, controllers={})",
            self.devices.len(),
            self.alive().count(),
            self.controllers.len()
        )
    }
}

fn encode_service_desc_snap(w: &mut lastcpu_snap::SnapWriter, s: &ServiceDesc) {
    s.snap_encode(w);
}

fn decode_service_desc_snap(
    r: &mut lastcpu_snap::SnapReader<'_>,
) -> lastcpu_snap::Result<ServiceDesc> {
    ServiceDesc::snap_decode(r)
}

fn device_state_tag(s: DeviceState) -> u8 {
    match s {
        DeviceState::Attached => 0,
        DeviceState::Alive => 1,
        DeviceState::Failed => 2,
        DeviceState::Departed => 3,
    }
}

fn device_state_from_tag(t: u8) -> Option<DeviceState> {
    Some(match t {
        0 => DeviceState::Attached,
        1 => DeviceState::Alive,
        2 => DeviceState::Failed,
        3 => DeviceState::Departed,
        _ => return None,
    })
}

impl lastcpu_snap::Snapshot for SystemBus {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.cost.hop_latency.as_nanos());
        w.put_u64(self.cost.processing.as_nanos());
        w.put_u64(self.cost.per_byte_ps);
        w.put_u64(self.heartbeat_timeout.as_nanos());
        w.put_u32(self.next_id);
        w.put_u64(self.cur_corr.0);
        w.put_u64(self.stats.messages);
        w.put_u64(self.stats.bytes);
        w.put_u64(self.stats.unicasts);
        w.put_u64(self.stats.broadcast_deliveries);
        w.put_u64(self.stats.map_ops);
        w.put_u64(self.stats.denials);
        w.put_u64(self.stats.flood_dropped);
        w.put_u64(self.stats.failures);
        // Registration order is semantic: broadcast fan-out and heartbeat
        // sweeps iterate it, so it is preserved verbatim.
        w.put_len(self.order.len());
        for d in &self.order {
            w.put_u32(d.0);
        }
        let mut ids: Vec<_> = self.devices.keys().copied().collect();
        ids.sort_by_key(|d| d.0);
        w.put_len(ids.len());
        for id in ids {
            let e = &self.devices[&id];
            w.put_u32(e.id.0);
            w.put_str(&e.name);
            w.put_str(&e.kind);
            w.put_u8(device_state_tag(e.state));
            w.put_u64(e.last_seen.as_nanos());
            w.put_len(e.services.len());
            for s in &e.services {
                encode_service_desc_snap(w, s);
            }
        }
        let mut ctl: Vec<_> = self
            .controllers
            .iter()
            .map(|(k, d)| (crate::message::resource_kind_tag(*k), d.0))
            .collect();
        ctl.sort_unstable();
        w.put_len(ctl.len());
        for (k, d) in ctl {
            w.put_u8(k);
            w.put_u32(d);
        }
        self.policy.encode(w);
        let mut flood: Vec<_> = self
            .flood
            .iter()
            .map(|(d, (t, n))| (d.0, t.as_nanos(), *n))
            .collect();
        flood.sort_unstable();
        w.put_len(flood.len());
        for (d, t, n) in flood {
            w.put_u32(d);
            w.put_u64(t);
            w.put_u32(n);
        }
        w.put_opt(self.audit.as_ref(), |w, a| a.snapshot(w));
    }
}

impl lastcpu_snap::Restore for SystemBus {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.cost.hop_latency = SimDuration::from_nanos(r.u64()?);
        self.cost.processing = SimDuration::from_nanos(r.u64()?);
        self.cost.per_byte_ps = r.u64()?;
        self.heartbeat_timeout = SimDuration::from_nanos(r.u64()?);
        self.next_id = r.u32()?;
        self.cur_corr = CorrId(r.u64()?);
        self.stats.messages = r.u64()?;
        self.stats.bytes = r.u64()?;
        self.stats.unicasts = r.u64()?;
        self.stats.broadcast_deliveries = r.u64()?;
        self.stats.map_ops = r.u64()?;
        self.stats.denials = r.u64()?;
        self.stats.flood_dropped = r.u64()?;
        self.stats.failures = r.u64()?;
        let n = r.len()?;
        self.order = Vec::with_capacity(n);
        for _ in 0..n {
            self.order.push(DeviceId(r.u32()?));
        }
        let n = r.len()?;
        self.devices = DetHashMap::default();
        for _ in 0..n {
            let id = DeviceId(r.u32()?);
            let name = r.str()?;
            let kind = r.str()?;
            let state = {
                let t = r.u8()?;
                device_state_from_tag(t)
                    .ok_or_else(|| r.corrupt(format!("bad DeviceState tag {t}")))?
            };
            let last_seen = SimTime::from_nanos(r.u64()?);
            let ns = r.len()?;
            let mut services = Vec::with_capacity(ns);
            for _ in 0..ns {
                services.push(decode_service_desc_snap(r)?);
            }
            self.devices.insert(
                id,
                DeviceEntry {
                    id,
                    name,
                    kind,
                    state,
                    last_seen,
                    services,
                },
            );
        }
        let n = r.len()?;
        self.controllers = DetHashMap::default();
        for _ in 0..n {
            let t = r.u8()?;
            let kind = crate::message::resource_kind_from_tag(t)
                .ok_or_else(|| r.corrupt(format!("bad ResourceKind tag {t}")))?;
            self.controllers.insert(kind, DeviceId(r.u32()?));
        }
        self.policy = SecurityPolicy::decode(r)?;
        let n = r.len()?;
        self.flood = DetHashMap::default();
        for _ in 0..n {
            let d = DeviceId(r.u32()?);
            let t = SimTime::from_nanos(r.u64()?);
            let c = r.u32()?;
            self.flood.insert(d, (t, c));
        }
        self.audit = r.opt(|r| {
            let mut a = BusAudit::default();
            a.restore(r)?;
            Ok(a)
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ServiceId, Token};

    fn hello(bus: &mut SystemBus, id: DeviceId) {
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: id,
                dst: Dst::Bus,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::Hello {
                    name: String::new(),
                    kind: String::new(),
                },
            },
            &mut fx,
        );
    }

    fn setup() -> (SystemBus, DeviceId, DeviceId, DeviceId) {
        let mut bus = SystemBus::new();
        let nic = bus.attach("nic0", "smart-nic");
        let ssd = bus.attach("ssd0", "smart-ssd");
        let mc = bus.attach("memctl0", "memory-controller");
        for d in [nic, ssd, mc] {
            hello(&mut bus, d);
        }
        (bus, nic, ssd, mc)
    }

    fn register_memctl(bus: &mut SystemBus, mc: DeviceId) {
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: mc,
                dst: Dst::Bus,
                req: RequestId(1),
                corr: CorrId::NONE,
                payload: Payload::RegisterController {
                    resource: ResourceKind::Memory,
                },
            },
            &mut fx,
        );
        assert!(matches!(
            &fx[0],
            BusEffect::Deliver { env, .. }
                if matches!(env.payload, Payload::BusAck { status: Status::Ok })
        ));
    }

    fn map_instruction(src: DeviceId, target: DeviceId) -> Envelope {
        Envelope {
            src,
            dst: Dst::Bus,
            req: RequestId(9),
            corr: CorrId::NONE,
            payload: Payload::MapInstruction {
                resource: ResourceKind::Memory,
                op: MapOp::Map,
                device: target,
                pasid: 1,
                va: 0x10000,
                pa: 0x200000,
                pages: 4,
                perms: 3,
            },
        }
    }

    #[test]
    fn attach_assigns_distinct_nonzero_ids() {
        let (bus, nic, ssd, mc) = setup();
        assert_ne!(nic, ssd);
        assert_ne!(ssd, mc);
        assert_ne!(nic, DeviceId::BUS);
        assert_eq!(bus.devices().count(), 3);
    }

    #[test]
    fn hello_makes_device_alive_and_acks() {
        let mut bus = SystemBus::new();
        let d = bus.attach("x", "y");
        assert_eq!(bus.device(d).unwrap().state, DeviceState::Attached);
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: d,
                dst: Dst::Bus,
                req: RequestId(5),
                corr: CorrId::NONE,
                payload: Payload::Hello {
                    name: "x".into(),
                    kind: "y".into(),
                },
            },
            &mut fx,
        );
        assert_eq!(bus.device(d).unwrap().state, DeviceState::Alive);
        match &fx[0] {
            BusEffect::Deliver { to, env, .. } => {
                assert_eq!(*to, d);
                assert_eq!(env.req, RequestId(5));
                assert_eq!(env.payload, Payload::HelloAck { assigned: d });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_sender_is_dropped() {
        let mut bus = SystemBus::new();
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: DeviceId(99),
                dst: Dst::Bus,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::Heartbeat,
            },
            &mut fx,
        );
        assert!(fx.is_empty());
    }

    #[test]
    fn unicast_routes_between_alive_devices() {
        let (mut bus, nic, ssd, _) = setup();
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Device(ssd),
                req: RequestId(2),
                corr: CorrId::NONE,
                payload: Payload::OpenRequest {
                    service: ServiceId(1),
                    token: Token::NONE,
                    params: vec![],
                },
            },
            &mut fx,
        );
        assert_eq!(fx.len(), 1);
        match &fx[0] {
            BusEffect::Deliver { to, env, latency } => {
                assert_eq!(*to, ssd);
                assert_eq!(env.src, nic);
                assert!(latency.as_nanos() > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unicast_to_dead_device_bounces() {
        let (mut bus, nic, ssd, _) = setup();
        let mut fx = Vec::new();
        bus.mark_failed(ssd, &mut fx).unwrap();
        fx.clear();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Device(ssd),
                req: RequestId(3),
                corr: CorrId::NONE,
                payload: Payload::Heartbeat,
            },
            &mut fx,
        );
        assert_eq!(fx.len(), 1);
        match &fx[0] {
            BusEffect::Deliver { to, env, .. } => {
                assert_eq!(*to, nic);
                assert!(matches!(
                    env.payload,
                    Payload::ErrorNotify {
                        code: ErrorCode::DeviceFailed,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcast_reaches_all_alive_except_sender() {
        let (mut bus, nic, _, _) = setup();
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Broadcast,
                req: RequestId(4),
                corr: CorrId::NONE,
                payload: Payload::Query {
                    pattern: "file:*".into(),
                },
            },
            &mut fx,
        );
        let recipients: Vec<DeviceId> = fx
            .iter()
            .map(|e| match e {
                BusEffect::Deliver { to, .. } => *to,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(recipients.len(), 2);
        assert!(!recipients.contains(&nic));
    }

    #[test]
    fn broadcast_latencies_are_serialized() {
        let (mut bus, nic, _, _) = setup();
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Broadcast,
                req: RequestId(4),
                corr: CorrId::NONE,
                payload: Payload::Heartbeat,
            },
            &mut fx,
        );
        let lats: Vec<u64> = fx
            .iter()
            .map(|e| match e {
                BusEffect::Deliver { latency, .. } => latency.as_nanos(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(lats[1] > lats[0]);
    }

    #[test]
    fn query_via_bus_is_rebroadcast_with_original_src() {
        let (mut bus, nic, ssd, mc) = setup();
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(6),
                corr: CorrId::NONE,
                payload: Payload::Query {
                    pattern: "file:/data/kv.db".into(),
                },
            },
            &mut fx,
        );
        assert_eq!(fx.len(), 2);
        for e in &fx {
            match e {
                BusEffect::Deliver { to, env, .. } => {
                    assert!(*to == ssd || *to == mc);
                    assert_eq!(env.src, nic, "owners must reply to the querier");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn controller_registration_first_wins() {
        let (mut bus, nic, _, mc) = setup();
        register_memctl(&mut bus, mc);
        assert_eq!(bus.controller_of(ResourceKind::Memory), Some(mc));
        // Second claimant is denied.
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(7),
                corr: CorrId::NONE,
                payload: Payload::RegisterController {
                    resource: ResourceKind::Memory,
                },
            },
            &mut fx,
        );
        assert!(matches!(
            &fx[0],
            BusEffect::Deliver { env, .. }
                if matches!(
                    env.payload,
                    Payload::BusAck {
                        status: Status::Denied
                    }
                )
        ));
        assert_eq!(bus.controller_of(ResourceKind::Memory), Some(mc));
        assert_eq!(bus.stats().denials, 1);
    }

    #[test]
    fn map_instruction_from_controller_programs_iommu() {
        let (mut bus, nic, _, mc) = setup();
        register_memctl(&mut bus, mc);
        let mut fx = Vec::new();
        bus.handle(SimTime::ZERO, map_instruction(mc, nic), &mut fx);
        assert!(fx.iter().any(|e| matches!(
            e,
            BusEffect::ProgramMap {
                device,
                pasid: 1,
                va: 0x10000,
                pa: 0x200000,
                pages: 4,
                perms: 3,
                ..
            } if *device == nic
        )));
        // Completion to the mapped device and ack to the controller.
        let delivered: Vec<(DeviceId, &'static str)> = fx
            .iter()
            .filter_map(|e| match e {
                BusEffect::Deliver { to, env, .. } => Some((*to, env.payload.kind_name())),
                _ => None,
            })
            .collect();
        assert!(delivered.contains(&(nic, "MapComplete")));
        assert!(delivered.contains(&(mc, "BusAck")));
        assert_eq!(bus.stats().map_ops, 1);
    }

    #[test]
    fn map_instruction_from_non_controller_denied() {
        let (mut bus, nic, ssd, mc) = setup();
        register_memctl(&mut bus, mc);
        let mut fx = Vec::new();
        // The NIC (a mere device) tries to program the SSD's IOMMU.
        bus.handle(SimTime::ZERO, map_instruction(nic, ssd), &mut fx);
        assert!(
            !fx.iter().any(|e| matches!(e, BusEffect::ProgramMap { .. })),
            "no mapping must be programmed"
        );
        assert!(matches!(
            &fx[0],
            BusEffect::Deliver { env, .. }
                if matches!(
                    env.payload,
                    Payload::BusAck {
                        status: Status::Denied
                    }
                )
        ));
        assert_eq!(bus.stats().denials, 1);
    }

    #[test]
    fn map_instruction_with_no_controller_registered_denied() {
        let (mut bus, nic, _, mc) = setup();
        let mut fx = Vec::new();
        bus.handle(SimTime::ZERO, map_instruction(mc, nic), &mut fx);
        assert!(!fx.iter().any(|e| matches!(e, BusEffect::ProgramMap { .. })));
    }

    #[test]
    fn map_to_dead_device_is_not_found() {
        let (mut bus, nic, _, mc) = setup();
        register_memctl(&mut bus, mc);
        let mut fx = Vec::new();
        bus.mark_failed(nic, &mut fx).unwrap();
        fx.clear();
        bus.handle(SimTime::ZERO, map_instruction(mc, nic), &mut fx);
        assert!(matches!(
            &fx[0],
            BusEffect::Deliver { env, .. }
                if matches!(
                    env.payload,
                    Payload::BusAck {
                        status: Status::NotFound
                    }
                )
        ));
    }

    #[test]
    fn zero_page_map_is_bad_request() {
        let (mut bus, nic, _, mc) = setup();
        register_memctl(&mut bus, mc);
        let mut env = map_instruction(mc, nic);
        if let Payload::MapInstruction { ref mut pages, .. } = env.payload {
            *pages = 0;
        }
        let mut fx = Vec::new();
        bus.handle(SimTime::ZERO, env, &mut fx);
        assert!(matches!(
            &fx[0],
            BusEffect::Deliver { env, .. }
                if matches!(
                    env.payload,
                    Payload::BusAck {
                        status: Status::BadRequest
                    }
                )
        ));
    }

    #[test]
    fn failed_device_is_fenced() {
        let (mut bus, nic, ssd, _) = setup();
        let mut fx = Vec::new();
        bus.mark_failed(nic, &mut fx).unwrap();
        fx.clear();
        // The fenced device tries to talk: dropped.
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Device(ssd),
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::Heartbeat,
            },
            &mut fx,
        );
        assert!(fx.is_empty());
    }

    #[test]
    fn mark_failed_notifies_and_resets() {
        let (mut bus, nic, ssd, mc) = setup();
        let mut fx = Vec::new();
        bus.mark_failed(ssd, &mut fx).unwrap();
        let notified: Vec<DeviceId> = fx
            .iter()
            .filter_map(|e| match e {
                BusEffect::Deliver { to, env, .. } => {
                    assert!(matches!(
                        env.payload,
                        Payload::DeviceFailed { device } if device == ssd
                    ));
                    Some(*to)
                }
                _ => None,
            })
            .collect();
        assert!(notified.contains(&nic));
        assert!(notified.contains(&mc));
        assert!(!notified.contains(&ssd));
        assert!(fx
            .iter()
            .any(|e| matches!(e, BusEffect::ResetDevice { device, .. } if *device == ssd)));
        assert_eq!(bus.stats().failures, 1);
    }

    #[test]
    fn failed_device_can_rejoin_with_hello() {
        let (mut bus, nic, _, _) = setup();
        let mut fx = Vec::new();
        bus.mark_failed(nic, &mut fx).unwrap();
        hello(&mut bus, nic);
        assert_eq!(bus.device(nic).unwrap().state, DeviceState::Alive);
    }

    #[test]
    fn heartbeat_timeout_detection() {
        let (mut bus, nic, _, _) = setup();
        bus.set_heartbeat_timeout(SimDuration::from_millis(1));
        let later = SimTime::ZERO + SimDuration::from_millis(5);
        // nic heartbeats late enough; others lapse.
        let mut fx = Vec::new();
        bus.handle(
            later,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::Heartbeat,
            },
            &mut fx,
        );
        let failed = bus.check_liveness(later, &mut fx);
        assert_eq!(failed.len(), 2);
        assert!(!failed.contains(&nic));
        assert_eq!(bus.device(nic).unwrap().state, DeviceState::Alive);
    }

    #[test]
    fn heartbeat_boundary_tick_fires() {
        // Regression: a sweep landing *exactly* on the deadline tick must
        // declare the device failed. With `now.since(last_seen) > timeout`
        // a sweep period that divides the timeout never observed a lapsed
        // device, so a dead device stayed "Alive" forever on deterministic
        // schedules.
        let (mut bus, nic, _, _) = setup();
        let timeout = SimDuration::from_millis(1);
        bus.set_heartbeat_timeout(timeout);
        let mut fx = Vec::new();
        // One tick before the deadline: still alive.
        let almost = SimTime::from_nanos(timeout.as_nanos() - 1);
        assert!(bus.check_liveness(almost, &mut fx).is_empty());
        assert_eq!(bus.device(nic).unwrap().state, DeviceState::Alive);
        // Exactly on the deadline: lapsed.
        let boundary = SimTime::ZERO + timeout;
        let failed = bus.check_liveness(boundary, &mut fx);
        assert!(failed.contains(&nic), "boundary tick must fire");
        assert_eq!(bus.device(nic).unwrap().state, DeviceState::Failed);
    }

    #[test]
    fn bye_departs_and_notifies() {
        let (mut bus, nic, _, _) = setup();
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::Bye,
            },
            &mut fx,
        );
        assert_eq!(bus.device(nic).unwrap().state, DeviceState::Departed);
        assert!(fx.iter().any(|e| matches!(
            e,
            BusEffect::Deliver { env, .. }
                if matches!(env.payload, Payload::DeviceFailed { .. })
        )));
        // Departed devices cannot come back with Hello (unlike Failed).
        hello(&mut bus, nic);
        assert_eq!(bus.device(nic).unwrap().state, DeviceState::Departed);
    }

    #[test]
    fn announce_records_and_rebroadcasts() {
        let (mut bus, nic, _, _) = setup();
        let svc = ServiceDesc {
            id: ServiceId(1),
            name: "kvs:frontend".into(),
            resource: ResourceKind::Network,
        };
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::Announce {
                    service: svc.clone(),
                },
            },
            &mut fx,
        );
        assert_eq!(bus.device(nic).unwrap().services, vec![svc.clone()]);
        assert_eq!(fx.len(), 2); // two other devices
                                 // Re-announcing the same id replaces, not duplicates.
        let mut svc2 = svc;
        svc2.name = "kvs:frontend-v2".into();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::Announce { service: svc2 },
            },
            &mut fx,
        );
        assert_eq!(bus.device(nic).unwrap().services.len(), 1);
        assert_eq!(bus.device(nic).unwrap().services[0].name, "kvs:frontend-v2");
    }

    #[test]
    fn withdraw_removes_service() {
        let (mut bus, nic, _, _) = setup();
        let svc = ServiceDesc {
            id: ServiceId(1),
            name: "kvs".into(),
            resource: ResourceKind::Network,
        };
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::Announce { service: svc },
            },
            &mut fx,
        );
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::Withdraw {
                    service: ServiceId(1),
                },
            },
            &mut fx,
        );
        assert!(bus.device(nic).unwrap().services.is_empty());
    }

    #[test]
    fn misdirected_payload_to_bus_is_bad_request() {
        let (mut bus, nic, _, _) = setup();
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(1),
                corr: CorrId::NONE,
                payload: Payload::Doorbell {
                    conn: crate::ids::ConnId(1),
                    value: 0,
                },
            },
            &mut fx,
        );
        assert!(matches!(
            &fx[0],
            BusEffect::Deliver { env, .. }
                if matches!(
                    env.payload,
                    Payload::BusAck {
                        status: Status::BadRequest
                    }
                )
        ));
    }

    /// Zero-copy contract: every recipient of a broadcast receives the
    /// *same* shared envelope allocation, and a unicast forwards the
    /// sender's envelope untouched (pointer-identical).
    #[test]
    fn broadcast_shares_one_envelope_and_unicast_forwards_it() {
        let (mut bus, nic, _, _) = setup();
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Broadcast,
                req: RequestId(4),
                corr: CorrId::NONE,
                payload: Payload::Heartbeat,
            },
            &mut fx,
        );
        let envs: Vec<&std::sync::Arc<Envelope>> = fx
            .iter()
            .map(|e| match e {
                BusEffect::Deliver { env, .. } => env,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(envs.len(), 2);
        assert!(
            std::sync::Arc::ptr_eq(envs[0], envs[1]),
            "broadcast must share one allocation across recipients"
        );

        // Unicast: the routed envelope is the very Arc the caller passed in.
        let (mut bus, nic, ssd, _) = setup();
        let original = std::sync::Arc::new(Envelope {
            src: nic,
            dst: Dst::Device(ssd),
            req: RequestId(2),
            corr: CorrId::NONE,
            payload: Payload::Heartbeat,
        });
        let mut fx = Vec::new();
        bus.handle(SimTime::ZERO, std::sync::Arc::clone(&original), &mut fx);
        match &fx[0] {
            BusEffect::Deliver { env, .. } => {
                assert!(
                    std::sync::Arc::ptr_eq(env, &original),
                    "unicast must forward, not clone"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The `rebroadcast` helper consolidation must not change
    /// `broadcast_deliveries` accounting: a bus-directed Query and a raw
    /// Broadcast each count one delivery per alive non-sender device.
    #[test]
    fn broadcast_deliveries_accounting_unchanged() {
        let (mut bus, nic, _, _) = setup();
        assert_eq!(bus.stats().broadcast_deliveries, 0);
        let mut fx = Vec::new();
        // Bus-directed Query → rebroadcast helper → 2 deliveries.
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(6),
                corr: CorrId::NONE,
                payload: Payload::Query {
                    pattern: "file:*".into(),
                },
            },
            &mut fx,
        );
        assert_eq!(bus.stats().broadcast_deliveries, 2);
        // Raw broadcast → 2 more.
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Broadcast,
                req: RequestId(7),
                corr: CorrId::NONE,
                payload: Payload::Heartbeat,
            },
            &mut fx,
        );
        assert_eq!(bus.stats().broadcast_deliveries, 4);
        // Bus-directed Announce and Withdraw also go through the helper.
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(8),
                corr: CorrId::NONE,
                payload: Payload::Announce {
                    service: ServiceDesc {
                        id: ServiceId(1),
                        name: "kvs".into(),
                        resource: ResourceKind::Network,
                    },
                },
            },
            &mut fx,
        );
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(9),
                corr: CorrId::NONE,
                payload: Payload::Withdraw {
                    service: ServiceId(1),
                },
            },
            &mut fx,
        );
        assert_eq!(bus.stats().broadcast_deliveries, 8);
    }

    #[test]
    fn stats_count_traffic() {
        let (mut bus, nic, ssd, _) = setup();
        let mut fx = Vec::new();
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Device(ssd),
                req: RequestId(1),
                corr: CorrId::NONE,
                payload: Payload::Heartbeat,
            },
            &mut fx,
        );
        let s = bus.stats();
        assert!(s.messages >= 4); // 3 hellos + this one
        assert!(s.bytes > 0);
        assert!(s.unicasts >= 4);
    }

    /// Regression for the E11 confused-deputy finding: claiming a *vacant*
    /// resource class must not grant the power to program IOMMU mappings.
    #[test]
    fn vacant_class_controller_cannot_instruct_maps() {
        let (mut bus, nic, ssd, mc) = setup();
        register_memctl(&mut bus, mc);
        bus.enable_audit(16);
        let mut fx = Vec::new();
        // The attacker successfully claims the vacant Compute class…
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(2),
                corr: CorrId::NONE,
                payload: Payload::RegisterController {
                    resource: ResourceKind::Compute,
                },
            },
            &mut fx,
        );
        assert!(matches!(
            &fx[0],
            BusEffect::Deliver { env, .. }
                if matches!(env.payload, Payload::BusAck { status: Status::Ok })
        ));
        fx.clear();
        // …but a MapInstruction under that class must be denied: only the
        // Memory class can instruct DRAM translations.
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: nic,
                dst: Dst::Bus,
                req: RequestId(3),
                corr: CorrId::NONE,
                payload: Payload::MapInstruction {
                    resource: ResourceKind::Compute,
                    op: MapOp::Map,
                    device: ssd,
                    pasid: 7,
                    va: 0x7000,
                    pa: 0x1000,
                    pages: 1,
                    perms: 3,
                },
            },
            &mut fx,
        );
        assert!(
            !fx.iter().any(|e| matches!(e, BusEffect::ProgramMap { .. })),
            "no IOMMU programming may result"
        );
        assert!(matches!(
            &fx[0],
            BusEffect::Deliver { to, env, .. }
                if *to == nic
                    && matches!(env.payload, Payload::BusAck { status: Status::Denied })
        ));
        let rec = *bus.audit().unwrap().records().last().unwrap();
        assert_eq!(rec.op, PrivOpKind::MapInstruction);
        assert_eq!(rec.verdict, BusVerdict::Denied);
        assert_eq!(rec.reason, Some(DenyReason::ResourceNotMemory));
    }

    #[test]
    fn map_instruction_verdicts_are_audited() {
        let (mut bus, nic, ssd, mc) = setup();
        bus.enable_audit(16);
        register_memctl(&mut bus, mc);
        let mut fx = Vec::new();
        bus.handle(SimTime::ZERO, map_instruction(nic, ssd), &mut fx); // denied
        bus.handle(SimTime::ZERO, map_instruction(mc, ssd), &mut fx); // allowed
        let audit = bus.audit().unwrap();
        assert_eq!(audit.denied(), 1);
        // RegisterController(memctl) + the legitimate map.
        assert_eq!(audit.allowed(), 2);
        let denied = audit.records()[1];
        assert_eq!(denied.src, nic);
        assert_eq!(denied.reason, Some(DenyReason::NotController));
        let allowed = audit.records()[2];
        assert_eq!(allowed.src, mc);
        assert_eq!(allowed.verdict, BusVerdict::Allowed);
        assert_eq!(allowed.target, Some(ssd));
    }

    #[test]
    fn shadow_announce_denied_under_policy() {
        let (mut bus, nic, ssd, _) = setup();
        bus.enable_audit(16);
        bus.set_security_policy(SecurityPolicy {
            deny_shadow_announce: true,
            ..SecurityPolicy::default()
        });
        let svc = |id: u16| ServiceDesc {
            id: ServiceId(id),
            name: "kvs:frontend".into(),
            resource: ResourceKind::Network,
        };
        let announce = |src: DeviceId, id: u16| Envelope {
            src,
            dst: Dst::Bus,
            req: RequestId(1),
            corr: CorrId::NONE,
            payload: Payload::Announce { service: svc(id) },
        };
        let mut fx = Vec::new();
        bus.handle(SimTime::ZERO, announce(nic, 1), &mut fx);
        assert!(bus
            .device(nic)
            .unwrap()
            .services
            .iter()
            .any(|s| s.name == "kvs:frontend"));
        fx.clear();
        // A different device announcing the same *name* is refused…
        bus.handle(SimTime::ZERO, announce(ssd, 2), &mut fx);
        assert!(matches!(
            &fx[0],
            BusEffect::Deliver { to, env, .. }
                if *to == ssd
                    && matches!(env.payload, Payload::BusAck { status: Status::Denied })
        ));
        assert!(bus.device(ssd).unwrap().services.is_empty());
        let rec = *bus.audit().unwrap().records().last().unwrap();
        assert_eq!(rec.reason, Some(DenyReason::ShadowAnnounce));
        fx.clear();
        // …while the owner can re-announce (refresh) its own service.
        bus.handle(SimTime::ZERO, announce(nic, 1), &mut fx);
        assert!(fx.iter().any(|e| matches!(
            e,
            BusEffect::Deliver { env, .. }
                if matches!(env.payload, Payload::Announce { .. })
        )));
    }

    #[test]
    fn spoofed_query_hits_are_shed_and_audited_under_policy() {
        let (mut bus, nic, ssd, mc) = setup();
        bus.enable_audit(16);
        bus.set_security_policy(SecurityPolicy {
            deny_shadow_announce: true,
            ..SecurityPolicy::default()
        });
        let svc = ServiceDesc {
            id: ServiceId(1),
            name: "file:/data/kv.db".into(),
            resource: ResourceKind::Storage,
        };
        let mut fx = Vec::new();
        // The SSD legitimately announces the file service.
        bus.handle(
            SimTime::ZERO,
            Envelope {
                src: ssd,
                dst: Dst::Bus,
                req: RequestId(1),
                corr: CorrId::NONE,
                payload: Payload::Announce {
                    service: svc.clone(),
                },
            },
            &mut fx,
        );
        fx.clear();
        let hit = |src: DeviceId, claimed: DeviceId| Envelope {
            src,
            dst: Dst::Device(nic),
            req: RequestId(2),
            corr: CorrId::NONE,
            payload: Payload::QueryHit {
                device: claimed,
                service: svc.clone(),
            },
        };
        // Spoof flavour 1: the NIC's discovery answer claims the *attacker*
        // (mc here) offers the SSD's service — sender never announced it.
        bus.handle(SimTime::ZERO, hit(mc, mc), &mut fx);
        // Spoof flavour 2: forged provenance — sender names a *different*
        // device as the offerer.
        bus.handle(SimTime::ZERO, hit(mc, ssd), &mut fx);
        assert!(fx.is_empty(), "spoofed hits are shed silently, got {fx:?}");
        let audit = bus.audit().unwrap();
        assert_eq!(audit.denied(), 2);
        for rec in audit.records() {
            assert_eq!(rec.op, PrivOpKind::Announce);
            assert_eq!(rec.reason, Some(DenyReason::ShadowAnnounce));
        }
        // The true owner's answer for its own announced service passes.
        bus.handle(SimTime::ZERO, hit(ssd, ssd), &mut fx);
        assert!(matches!(
            &fx[0],
            BusEffect::Deliver { to, env, .. }
                if *to == nic && matches!(env.payload, Payload::QueryHit { .. })
        ));
    }

    #[test]
    fn flood_limiter_sheds_and_audits_excess() {
        let (mut bus, nic, ssd, _) = setup();
        bus.enable_audit(16);
        bus.set_security_policy(SecurityPolicy {
            flood_limit: Some(3),
            flood_window: SimDuration::from_micros(10),
            ..SecurityPolicy::default()
        });
        fn hb(bus: &mut SystemBus, src: DeviceId, t: SimTime) {
            let mut fx = Vec::new();
            bus.handle(
                t,
                Envelope {
                    src,
                    dst: Dst::Bus,
                    req: RequestId(0),
                    corr: CorrId::NONE,
                    payload: Payload::Heartbeat,
                },
                &mut fx,
            );
        }
        let t0 = SimTime::ZERO;
        for _ in 0..8 {
            hb(&mut bus, nic, t0);
        }
        assert_eq!(bus.stats().flood_dropped, 5); // 8 sent, 3 allowed
        assert_eq!(bus.audit().unwrap().rate_limited(), 5);
        // Another sender is unaffected (the cap is per sender)…
        let mut fx = Vec::new();
        bus.handle(
            t0,
            Envelope {
                src: ssd,
                dst: Dst::Bus,
                req: RequestId(0),
                corr: CorrId::NONE,
                payload: Payload::Heartbeat,
            },
            &mut fx,
        );
        assert_eq!(bus.stats().flood_dropped, 5);
        // …and the window resets.
        hb(&mut bus, nic, t0 + SimDuration::from_micros(10));
        assert_eq!(bus.stats().flood_dropped, 5);
    }
}
