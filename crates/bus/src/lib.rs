//! The system management bus — the paper's missing hardware component.
//!
//! §2.2 of "The Last CPU": *"We propose the use of a new system bus
//! specifically for the purpose of inter-device communication ... The system
//! bus acts as the control plane that enables devices to control each other
//! but does not carry data. The system bus only provides a mechanism for
//! device communication and contains no policies."*
//!
//! This crate implements that bus as a message-switched state machine:
//!
//! - [`ids`]: device, service, request, connection and token identifiers.
//! - [`wire`]: a compact self-describing binary codec — the bus is hardware,
//!   so its protocol is specified at the byte level and property-tested for
//!   round-tripping.
//! - [`message`]: the protocol itself — registration/liveness, SSDP-like
//!   discovery, service sessions, memory allocation and grants, doorbells,
//!   error/reset flows (the complete vocabulary behind the paper's Figure 2).
//! - [`bus`]: the privileged bus engine. It routes messages, tracks
//!   liveness, answers discovery, and — the security-critical part —
//!   emits IOMMU programming effects *only* when instructed by the
//!   registered controller of the resource being mapped (§2.2 "Address
//!   Translation").
//!
//! The bus is deliberately policy-free: it never decides *whether* memory
//! should be shared, only carries the decision of the memory controller and
//! performs the privileged write. It is also deliberately data-free: bulk
//! data moves over the data plane (DMA through IOMMUs); an experiment (E6)
//! measures why conflating the planes is a bad idea.
//!
//! The engine is a pure state machine: `handle()` consumes an envelope and
//! appends [`bus::BusEffect`]s for the surrounding simulator to apply. That
//! keeps the crate independent of any particular device or memory model and
//! makes every protocol rule unit-testable in isolation.
//!
//! For the E11 security evaluation, [`audit`] adds an opt-in record of
//! every privileged-operation verdict plus hardening policy knobs
//! (shadow-announce denial, flood limiting); see `DESIGN.md §11` for the
//! threat model this evidence feeds.

#![warn(missing_docs)]

pub mod audit;
pub mod bus;
pub mod cost;
pub mod ids;
pub mod message;
pub mod retry;
pub mod wire;

pub use audit::{
    BusAudit, BusAuditDelta, BusAuditRecord, BusVerdict, DenyReason, PrivOpKind, SecurityPolicy,
};
pub use bus::{BusEffect, BusError, SystemBus};
pub use cost::BusCostModel;
pub use ids::{ConnId, DeviceId, RequestId, ServiceId, Token};
pub use lastcpu_sim::CorrId;
pub use message::{Dst, Envelope, ErrorCode, MapOp, Payload, ResourceKind, ServiceDesc, Status};
pub use retry::{RetryConfig, RetryStats, RetryVerdict, RpcTracker};
