//! Identifiers used on the bus wire.
//!
//! These are deliberately plain integers: the bus is hardware and addresses
//! devices the way PCIe addresses functions — by number, assigned at
//! registration time, before any software naming exists (§2.3: "there must
//! be an independent method of addressing devices before virtual address
//! spaces are set up").

use std::fmt;

/// A bus address for one device, assigned by the bus at registration.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeviceId(pub u32);

/// A device-local service index. `(DeviceId, ServiceId)` names one service
/// instance system-wide.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServiceId(pub u16);

/// Correlates a response with its request. Unique per sender.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(pub u64);

/// An open service connection (one isolated context on the serving device).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ConnId(pub u64);

/// An authorization token, issued by an authentication service and presented
/// on open requests (§3 step 3; §4 "Access Control").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Token(pub u128);

impl DeviceId {
    /// The bus itself, addressable for privileged requests.
    pub const BUS: DeviceId = DeviceId(0);
}

impl Token {
    /// The empty token, accepted only by services with no access control.
    pub const NONE: Token = Token(0);
}

impl fmt::Debug for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == DeviceId::BUS {
            write!(f, "dev:BUS")
        } else {
            write!(f, "dev:{}", self.0)
        }
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc:{}", self.0)
    }
}

impl fmt::Debug for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req:{}", self.0)
    }
}

impl fmt::Debug for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn:{}", self.0)
    }
}

impl fmt::Debug for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "token:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_id_is_zero() {
        assert_eq!(DeviceId::BUS, DeviceId(0));
        assert_eq!(format!("{:?}", DeviceId::BUS), "dev:BUS");
        assert_eq!(format!("{:?}", DeviceId(3)), "dev:3");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(DeviceId(1));
        s.insert(DeviceId(1));
        assert_eq!(s.len(), 1);
        assert!(ServiceId(1) < ServiceId(2));
        assert!(RequestId(1) < RequestId(2));
    }
}
