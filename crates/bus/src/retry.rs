//! Per-request timeout and bounded-backoff retry for bus RPCs.
//!
//! The paper's bus is "best effort with failure notification" (§2.2): a
//! request can be lost to a dropped wire message, a crashed peer, or a
//! corrupted frame, and the requester must notice and recover on its own.
//! Before this module, every requester in the tree either blocked forever
//! (the KVS server wedging into `Failed`) or retried inline without bound
//! (the FTL's old `retire_block` loop). Both behaviours make fault-injection
//! experiments meaningless: a lost message either hangs the run or hides
//! inside an unbounded loop.
//!
//! [`RpcTracker`] is the shared fix: a pure state machine that remembers
//! every in-flight request expecting a reply ([`Payload::expects_reply`]),
//! assigns it a virtual-time deadline, and — when the deadline lapses —
//! either schedules a resend after a [`BackoffPolicy`] delay or gives the
//! original envelope back to the caller as a terminal failure. Deadlines
//! live *here*, in tracker entries, never on the wire: the bus protocol's
//! byte format is unchanged, and retransmissions are byte-identical to the
//! original send (same `req`, same `corr`), so receivers can deduplicate
//! and traces still correlate.
//!
//! Like [`SystemBus`](crate::bus::SystemBus), the tracker is pure: it never
//! schedules events itself. The simulator calls [`RpcTracker::track`] when a
//! request leaves a device, [`RpcTracker::complete`] when the matching reply
//! arrives, and [`RpcTracker::expire`] from a periodic sweep; the returned
//! [`RetryVerdict`]s tell the simulator what to do. Jitter comes from a
//! caller-provided [`DetRng`], so a seeded run replays its retry schedule
//! bit-identically.

use crate::ids::{DeviceId, RequestId};
use crate::message::{Dst, Envelope, Payload};
use lastcpu_sim::{BackoffPolicy, DetHashMap, DetRng, SimDuration, SimTime};

impl Payload {
    /// Whether this payload is a request that expects a matching reply,
    /// making it eligible for timeout tracking and retransmission.
    ///
    /// Discovery `Query` is deliberately excluded: zero `QueryHit`s is a
    /// legitimate answer ("nobody offers that service"), so a missing reply
    /// is not evidence of loss. Notifications, responses, and beacons never
    /// expect replies.
    pub fn expects_reply(&self) -> bool {
        matches!(
            self,
            Payload::Hello { .. }
                | Payload::OpenRequest { .. }
                | Payload::CloseRequest { .. }
                | Payload::MemAlloc { .. }
                | Payload::MemFree { .. }
                | Payload::Share { .. }
                | Payload::RegisterController { .. }
                | Payload::MapInstruction { .. }
                | Payload::ResetRequest
        )
    }
}

/// Whether `reply` is the reply kind that answers `request`.
fn reply_pairs(request: &Payload, reply: &Payload) -> bool {
    matches!(
        (request, reply),
        (Payload::Hello { .. }, Payload::HelloAck { .. })
            | (Payload::OpenRequest { .. }, Payload::OpenResponse { .. })
            | (Payload::CloseRequest { .. }, Payload::CloseResponse { .. })
            | (Payload::MemAlloc { .. }, Payload::MemAllocResponse { .. })
            | (Payload::MemFree { .. }, Payload::MemFreeResponse { .. })
            | (Payload::Share { .. }, Payload::ShareResponse { .. })
            | (Payload::RegisterController { .. }, Payload::BusAck { .. })
            | (Payload::MapInstruction { .. }, Payload::BusAck { .. })
            | (Payload::MapInstruction { .. }, Payload::MapComplete { .. })
            | (Payload::ResetRequest, Payload::ResetDone)
    )
}

/// Configuration for the RPC retry state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// How long to wait for a reply before declaring the attempt lost.
    pub timeout: SimDuration,
    /// Backoff schedule between attempts (also bounds the attempt count).
    pub backoff: BackoffPolicy,
}

impl Default for RetryConfig {
    /// 200µs reply timeout with the shared default backoff policy
    /// (10µs base doubling to a 1ms cap, 5 retries, 25% jitter). The
    /// timeout is an order of magnitude above a healthy request/response
    /// round trip (two bus hops plus handler time, ~1–20µs), so spurious
    /// retransmissions under load are rare.
    fn default() -> Self {
        RetryConfig {
            timeout: SimDuration::from_micros(200),
            backoff: BackoffPolicy::default(),
        }
    }
}

/// One in-flight tracked request.
#[derive(Debug, Clone)]
struct PendingRpc {
    /// The original envelope, kept for byte-identical retransmission.
    env: Envelope,
    /// Virtual time the *first* attempt was sent (recovery-latency base).
    first_sent: SimTime,
    /// Retries performed so far (0 = only the original send).
    retries: u32,
    /// When the current attempt times out.
    deadline: SimTime,
}

/// What the simulator must do about a timed-out request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryVerdict {
    /// Retransmit `env` (byte-identical to the original) at `send_at`;
    /// the tracker has already re-armed the deadline for this attempt.
    Resend {
        /// Envelope to put back on the wire.
        env: Envelope,
        /// Virtual time of the retransmission (now + backoff delay).
        send_at: SimTime,
        /// Which retry this is (1-based).
        attempt: u32,
    },
    /// The retry budget is exhausted; the request is abandoned and the
    /// caller must surface a terminal error to the requester.
    GiveUp {
        /// The abandoned envelope.
        env: Envelope,
        /// Virtual time the first attempt was sent.
        first_sent: SimTime,
        /// Total attempts made (original + retries).
        attempts: u32,
    },
}

/// Aggregate counters for one tracker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Requests registered for tracking.
    pub tracked: u64,
    /// Requests completed by a matching reply.
    pub completed: u64,
    /// Retransmissions issued.
    pub retries: u64,
    /// Requests abandoned after exhausting the budget.
    pub give_ups: u64,
    /// Completions that arrived only after at least one retry.
    pub recovered: u64,
}

/// Timeout/retry state machine for bus RPCs, keyed by
/// `(requester, request id)`.
///
/// Request ids are allocated per-device (each slot has its own counter), so
/// the pair is unique across in-flight requests. A reply is matched by the
/// requester's id and the echoed request id — replies echo `req` by
/// protocol, so no payload inspection is needed.
#[derive(Debug, Default)]
pub struct RpcTracker {
    config: RetryConfig,
    pending: DetHashMap<(DeviceId, RequestId), PendingRpc>,
    stats: RetryStats,
}

impl RpcTracker {
    /// Creates a tracker with the given policy.
    pub fn new(config: RetryConfig) -> Self {
        RpcTracker {
            config,
            pending: DetHashMap::default(),
            stats: RetryStats::default(),
        }
    }

    /// The active policy.
    pub fn config(&self) -> RetryConfig {
        self.config
    }

    /// Aggregate counters.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Number of requests currently awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Registers an outgoing envelope if it is a trackable request.
    ///
    /// Returns the reply deadline when tracking was armed. Broadcasts are
    /// never tracked (no single responder), and re-sending an envelope that
    /// is already tracked (a retransmission) does not reset its retry
    /// count.
    pub fn track(&mut self, now: SimTime, env: &Envelope) -> Option<SimTime> {
        if !env.payload.expects_reply() || matches!(env.dst, Dst::Broadcast) {
            return None;
        }
        let key = (env.src, env.req);
        if self.pending.contains_key(&key) {
            return None;
        }
        let deadline = now + self.config.timeout;
        self.pending.insert(
            key,
            PendingRpc {
                env: env.clone(),
                first_sent: now,
                retries: 0,
                deadline,
            },
        );
        self.stats.tracked += 1;
        Some(deadline)
    }

    /// Marks a request complete because `reply`, addressed to `requester`
    /// and echoing `req`, was delivered. Returns `true` if the reply matched
    /// a tracked request (a late duplicate after give-up, or a reply kind
    /// that does not pair with the tracked request, returns `false`).
    ///
    /// Kind pairing matters because request ids are only unique *per
    /// device*: a `MapComplete` notification to a device must not complete
    /// an unrelated request of that device that happens to share an id.
    pub fn complete(&mut self, requester: DeviceId, req: RequestId, reply: &Payload) -> bool {
        let key = (requester, req);
        let matches = self
            .pending
            .get(&key)
            .is_some_and(|p| reply_pairs(&p.env.payload, reply));
        if !matches {
            return false;
        }
        let p = self.pending.remove(&key).expect("checked above");
        self.stats.completed += 1;
        if p.retries > 0 {
            self.stats.recovered += 1;
        }
        true
    }

    /// Sweeps for lapsed deadlines at virtual time `now`.
    ///
    /// Each expired entry yields one [`RetryVerdict`]: either a
    /// retransmission (deadline re-armed to `send_at + timeout`) or a
    /// terminal [`RetryVerdict::GiveUp`] (entry removed). Verdicts are
    /// returned in deterministic key order so a seeded run replays exactly.
    pub fn expire(&mut self, now: SimTime, rng: &mut DetRng) -> Vec<RetryVerdict> {
        let mut expired: Vec<(DeviceId, RequestId)> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(k, _)| *k)
            .collect();
        // HashMap iteration order is nondeterministic; sort so the jitter
        // draws (and thus the whole replay) are stable.
        expired.sort_by_key(|(d, r)| (d.0, r.0));
        let mut verdicts = Vec::with_capacity(expired.len());
        for key in expired {
            let p = self.pending.get_mut(&key).expect("key collected above");
            let next = p.retries + 1;
            match self.config.backoff.delay_jittered(next, rng) {
                Some(delay) => {
                    p.retries = next;
                    let send_at = now + delay;
                    p.deadline = send_at + self.config.timeout;
                    self.stats.retries += 1;
                    verdicts.push(RetryVerdict::Resend {
                        env: p.env.clone(),
                        send_at,
                        attempt: next,
                    });
                }
                None => {
                    let p = self.pending.remove(&key).expect("present");
                    self.stats.give_ups += 1;
                    verdicts.push(RetryVerdict::GiveUp {
                        attempts: p.retries + 1,
                        first_sent: p.first_sent,
                        env: p.env,
                    });
                }
            }
        }
        verdicts
    }

    /// The earliest pending deadline, if any — lets the simulator schedule
    /// its next sweep exactly instead of polling.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.values().map(|p| p.deadline).min()
    }

    /// Drops every tracked request from `device` (it crashed or departed;
    /// its in-flight requests will be re-issued after re-registration, not
    /// retransmitted into the void). Returns how many were dropped.
    pub fn forget_requester(&mut self, device: DeviceId) -> usize {
        let before = self.pending.len();
        self.pending.retain(|(src, _), _| *src != device);
        before - self.pending.len()
    }
}

impl lastcpu_snap::Snapshot for RpcTracker {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.config.timeout.as_nanos());
        w.put_u64(self.config.backoff.base.as_nanos());
        w.put_u64(self.config.backoff.cap.as_nanos());
        w.put_u32(self.config.backoff.max_retries);
        w.put_u32(self.config.backoff.jitter_pct);
        w.put_u64(self.stats.tracked);
        w.put_u64(self.stats.completed);
        w.put_u64(self.stats.retries);
        w.put_u64(self.stats.give_ups);
        w.put_u64(self.stats.recovered);
        let mut keys: Vec<_> = self.pending.keys().copied().collect();
        keys.sort_by_key(|(d, r)| (d.0, r.0));
        w.put_len(keys.len());
        for key in keys {
            let p = &self.pending[&key];
            w.put_u32(key.0 .0);
            w.put_u64(key.1 .0);
            w.put_bytes(&p.env.encode());
            w.put_u64(p.first_sent.as_nanos());
            w.put_u32(p.retries);
            w.put_u64(p.deadline.as_nanos());
        }
    }
}

impl lastcpu_snap::Restore for RpcTracker {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.config.timeout = SimDuration::from_nanos(r.u64()?);
        self.config.backoff.base = SimDuration::from_nanos(r.u64()?);
        self.config.backoff.cap = SimDuration::from_nanos(r.u64()?);
        self.config.backoff.max_retries = r.u32()?;
        self.config.backoff.jitter_pct = r.u32()?;
        self.stats.tracked = r.u64()?;
        self.stats.completed = r.u64()?;
        self.stats.retries = r.u64()?;
        self.stats.give_ups = r.u64()?;
        self.stats.recovered = r.u64()?;
        let n = r.len()?;
        self.pending = DetHashMap::default();
        for _ in 0..n {
            let key = (DeviceId(r.u32()?), RequestId(r.u64()?));
            let body = r.bytes()?;
            let env = Envelope::decode(&body)
                .map_err(|e| r.corrupt(format!("pending rpc envelope: {e}")))?;
            let p = PendingRpc {
                env,
                first_sent: SimTime::from_nanos(r.u64()?),
                retries: r.u32()?,
                deadline: SimTime::from_nanos(r.u64()?),
            };
            self.pending.insert(key, p);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ConnId, Token};
    use crate::message::Status;
    use lastcpu_sim::CorrId;

    fn req_env(src: u32, req: u64) -> Envelope {
        Envelope {
            src: DeviceId(src),
            dst: Dst::Device(DeviceId(1)),
            req: RequestId(req),
            corr: CorrId(7),
            payload: Payload::MemAlloc {
                pasid: 1,
                va: 0x1000,
                bytes: 4096,
                perms: 3,
            },
        }
    }

    fn cfg(max_retries: u32) -> RetryConfig {
        RetryConfig {
            timeout: SimDuration::from_micros(100),
            backoff: BackoffPolicy {
                base: SimDuration::from_micros(10),
                cap: SimDuration::from_micros(160),
                max_retries,
                jitter_pct: 0,
            },
        }
    }

    #[test]
    fn expects_reply_classification() {
        assert!(Payload::MemAlloc {
            pasid: 0,
            va: 0,
            bytes: 0,
            perms: 0
        }
        .expects_reply());
        assert!(Payload::OpenRequest {
            service: crate::ids::ServiceId(1),
            token: Token(0),
            params: vec![],
        }
        .expects_reply());
        assert!(Payload::ResetRequest.expects_reply());
        assert!(Payload::Hello {
            name: "x".into(),
            kind: "y".into()
        }
        .expects_reply());
        // Replies, beacons, notifications, and discovery do not.
        assert!(!Payload::MemAllocResponse {
            status: Status::Ok,
            region: 0
        }
        .expects_reply());
        assert!(!Payload::Heartbeat.expects_reply());
        assert!(!Payload::Doorbell {
            conn: ConnId(1),
            value: 0
        }
        .expects_reply());
        assert!(!Payload::Query {
            pattern: "*".into()
        }
        .expects_reply());
    }

    #[test]
    fn reply_before_deadline_completes() {
        let mut t = RpcTracker::new(cfg(3));
        let now = SimTime::from_nanos(1_000);
        let env = req_env(5, 42);
        let deadline = t.track(now, &env).expect("tracked");
        assert_eq!(deadline, now + SimDuration::from_micros(100));
        assert_eq!(t.in_flight(), 1);
        let reply = Payload::MemAllocResponse {
            status: Status::Ok,
            region: 1,
        };
        assert!(t.complete(DeviceId(5), RequestId(42), &reply));
        assert_eq!(t.in_flight(), 0);
        let s = t.stats();
        assert_eq!(
            (s.tracked, s.completed, s.retries, s.recovered),
            (1, 1, 0, 0)
        );
        // A duplicate reply after completion is ignored.
        assert!(!t.complete(DeviceId(5), RequestId(42), &reply));
    }

    #[test]
    fn broadcasts_and_nonrequests_not_tracked() {
        let mut t = RpcTracker::new(cfg(3));
        let mut bcast = req_env(5, 1);
        bcast.dst = Dst::Broadcast;
        assert!(t.track(SimTime::ZERO, &bcast).is_none());
        let beat = Envelope {
            payload: Payload::Heartbeat,
            ..req_env(5, 2)
        };
        assert!(t.track(SimTime::ZERO, &beat).is_none());
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn expiry_resends_with_growing_backoff_then_gives_up() {
        let mut t = RpcTracker::new(cfg(2));
        let mut rng = DetRng::new(9);
        let env = req_env(5, 42);
        t.track(SimTime::ZERO, &env);

        // First expiry: resend after base delay (10µs, no jitter).
        let mut now = SimTime::ZERO + SimDuration::from_micros(100);
        let v = t.expire(now, &mut rng);
        assert_eq!(v.len(), 1);
        match &v[0] {
            RetryVerdict::Resend {
                env: e,
                send_at,
                attempt,
            } => {
                assert_eq!(e, &env, "retransmission is byte-identical");
                assert_eq!(*attempt, 1);
                assert_eq!(*send_at, now + SimDuration::from_micros(10));
            }
            other => panic!("expected resend, got {other:?}"),
        }

        // Second expiry: doubled delay.
        now = t.next_deadline().expect("re-armed");
        let v = t.expire(now, &mut rng);
        match &v[0] {
            RetryVerdict::Resend {
                send_at, attempt, ..
            } => {
                assert_eq!(*attempt, 2);
                assert_eq!(*send_at, now + SimDuration::from_micros(20));
            }
            other => panic!("expected resend, got {other:?}"),
        }

        // Third expiry exceeds max_retries=2: give up, entry removed.
        now = t.next_deadline().expect("re-armed");
        let v = t.expire(now, &mut rng);
        match &v[0] {
            RetryVerdict::GiveUp {
                env: e, attempts, ..
            } => {
                assert_eq!(e, &env);
                assert_eq!(*attempts, 3, "original + 2 retries");
            }
            other => panic!("expected give-up, got {other:?}"),
        }
        assert_eq!(t.in_flight(), 0);
        assert!(t.next_deadline().is_none());
        let s = t.stats();
        assert_eq!((s.retries, s.give_ups, s.completed), (2, 1, 0));
    }

    #[test]
    fn late_reply_after_retry_counts_as_recovered() {
        let mut t = RpcTracker::new(cfg(3));
        let mut rng = DetRng::new(9);
        t.track(SimTime::ZERO, &req_env(5, 42));
        let now = SimTime::ZERO + SimDuration::from_micros(100);
        assert_eq!(t.expire(now, &mut rng).len(), 1);
        let reply = Payload::MemAllocResponse {
            status: Status::Ok,
            region: 1,
        };
        assert!(t.complete(DeviceId(5), RequestId(42), &reply));
        assert_eq!(t.stats().recovered, 1);
    }

    #[test]
    fn expire_order_is_deterministic_across_runs() {
        let run = || {
            let mut t = RpcTracker::new(RetryConfig {
                timeout: SimDuration::from_micros(100),
                backoff: BackoffPolicy {
                    base: SimDuration::from_micros(10),
                    cap: SimDuration::from_micros(160),
                    max_retries: 3,
                    jitter_pct: 25,
                },
            });
            let mut rng = DetRng::new(77);
            // Insert in scrambled order; HashMap order must not leak.
            for (src, req) in [(9u32, 3u64), (2, 8), (9, 1), (4, 5), (2, 2)] {
                t.track(SimTime::ZERO, &req_env(src, req));
            }
            t.expire(SimTime::from_nanos(100_000), &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same verdicts, same jitter");
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn forget_requester_drops_only_that_device() {
        let mut t = RpcTracker::new(cfg(3));
        t.track(SimTime::ZERO, &req_env(5, 1));
        t.track(SimTime::ZERO, &req_env(5, 2));
        t.track(SimTime::ZERO, &req_env(6, 1));
        assert_eq!(t.forget_requester(DeviceId(5)), 2);
        assert_eq!(t.in_flight(), 1);
        assert!(t.complete(
            DeviceId(6),
            RequestId(1),
            &Payload::MemAllocResponse {
                status: Status::Ok,
                region: 1
            }
        ));
    }

    #[test]
    fn retransmission_does_not_rearm_tracking() {
        let mut t = RpcTracker::new(cfg(3));
        let env = req_env(5, 42);
        t.track(SimTime::ZERO, &env);
        // The simulator calls track() again when the resend goes out; the
        // existing entry (with its retry count) must win.
        assert!(t.track(SimTime::from_nanos(500), &env).is_none());
        assert_eq!(t.stats().tracked, 1);
        assert_eq!(t.in_flight(), 1);
    }
}
