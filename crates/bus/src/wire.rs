//! Byte-level codec for bus messages.
//!
//! The bus is (hypothetical) hardware, so its protocol is specified at the
//! byte level: little-endian fixed-width integers, LEB128 varints for
//! lengths and counts, length-prefixed UTF-8 strings and byte blobs. The
//! codec is strict — trailing bytes, truncation, over-long varints and
//! invalid UTF-8 are all decode errors — because a permissive parser on a
//! privileged bus is an attack surface.

use std::fmt;

/// Maximum length accepted for any string or blob (1 MiB).
///
/// The control plane does not carry data (§2.2); anything near this limit is
/// a protocol abuse, and the cap keeps a malicious length prefix from
/// ballooning allocation.
pub const MAX_FIELD_LEN: usize = 1 << 20;

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// A varint used more than 10 bytes.
    VarintOverflow,
    /// A length prefix exceeded [`MAX_FIELD_LEN`].
    FieldTooLong {
        /// The claimed length.
        len: u64,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// An enum discriminant was out of range.
    BadDiscriminant {
        /// The context (type name) in which the discriminant appeared.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Decoding finished but input bytes remained.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
    /// The frame check sequence did not match the frame body: the message
    /// was corrupted in flight and must be dropped (the sender's RPC
    /// timeout retransmits it).
    ChecksumMismatch {
        /// FCS carried by the frame.
        expected: u32,
        /// FCS computed over the received body.
        actual: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::VarintOverflow => write!(f, "varint overflow"),
            WireError::FieldTooLong { len } => write!(f, "field length {len} exceeds cap"),
            WireError::InvalidUtf8 => write!(f, "invalid utf-8 in string field"),
            WireError::BadDiscriminant { what, value } => {
                write!(f, "bad {what} discriminant {value}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
            WireError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "frame check mismatch: frame says {expected:#010x}, body hashes to {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// The frame check sequence: 32-bit FNV-1a over the frame body.
///
/// Real interconnects protect every TLP/flit with a CRC (PCIe LCRC, CXL
/// flit CRC); without one, a single flipped bit can alias one valid
/// protocol message into another. (The E4 fault-injection matrix found
/// exactly this: a bit-flipped `Heartbeat` decoded as a clean `Bye`,
/// silently deregistering the device so liveness monitoring stopped
/// watching it.) FNV-1a is not a CRC, but it has the property the
/// simulation needs: any small corruption changes the check word, so the
/// receiver drops the frame and the sender's RPC timeout retransmits.
pub fn frame_check(body: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in body {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Number of bytes [`WireWriter::varint`] emits for `v`, without emitting
/// them. Used by `Envelope::encoded_len` to compute wire sizes on the
/// routing path without materializing the frame.
pub fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Append-only encoder.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer that appends into `buf` (typically a recycled pool buffer),
    /// so hot-path encoders reuse storage instead of allocating per message.
    pub fn with_buf(buf: Vec<u8>) -> Self {
        WireWriter { buf }
    }

    /// Finishes encoding, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an unsigned LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(&mut self, b: &[u8]) {
        self.varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Writes a boolean as one byte.
    pub fn boolean(&mut self, v: bool) {
        self.u8(v as u8);
    }
}

/// Cursor-based decoder.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps `buf` for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every input byte was consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("len 16"),
        ))
    }

    /// Reads an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for i in 0..10 {
            let byte = self.u8()?;
            let bits = (byte & 0x7f) as u64;
            if i == 9 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= bits << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::VarintOverflow)
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        Ok(self.bytes_ref()?.to_vec())
    }

    /// Reads a length-prefixed byte blob, borrowed from the input. The
    /// zero-alloc decode paths use this to inspect keys/values in place.
    pub fn bytes_ref(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.varint()?;
        if len as usize > MAX_FIELD_LEN {
            return Err(WireError::FieldTooLong { len });
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads a boolean byte (strictly 0 or 1).
    pub fn boolean(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::BadDiscriminant {
                what: "bool",
                value: v as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = WireWriter::new();
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEADBEEF);
        w.u64(u64::MAX);
        w.u128(u128::MAX - 1);
        w.boolean(true);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.u128().unwrap(), u128::MAX - 1);
        assert!(r.boolean().unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = WireWriter::new();
        w.u64(7);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes[..5]);
        assert_eq!(r.u64(), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        r.u8().unwrap();
        assert_eq!(
            r.expect_end(),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn string_utf8_enforced() {
        let mut w = WireWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.string(), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn oversize_length_rejected_without_allocation() {
        // Claim a 2^40-byte blob in a 3-byte message.
        let mut w = WireWriter::new();
        w.varint(1 << 40);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.bytes(), Err(WireError::FieldTooLong { .. })));
    }

    #[test]
    fn bool_is_strict() {
        let mut r = WireReader::new(&[2]);
        assert!(matches!(
            r.boolean(),
            Err(WireError::BadDiscriminant { .. })
        ));
    }

    #[test]
    fn varint_overlong_rejected() {
        let bytes = [0x80u8; 11];
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn varint_max_value_round_trips() {
        let mut w = WireWriter::new();
        w.varint(u64::MAX);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.varint().unwrap(), u64::MAX);
    }

    proptest! {
        #[test]
        fn prop_varint_round_trips(v: u64) {
            let mut w = WireWriter::new();
            w.varint(v);
            let bytes = w.finish();
            let mut r = WireReader::new(&bytes);
            prop_assert_eq!(r.varint().unwrap(), v);
            r.expect_end().unwrap();
        }

        #[test]
        fn prop_blob_round_trips(data: Vec<u8>) {
            let mut w = WireWriter::new();
            w.bytes(&data);
            let bytes = w.finish();
            let mut r = WireReader::new(&bytes);
            prop_assert_eq!(r.bytes().unwrap(), data);
        }

        #[test]
        fn prop_string_round_trips(s: String) {
            let mut w = WireWriter::new();
            w.string(&s);
            let bytes = w.finish();
            let mut r = WireReader::new(&bytes);
            prop_assert_eq!(r.string().unwrap(), s);
        }

        #[test]
        fn prop_decoder_never_panics_on_garbage(data: Vec<u8>) {
            let mut r = WireReader::new(&data);
            // Whatever the bytes are, decoding returns Ok or Err, never panics.
            let _ = r.varint();
            let mut r2 = WireReader::new(&data);
            let _ = r2.bytes();
            let mut r3 = WireReader::new(&data);
            let _ = r3.string();
        }
    }
}
