//! Golden-file tests for the machine-readable exporters.
//!
//! The JSONL, Chrome `trace_event`, and Prometheus exports are consumed by
//! external tooling (grep pipelines, Perfetto, scrapers), so their exact
//! bytes are a compatibility surface: a formatting drift that every unit
//! test tolerates can still break a downstream parser. These tests pin each
//! exporter's output for a fixed virtual-time fixture byte-for-byte against
//! checked-in golden files.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p lastcpu-sim --test golden_export
//! ```
//!
//! The fixture uses only virtual time and fixed metric values — no wall
//! clock, hash-map order, or host dependence — so the outputs are stable
//! across machines and runs by construction.

use std::path::PathBuf;

use lastcpu_sim::export::{metrics_json, metrics_prometheus, trace_chrome, trace_jsonl};
use lastcpu_sim::{CorrId, MetricsHub, SimDuration, SimTime, TraceData, TraceSink};

/// A small trace exercising every syntactic corner the exporters must
/// handle: correlation ids, id-less records, JSON-hostile strings, and the
/// E12 record variants (`Stage`, `LinkHop`).
fn fixture_sink() -> TraceSink {
    let mut t = TraceSink::bounded(64);
    t.emit_data(
        SimTime::from_nanos(100),
        "nic0",
        CorrId(1),
        TraceData::Discovery {
            pattern: "file:*".into(),
            dst: "Bus".into(),
        },
    );
    t.emit_data(
        SimTime::from_nanos(350),
        "bus",
        CorrId(1),
        TraceData::Deliver {
            to: "nic0".into(),
            kind: "QueryHit",
        },
    );
    t.emit_data(
        SimTime::from_nanos(700),
        "m0/kvs.router",
        CorrId::NONE,
        TraceData::Stage {
            stage: "router.sub",
            id: (1 << 62) | 7,
            aux: 42,
        },
    );
    t.emit_data(
        SimTime::from_nanos(1_200),
        "fabric",
        CorrId(2),
        TraceData::LinkHop {
            src_machine: 0,
            dst_machine: 1,
            bytes: 118,
            uplink_ns: 400,
            spine_ns: 2_600,
            downlink_ns: 250,
        },
    );
    t.emit_corr(
        SimTime::from_nanos(2_000),
        "ssd0",
        CorrId(2),
        "quoted \"x\"\nnewline\ttab",
    );
    t
}

/// Fixed metric values covering all three metric kinds.
fn fixture_hub() -> MetricsHub {
    let hub = MetricsHub::new();
    hub.add("bus.messages", 7);
    hub.incr("engine.events");
    hub.gauge_set("nic.nic0.queue_depth", 3);
    hub.gauge_set("fabric.machines_dead", 0);
    for ns in [100u64, 200, 400, 800, 100_000] {
        hub.record("kvs.kvs0.latency", SimDuration::from_nanos(ns));
    }
    hub
}

/// Compares `actual` against `tests/golden/<name>`, or rewrites the file
/// when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn jsonl_export_is_byte_stable() {
    check_golden("trace.jsonl", &trace_jsonl(&fixture_sink()));
}

#[test]
fn chrome_trace_export_is_byte_stable() {
    check_golden("trace_chrome.json", &trace_chrome(&fixture_sink()));
}

#[test]
fn prometheus_export_is_byte_stable() {
    check_golden("metrics.prom", &metrics_prometheus(&fixture_hub()));
}

#[test]
fn metrics_json_export_is_byte_stable() {
    check_golden("metrics.json", &metrics_json(&fixture_hub()));
}

/// Two identical fixtures export identically (no hidden iteration-order or
/// interior-mutability dependence) — the property the golden files rely on.
#[test]
fn exports_are_deterministic_across_instances() {
    assert_eq!(trace_jsonl(&fixture_sink()), trace_jsonl(&fixture_sink()));
    assert_eq!(trace_chrome(&fixture_sink()), trace_chrome(&fixture_sink()));
    assert_eq!(
        metrics_prometheus(&fixture_hub()),
        metrics_prometheus(&fixture_hub())
    );
    assert_eq!(metrics_json(&fixture_hub()), metrics_json(&fixture_hub()));
}
