//! Structured protocol tracing.
//!
//! The paper's Figure 2 is a message-sequence chart; to "reproduce the
//! figure" the emulator records every protocol-level step into a
//! [`TraceSink`] which the F2 experiment replays as a table. Traces are
//! typed [`TraceRecord`]s (see [`crate::record`]) carrying a timestamp, a
//! subsystem tag, a causal [`CorrId`], and a [`TraceData`] payload, and are
//! kept in a bounded ring so long runs cannot exhaust memory.

use std::collections::VecDeque;

use crate::record::{CorrId, TraceData, TraceRecord};
use crate::time::SimTime;

/// A bounded in-memory trace collector.
///
/// When `enabled` is false, `emit` is a no-op so hot paths pay only a branch.
///
/// # Examples
///
/// ```
/// use lastcpu_sim::{SimTime, TraceSink};
///
/// let mut t = TraceSink::bounded(2);
/// t.emit(SimTime::from_nanos(1), "bus", "device nic0 registered");
/// t.emit(SimTime::from_nanos(2), "bus", "device ssd0 registered");
/// t.emit(SimTime::from_nanos(3), "bus", "discovery query");
/// assert_eq!(t.len(), 2); // oldest evicted
/// ```
pub struct TraceSink {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    enabled: bool,
    emitted: u64,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::bounded(65_536)
    }
}

impl TraceSink {
    /// A sink keeping at most `capacity` most-recent records.
    ///
    /// The ring is reserved up front so steady-state emission never
    /// reallocates (growing incrementally under a hot loop used to cost a
    /// series of doubling copies before the ring reached capacity).
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceSink {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            enabled: true,
            emitted: 0,
        }
    }

    /// A sink that drops everything (for performance runs).
    pub fn disabled() -> Self {
        let mut s = Self::bounded(1);
        s.enabled = false;
        s
    }

    /// Turns collection on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Grows (or shrinks) the retention bound. Existing records beyond the
    /// new bound are evicted oldest-first; growth re-reserves the ring so
    /// steady-state emission stays allocation-free. Offline analyses that
    /// need every record of a long run (e.g. critical-path extraction over
    /// a whole E12 rack phase) raise this before the run.
    pub fn set_capacity(&mut self, capacity: usize) {
        let capacity = capacity.max(1);
        while self.ring.len() > capacity {
            self.ring.pop_front();
        }
        self.ring.reserve(capacity.saturating_sub(self.ring.len()));
        self.capacity = capacity;
    }

    /// Whether the sink is collecting.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a free-form annotation with no correlation id (no-op when
    /// disabled). Prefer [`TraceSink::emit_data`] for typed records.
    pub fn emit(&mut self, at: SimTime, source: impl Into<String>, what: impl Into<String>) {
        self.emit_data(at, source, CorrId::NONE, TraceData::Text(what.into()));
    }

    /// Records a free-form annotation tagged with a correlation id.
    pub fn emit_corr(
        &mut self,
        at: SimTime,
        source: impl Into<String>,
        corr: CorrId,
        what: impl Into<String>,
    ) {
        self.emit_data(at, source, corr, TraceData::Text(what.into()));
    }

    /// Records a typed event (no-op when disabled).
    pub fn emit_data(
        &mut self,
        at: SimTime,
        source: impl Into<String>,
        corr: CorrId,
        data: TraceData,
    ) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceRecord {
            at,
            source: source.into(),
            corr,
            data,
        });
        self.emitted += 1;
    }

    /// The retained records, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records emitted over the sink's lifetime (including evicted).
    pub fn total_emitted(&self) -> u64 {
        self.emitted
    }

    /// Records whose source starts with `prefix`, oldest first.
    pub fn by_source<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.ring
            .iter()
            .filter(move |e| e.source.starts_with(prefix))
    }

    /// Records whose description contains `needle`, oldest first.
    pub fn containing<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.ring.iter().filter(move |e| e.what().contains(needle))
    }

    /// Records belonging to correlation id `corr`, oldest first.
    pub fn by_corr(&self, corr: CorrId) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter().filter(move |e| e.corr == corr)
    }

    /// Discards all retained records (the lifetime counter is kept).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

impl lastcpu_snap::Snapshot for TraceSink {
    /// Serializes the full sink: configuration, lifetime counter, and every
    /// retained record (typed payloads included, so a restored sink renders
    /// byte-identical trace output).
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_len(self.capacity);
        w.put_bool(self.enabled);
        w.put_u64(self.emitted);
        w.put_len(self.ring.len());
        for rec in &self.ring {
            rec.encode(w);
        }
    }
}

impl lastcpu_snap::Restore for TraceSink {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        let capacity = r.len()?;
        let enabled = r.bool()?;
        let emitted = r.u64()?;
        let n = r.len()?;
        if n > capacity {
            return Err(lastcpu_snap::SnapError::Corrupt {
                section: "trace".into(),
                detail: format!("{n} retained records exceed capacity {capacity}"),
            });
        }
        self.ring.clear();
        self.set_capacity(capacity);
        self.enabled = enabled;
        self.emitted = emitted;
        for _ in 0..n {
            self.ring.push_back(TraceRecord::decode(r)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = TraceSink::bounded(16);
        t.emit(SimTime::from_nanos(1), "a", "x");
        t.emit(SimTime::from_nanos(2), "b", "y");
        let v: Vec<_> = t.events().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].source, "a");
        assert_eq!(v[1].what(), "y");
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = TraceSink::bounded(3);
        for i in 0..10u64 {
            t.emit(SimTime::from_nanos(i), "s", i.to_string());
        }
        let v: Vec<_> = t.events().map(|e| e.what()).collect();
        assert_eq!(v, vec!["7", "8", "9"]);
        assert_eq!(t.total_emitted(), 10);
    }

    #[test]
    fn ring_is_fully_reserved_up_front() {
        let t = TraceSink::bounded(4096);
        assert!(t.ring.capacity() >= 4096, "capacity {}", t.ring.capacity());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn set_capacity_evicts_oldest_and_rebounds() {
        let mut t = TraceSink::bounded(8);
        for i in 0..8u64 {
            t.emit(SimTime::from_nanos(i), "s", i.to_string());
        }
        t.set_capacity(3);
        let v: Vec<_> = t.events().map(|e| e.what()).collect();
        assert_eq!(v, vec!["5", "6", "7"]);
        t.set_capacity(16);
        for i in 8..20u64 {
            t.emit(SimTime::from_nanos(i), "s", i.to_string());
        }
        assert_eq!(t.len(), 15); // 3 survivors + 12 new, under the new bound
        assert_eq!(t.total_emitted(), 20);
    }

    #[test]
    fn len_tracks_retained_records() {
        let mut t = TraceSink::bounded(2);
        assert!(t.is_empty());
        t.emit(SimTime::ZERO, "s", "a");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        t.emit(SimTime::ZERO, "s", "b");
        t.emit(SimTime::ZERO, "s", "c");
        assert_eq!(t.len(), 2); // bounded
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn disabled_sink_drops() {
        let mut t = TraceSink::disabled();
        t.emit(SimTime::ZERO, "s", "x");
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.total_emitted(), 0);
        t.set_enabled(true);
        t.emit(SimTime::ZERO, "s", "x");
        assert_eq!(t.events().count(), 1);
    }

    #[test]
    fn filters_work() {
        let mut t = TraceSink::bounded(16);
        t.emit(SimTime::ZERO, "bus", "register nic0");
        t.emit(SimTime::ZERO, "nic0", "self-test ok");
        t.emit(SimTime::ZERO, "bus", "register ssd0");
        assert_eq!(t.by_source("bus").count(), 2);
        assert_eq!(t.containing("nic0").count(), 1);
        t.clear();
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn corr_filter_selects_one_activity() {
        let mut t = TraceSink::bounded(16);
        t.emit_corr(SimTime::ZERO, "nic0", CorrId(1), "step one");
        t.emit_corr(SimTime::ZERO, "bus", CorrId(2), "unrelated");
        t.emit_data(
            SimTime::from_nanos(5),
            "bus",
            CorrId(1),
            TraceData::Deliver {
                to: "ssd0".into(),
                kind: "OpenRequest",
            },
        );
        let span: Vec<_> = t.by_corr(CorrId(1)).collect();
        assert_eq!(span.len(), 2);
        assert_eq!(span[1].what(), "-> ssd0: OpenRequest");
    }

    #[test]
    fn display_is_stable() {
        let e = TraceRecord {
            at: SimTime::from_nanos(1500),
            source: "bus".into(),
            corr: CorrId(3),
            data: TraceData::Text("hello".into()),
        };
        let s = e.to_string();
        assert!(s.contains("bus"));
        assert!(s.contains("hello"));
        assert!(s.contains("1.500us"));
        assert!(s.contains("c3"));
    }
}
