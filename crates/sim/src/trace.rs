//! Structured protocol tracing.
//!
//! The paper's Figure 2 is a message-sequence chart; to "reproduce the
//! figure" the emulator records every protocol-level step into a
//! [`TraceSink`] which the F2 experiment replays as a table. Traces carry a
//! timestamp, a subsystem tag, and a human-readable description, and are kept
//! in a bounded ring so long runs cannot exhaust memory.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub at: SimTime,
    /// Subsystem tag, e.g. `"bus"`, `"nic0"`, `"iommu.ssd0"`.
    pub source: String,
    /// What happened.
    pub what: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] {:<12} {}", self.at.to_string(), self.source, self.what)
    }
}

/// A bounded in-memory trace collector.
///
/// When `enabled` is false, `emit` is a no-op so hot paths pay only a branch.
///
/// # Examples
///
/// ```
/// use lastcpu_sim::{SimTime, TraceSink};
///
/// let mut t = TraceSink::bounded(2);
/// t.emit(SimTime::from_nanos(1), "bus", "device nic0 registered");
/// t.emit(SimTime::from_nanos(2), "bus", "device ssd0 registered");
/// t.emit(SimTime::from_nanos(3), "bus", "discovery query");
/// assert_eq!(t.events().count(), 2); // oldest evicted
/// ```
pub struct TraceSink {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    emitted: u64,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::bounded(65_536)
    }
}

impl TraceSink {
    /// A sink keeping at most `capacity` most-recent events.
    pub fn bounded(capacity: usize) -> Self {
        TraceSink {
            ring: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            enabled: true,
            emitted: 0,
        }
    }

    /// A sink that drops everything (for performance runs).
    pub fn disabled() -> Self {
        let mut s = Self::bounded(1);
        s.enabled = false;
        s
    }

    /// Turns collection on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the sink is collecting.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn emit(&mut self, at: SimTime, source: impl Into<String>, what: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceEvent {
            at,
            source: source.into(),
            what: what.into(),
        });
        self.emitted += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Total events emitted over the sink's lifetime (including evicted).
    pub fn total_emitted(&self) -> u64 {
        self.emitted
    }

    /// Events whose source starts with `prefix`, oldest first.
    pub fn by_source<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.ring.iter().filter(move |e| e.source.starts_with(prefix))
    }

    /// Events whose description contains `needle`, oldest first.
    pub fn containing<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.ring.iter().filter(move |e| e.what.contains(needle))
    }

    /// Discards all retained events (the lifetime counter is kept).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = TraceSink::bounded(16);
        t.emit(SimTime::from_nanos(1), "a", "x");
        t.emit(SimTime::from_nanos(2), "b", "y");
        let v: Vec<_> = t.events().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].source, "a");
        assert_eq!(v[1].what, "y");
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = TraceSink::bounded(3);
        for i in 0..10u64 {
            t.emit(SimTime::from_nanos(i), "s", i.to_string());
        }
        let v: Vec<_> = t.events().map(|e| e.what.clone()).collect();
        assert_eq!(v, vec!["7", "8", "9"]);
        assert_eq!(t.total_emitted(), 10);
    }

    #[test]
    fn disabled_sink_drops() {
        let mut t = TraceSink::disabled();
        t.emit(SimTime::ZERO, "s", "x");
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.total_emitted(), 0);
        t.set_enabled(true);
        t.emit(SimTime::ZERO, "s", "x");
        assert_eq!(t.events().count(), 1);
    }

    #[test]
    fn filters_work() {
        let mut t = TraceSink::bounded(16);
        t.emit(SimTime::ZERO, "bus", "register nic0");
        t.emit(SimTime::ZERO, "nic0", "self-test ok");
        t.emit(SimTime::ZERO, "bus", "register ssd0");
        assert_eq!(t.by_source("bus").count(), 2);
        assert_eq!(t.containing("nic0").count(), 1);
        t.clear();
        assert_eq!(t.events().count(), 0);
    }

    #[test]
    fn display_is_stable() {
        let e = TraceEvent {
            at: SimTime::from_nanos(1500),
            source: "bus".into(),
            what: "hello".into(),
        };
        let s = e.to_string();
        assert!(s.contains("bus"));
        assert!(s.contains("hello"));
        assert!(s.contains("1.500us"));
    }
}
