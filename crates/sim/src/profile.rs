//! Performance attribution: scoped allocation accounting and span timing.
//!
//! The E9 engine benchmark counts every heap allocation the process makes,
//! but a single total ("9.4 allocs/event") says nothing about *which*
//! subsystem allocates. This module adds the missing attribution axis:
//!
//! - [`AllocScope`]: an RAII guard that pushes a `subsystem.site` tag onto a
//!   thread-local scope stack. A benchmark's `#[global_allocator]` calls
//!   [`note_alloc`] on every allocation, which charges it to the innermost
//!   active scope (or the reserved *unattributed* bucket when no scope is
//!   active).
//! - [`span`]: an [`AllocScope`] that additionally measures wall-clock time
//!   (entry/exit `Instant`s) and feeds a per-scope log-bucket
//!   [`Histogram`]. Simulated time does not advance inside a handler, so
//!   modeled sim-ns costs are charged explicitly with [`charge_sim`] /
//!   [`charge_sim_to`] by the code that computes them (e.g. the dispatcher
//!   charges a device handler's modeled latency to the scope it ran under).
//! - [`snapshot`] / [`reset`]: drain the per-scope tables between benchmark
//!   phases; [`ProfileSnapshot::publish_to`] mirrors them into a
//!   [`MetricsHub`] under `profile.<scope>.*` keys.
//!
//! # Determinism
//!
//! Allocation counts and sim-ns charges are pure functions of the simulated
//! run, so they are bit-stable across same-seed runs. Wall-ns measurements
//! are host noise by definition; artifact writers must keep them in clearly
//! marked `wall` fields (the E12 determinism gate strips them).
//!
//! # Overhead
//!
//! Profiling is **off** by default. Every entry point first reads one
//! thread-local `Cell<bool>`; when the flag is clear, guards are inert and
//! no `Instant` is sampled, so instrumented hot paths pay a branch. Compiling
//! with `--no-default-features` (dropping the `profiling` feature) removes
//! even that branch: the whole API becomes a unit struct no-op.
//!
//! All state is thread-local: the simulator is single-threaded, and keeping
//! the tables off shared atomics means parallel test threads cannot observe
//! each other's scopes. [`note_alloc`] tolerates being called during thread
//! teardown (it uses `try_with` and drops the sample if TLS is gone).

use crate::metrics::MetricsHub;
use crate::stats::Histogram;

/// Hard cap on distinct scope names. Attribution wants a handful of
/// `subsystem.site` tags, not a cardinality explosion; names past the cap
/// fall into the unattributed bucket.
pub const MAX_SCOPES: usize = 64;

/// Reserved slot 0: allocations made while no scope is active.
pub const UNATTRIBUTED: &str = "(unattributed)";

/// Per-scope attribution totals, drained by [`snapshot`].
#[derive(Debug, Clone)]
pub struct ScopeStats {
    /// The `subsystem.site` tag passed to [`AllocScope::enter`] / [`span`].
    pub name: &'static str,
    /// Heap allocations charged to this scope (innermost-scope wins).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Completed [`span`]s.
    pub spans: u64,
    /// Total wall time inside spans of this scope (includes nested scopes).
    pub wall_ns: u64,
    /// Wall time of *top-level* spans only (entered with an empty scope
    /// stack). Summing `wall_root_ns` across scopes never double-counts
    /// nesting, so it is the right numerator for coverage checks.
    pub wall_root_ns: u64,
    /// Modeled sim-ns charged via [`charge_sim`] / [`charge_sim_to`].
    pub sim_ns: u64,
    /// Log-bucket histogram of per-span wall durations.
    pub wall_hist: Histogram,
}

/// A point-in-time copy of the calling thread's attribution tables.
#[derive(Debug, Clone, Default)]
pub struct ProfileSnapshot {
    /// Named scopes in registration order (slot 0, the unattributed bucket,
    /// is reported via the dedicated fields instead).
    pub scopes: Vec<ScopeStats>,
    /// Allocations that hit [`note_alloc`] with no active scope.
    pub unattributed_allocs: u64,
    /// Bytes of those allocations.
    pub unattributed_bytes: u64,
}

impl ProfileSnapshot {
    /// Total allocations seen while profiling was enabled.
    pub fn total_allocs(&self) -> u64 {
        self.unattributed_allocs + self.scopes.iter().map(|s| s.allocs).sum::<u64>()
    }

    /// Fraction of allocations attributed to a named scope (1.0 when no
    /// allocation was seen at all).
    pub fn attributed_alloc_fraction(&self) -> f64 {
        let total = self.total_allocs();
        if total == 0 {
            return 1.0;
        }
        1.0 - self.unattributed_allocs as f64 / total as f64
    }

    /// Sum of top-level span wall time (no double-counted nesting).
    pub fn wall_root_total_ns(&self) -> u64 {
        self.scopes.iter().map(|s| s.wall_root_ns).sum()
    }

    /// Sum of sim-ns charges across all scopes.
    pub fn sim_total_ns(&self) -> u64 {
        self.scopes.iter().map(|s| s.sim_ns).sum()
    }

    /// Mirrors the snapshot into `hub` under `profile.<scope>.*`:
    /// `allocs` / `alloc_bytes` / `spans` / `sim_ns` counters and the
    /// `span_wall_ns` histogram. The unattributed bucket publishes as
    /// `profile.unattributed.allocs`.
    pub fn publish_to(&self, hub: &MetricsHub) {
        for s in &self.scopes {
            let base = format!("profile.{}", s.name);
            hub.add(&format!("{base}.allocs"), s.allocs);
            hub.add(&format!("{base}.alloc_bytes"), s.alloc_bytes);
            hub.add(&format!("{base}.spans"), s.spans);
            hub.add(&format!("{base}.sim_ns"), s.sim_ns);
            if s.wall_hist.count() > 0 {
                hub.merge_histogram(&format!("{base}.span_wall_ns"), &s.wall_hist);
            }
        }
        hub.add("profile.unattributed.allocs", self.unattributed_allocs);
        hub.add("profile.unattributed.alloc_bytes", self.unattributed_bytes);
    }
}

#[cfg(feature = "profiling")]
mod imp {
    use super::*;
    use std::cell::{Cell, RefCell};
    use std::time::Instant;

    /// Sentinel marking an inert guard (profiling disabled at entry, or the
    /// scope table was full).
    const INERT: u16 = u16::MAX;

    struct Registry {
        /// Slot 0 is the unattributed bucket; named scopes start at 1.
        names: Vec<&'static str>,
        /// `&'static str` pointer → slot cache. The same literal can have
        /// distinct addresses across codegen units, so this is a cache in
        /// front of the by-content scan, not the source of truth.
        by_ptr: Vec<(*const u8, usize, u16)>,
    }

    /// Span/sim-time tables. Allocation tallies live in the flat `ALLOCS` /
    /// `BYTES` cells instead (the allocator hook cannot take a `RefCell`).
    struct Table {
        spans: [u64; MAX_SCOPES],
        wall: [u64; MAX_SCOPES],
        wall_root: [u64; MAX_SCOPES],
        sim: [u64; MAX_SCOPES],
        hists: Vec<Option<Histogram>>,
    }

    impl Table {
        fn new() -> Self {
            Table {
                spans: [0; MAX_SCOPES],
                wall: [0; MAX_SCOPES],
                wall_root: [0; MAX_SCOPES],
                sim: [0; MAX_SCOPES],
                hists: Vec::new(),
            }
        }
    }

    thread_local! {
        /// Innermost active scope slot; 0 = unattributed. Const-initialized
        /// `Cell`s so the allocator hook can read them without triggering a
        /// lazy TLS initializer (which could itself allocate).
        static CURRENT: Cell<u16> = const { Cell::new(0) };
        static ENABLED: Cell<bool> = const { Cell::new(false) };
        /// Allocation tally, kept as flat const-init cells for the same
        /// reason: [`note_alloc`] runs inside the global allocator.
        static ALLOCS: [Cell<u64>; MAX_SCOPES] =
            const { [const { Cell::new(0) }; MAX_SCOPES] };
        static BYTES: [Cell<u64>; MAX_SCOPES] =
            const { [const { Cell::new(0) }; MAX_SCOPES] };
        /// Everything not touched from the allocator lives behind RefCells.
        static REGISTRY: RefCell<Registry> = RefCell::new(Registry {
            names: vec![UNATTRIBUTED],
            by_ptr: Vec::new(),
        });
        static TABLE: RefCell<Table> = RefCell::new(Table::new());
    }

    /// Turns profiling on or off for the **calling thread**.
    pub fn set_enabled(on: bool) {
        ENABLED.with(|e| e.set(on));
    }

    /// Whether profiling is enabled on the calling thread.
    pub fn is_enabled() -> bool {
        ENABLED.with(|e| e.get())
    }

    /// Interns `name`, returning its slot, or `INERT` when the table is full.
    fn intern(name: &'static str) -> u16 {
        REGISTRY.with(|r| {
            let mut r = r.borrow_mut();
            let key = (name.as_ptr(), name.len());
            if let Some(&(_, _, slot)) =
                r.by_ptr.iter().find(|&&(p, l, _)| p == key.0 && l == key.1)
            {
                return slot;
            }
            let slot = match r.names.iter().position(|&n| n == name) {
                Some(i) => i as u16,
                None if r.names.len() < MAX_SCOPES => {
                    r.names.push(name);
                    (r.names.len() - 1) as u16
                }
                None => return INERT,
            };
            r.by_ptr.push((key.0, key.1, slot));
            slot
        })
    }

    /// RAII guard tagging allocations (but not time) to `name`.
    pub struct AllocScope {
        prev: u16,
    }

    impl AllocScope {
        /// Pushes `name` as the innermost attribution scope. Inert (and
        /// free beyond one branch) while profiling is disabled.
        #[inline]
        pub fn enter(name: &'static str) -> Self {
            if !is_enabled() {
                return AllocScope { prev: INERT };
            }
            let slot = intern(name);
            if slot == INERT {
                return AllocScope { prev: INERT };
            }
            let prev = CURRENT.with(|c| c.replace(slot));
            AllocScope { prev }
        }
    }

    impl Drop for AllocScope {
        #[inline]
        fn drop(&mut self) {
            if self.prev != INERT {
                CURRENT.with(|c| c.set(self.prev));
            }
        }
    }

    /// RAII guard tagging allocations *and* wall time to `name`.
    pub struct Span {
        prev: u16,
        slot: u16,
        /// `None` for inert guards, so the disabled path never samples the
        /// clock (an `Instant::now()` per event would show up in the E9
        /// profiling-off overhead budget).
        start: Option<Instant>,
    }

    /// Opens a timed span named `name`; see [`Span`]. Inert while disabled.
    #[inline]
    pub fn span(name: &'static str) -> Span {
        if !is_enabled() {
            return Span {
                prev: INERT,
                slot: INERT,
                start: None,
            };
        }
        let slot = intern(name);
        if slot == INERT {
            return Span {
                prev: INERT,
                slot: INERT,
                start: None,
            };
        }
        let prev = CURRENT.with(|c| c.replace(slot));
        Span {
            prev,
            slot,
            start: Some(Instant::now()),
        }
    }

    impl Drop for Span {
        #[inline]
        fn drop(&mut self) {
            if self.slot == INERT {
                return;
            }
            let ns = self
                .start
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            CURRENT.with(|c| c.set(self.prev));
            let slot = self.slot as usize;
            TABLE.with(|t| {
                let mut t = t.borrow_mut();
                t.spans[slot] += 1;
                t.wall[slot] += ns;
                if self.prev == 0 {
                    t.wall_root[slot] += ns;
                }
                if t.hists.len() <= slot {
                    t.hists.resize_with(slot + 1, || None);
                }
                t.hists[slot]
                    .get_or_insert_with(Histogram::new)
                    .record_value(ns);
            });
        }
    }

    /// Charges `ns` of modeled sim time to the innermost active scope.
    #[inline]
    pub fn charge_sim(ns: u64) {
        if !is_enabled() {
            return;
        }
        let slot = CURRENT.with(|c| c.get()) as usize;
        TABLE.with(|t| t.borrow_mut().sim[slot] += ns);
    }

    /// Charges `ns` of modeled sim time to `name` regardless of the active
    /// scope (used by components that compute latencies for work that
    /// happens "elsewhere", e.g. fabric link serialization).
    #[inline]
    pub fn charge_sim_to(name: &'static str, ns: u64) {
        if !is_enabled() {
            return;
        }
        let slot = intern(name);
        if slot == INERT {
            return;
        }
        TABLE.with(|t| t.borrow_mut().sim[slot as usize] += ns);
    }

    /// Allocator hook: charges one allocation of `bytes` to the innermost
    /// active scope. Must be called from a `#[global_allocator]`, so it
    /// never allocates and tolerates TLS teardown.
    #[inline]
    pub fn note_alloc(bytes: usize) {
        let enabled = ENABLED.try_with(|e| e.get()).unwrap_or(false);
        if !enabled {
            return;
        }
        let slot = CURRENT.try_with(|c| c.get()).unwrap_or(0) as usize;
        let _ = ALLOCS.try_with(|a| a[slot].set(a[slot].get() + 1));
        let _ = BYTES.try_with(|b| b[slot].set(b[slot].get() + bytes as u64));
    }

    /// Copies the calling thread's attribution tables.
    pub fn snapshot() -> ProfileSnapshot {
        REGISTRY.with(|r| {
            let r = r.borrow();
            TABLE.with(|t| {
                let t = t.borrow();
                let allocs: Vec<u64> = ALLOCS.with(|a| a.iter().map(Cell::get).collect());
                let bytes: Vec<u64> = BYTES.with(|b| b.iter().map(Cell::get).collect());
                let scopes = r
                    .names
                    .iter()
                    .enumerate()
                    .skip(1) // slot 0 = unattributed
                    .map(|(i, &name)| ScopeStats {
                        name,
                        allocs: allocs[i],
                        alloc_bytes: bytes[i],
                        spans: t.spans[i],
                        wall_ns: t.wall[i],
                        wall_root_ns: t.wall_root[i],
                        sim_ns: t.sim[i],
                        wall_hist: t.hists.get(i).and_then(|h| h.clone()).unwrap_or_default(),
                    })
                    .collect();
                ProfileSnapshot {
                    scopes,
                    unattributed_allocs: allocs[0],
                    unattributed_bytes: bytes[0],
                }
            })
        })
    }

    /// Zeroes all counters and histograms. Scope registrations (and any
    /// active guards) survive, so a benchmark can reset after warmup.
    pub fn reset() {
        ALLOCS.with(|a| a.iter().for_each(|c| c.set(0)));
        BYTES.with(|b| b.iter().for_each(|c| c.set(0)));
        TABLE.with(|t| *t.borrow_mut() = Table::new());
    }
}

#[cfg(not(feature = "profiling"))]
mod imp {
    //! `profiling` feature disabled: the whole API compiles to no-ops.
    use super::*;

    /// No-op without the `profiling` feature.
    pub fn set_enabled(_on: bool) {}

    /// Always false without the `profiling` feature.
    pub fn is_enabled() -> bool {
        false
    }

    /// Inert guard without the `profiling` feature.
    pub struct AllocScope;

    impl AllocScope {
        /// No-op without the `profiling` feature.
        #[inline]
        pub fn enter(_name: &'static str) -> Self {
            AllocScope
        }
    }

    /// Inert guard without the `profiling` feature.
    pub struct Span;

    /// No-op without the `profiling` feature.
    #[inline]
    pub fn span(_name: &'static str) -> Span {
        Span
    }

    /// No-op without the `profiling` feature.
    #[inline]
    pub fn charge_sim(_ns: u64) {}

    /// No-op without the `profiling` feature.
    #[inline]
    pub fn charge_sim_to(_name: &'static str, _ns: u64) {}

    /// No-op without the `profiling` feature.
    #[inline]
    pub fn note_alloc(_bytes: usize) {}

    /// Always empty without the `profiling` feature.
    pub fn snapshot() -> ProfileSnapshot {
        ProfileSnapshot::default()
    }

    /// No-op without the `profiling` feature.
    pub fn reset() {}
}

pub use imp::{
    charge_sim, charge_sim_to, is_enabled, note_alloc, reset, set_enabled, snapshot, span,
    AllocScope, Span,
};

#[cfg(all(test, feature = "profiling"))]
mod tests {
    use super::*;

    /// Each test fully owns this thread's tables: reset, enable, run, disable.
    fn with_profiling(f: impl FnOnce()) {
        reset();
        set_enabled(true);
        f();
        set_enabled(false);
        reset();
    }

    fn stats<'a>(snap: &'a ProfileSnapshot, name: &str) -> &'a ScopeStats {
        snap.scopes
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("scope {name} not in snapshot"))
    }

    #[test]
    fn allocations_attribute_to_innermost_scope() {
        with_profiling(|| {
            note_alloc(8); // before any scope: unattributed
            {
                let _outer = AllocScope::enter("test.outer");
                note_alloc(16);
                {
                    let _inner = AllocScope::enter("test.inner");
                    note_alloc(32);
                    note_alloc(32);
                }
                note_alloc(64);
            }
            let snap = snapshot();
            assert_eq!(snap.unattributed_allocs, 1);
            assert_eq!(snap.unattributed_bytes, 8);
            assert_eq!(stats(&snap, "test.outer").allocs, 2);
            assert_eq!(stats(&snap, "test.outer").alloc_bytes, 80);
            assert_eq!(stats(&snap, "test.inner").allocs, 2);
            assert_eq!(stats(&snap, "test.inner").alloc_bytes, 64);
            assert_eq!(snap.total_allocs(), 5);
            let frac = snap.attributed_alloc_fraction();
            assert!((frac - 0.8).abs() < 1e-9, "frac={frac}");
        });
    }

    #[test]
    fn disabled_profiling_records_nothing() {
        reset();
        assert!(!is_enabled());
        let _g = AllocScope::enter("test.off");
        note_alloc(128);
        charge_sim(99);
        let _s = span("test.off_span");
        drop(_s);
        let snap = snapshot();
        assert_eq!(snap.total_allocs(), 0);
        assert!(snap.scopes.iter().all(|s| s.spans == 0 && s.sim_ns == 0));
    }

    #[test]
    fn spans_count_and_measure() {
        with_profiling(|| {
            for _ in 0..3 {
                let _s = span("test.span");
            }
            let snap = snapshot();
            let s = stats(&snap, "test.span");
            assert_eq!(s.spans, 3);
            assert_eq!(s.wall_hist.count(), 3);
            // Top-level spans: self time == root time.
            assert_eq!(s.wall_ns, s.wall_root_ns);
        });
    }

    #[test]
    fn nested_span_wall_does_not_double_count_roots() {
        with_profiling(|| {
            {
                let _outer = span("test.root");
                let _inner = span("test.nested");
            }
            let snap = snapshot();
            assert_eq!(
                stats(&snap, "test.root").wall_root_ns,
                stats(&snap, "test.root").wall_ns
            );
            assert_eq!(stats(&snap, "test.nested").wall_root_ns, 0);
            assert!(stats(&snap, "test.nested").wall_ns <= stats(&snap, "test.root").wall_ns);
            assert_eq!(snap.wall_root_total_ns(), stats(&snap, "test.root").wall_ns);
        });
    }

    #[test]
    fn sim_charges_attribute_to_current_or_named_scope() {
        with_profiling(|| {
            {
                let _g = AllocScope::enter("test.simmed");
                charge_sim(100);
                charge_sim(50);
            }
            charge_sim_to("test.elsewhere", 70);
            let snap = snapshot();
            assert_eq!(stats(&snap, "test.simmed").sim_ns, 150);
            assert_eq!(stats(&snap, "test.elsewhere").sim_ns, 70);
            assert_eq!(snap.sim_total_ns(), 220);
        });
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        with_profiling(|| {
            let _g = AllocScope::enter("test.reset_me");
            note_alloc(8);
            drop(_g);
            reset();
            let snap = snapshot();
            assert_eq!(snap.total_allocs(), 0);
            // The name survives with zeroed stats.
            assert_eq!(stats(&snap, "test.reset_me").allocs, 0);
        });
    }

    #[test]
    fn scope_table_overflow_falls_back_to_inert() {
        // Leak distinct names to exhaust the table; must not panic, and
        // post-cap scopes must leave attribution untouched.
        with_profiling(|| {
            for i in 0..(MAX_SCOPES + 8) {
                let name: &'static str = Box::leak(format!("test.flood{i}").into_boxed_str());
                let _g = AllocScope::enter(name);
            }
            let snap = snapshot();
            assert!(snap.scopes.len() < MAX_SCOPES);
        });
    }

    #[test]
    fn publish_mirrors_into_hub() {
        with_profiling(|| {
            {
                let _s = span("test.pub");
                note_alloc(24);
            }
            charge_sim_to("test.pub", 42);
            let snap = snapshot();
            let hub = MetricsHub::new();
            snap.publish_to(&hub);
            assert_eq!(hub.counter("profile.test.pub.allocs"), 1);
            assert_eq!(hub.counter("profile.test.pub.alloc_bytes"), 24);
            assert_eq!(hub.counter("profile.test.pub.spans"), 1);
            assert_eq!(hub.counter("profile.test.pub.sim_ns"), 42);
            assert_eq!(
                hub.histogram("profile.test.pub.span_wall_ns")
                    .unwrap()
                    .count(),
                1
            );
        });
    }
}
