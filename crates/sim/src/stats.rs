//! Measurement primitives: counters and latency histograms.
//!
//! Experiments report virtual-time latencies; a log-bucketed histogram keeps
//! recording O(1) while still giving tight percentiles across nine decades
//! (1 ns .. ~1 s), which covers everything from an IOTLB hit to a NAND erase.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimDuration;

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one (saturating, so long soak runs cannot overflow-panic in
    /// debug builds).
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` (saturating).
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

/// Number of log-spaced buckets per power of two (resolution ≈ 9%).
const SUB_BUCKETS: usize = 8;
/// Covers values up to 2^40 ns ≈ 18 minutes of virtual time.
const MAX_POW2: usize = 40;
const BUCKETS: usize = MAX_POW2 * SUB_BUCKETS;

/// A log-bucketed histogram of durations (or any u64 quantity).
///
/// Relative bucket error is bounded by `2^(1/SUB_BUCKETS) - 1` ≈ 9%, which is
/// far below run-to-run workload noise, while recording stays constant-time
/// and the struct stays small enough to keep one per (device, operation).
///
/// # Examples
///
/// ```
/// use lastcpu_sim::{Histogram, SimDuration};
///
/// let mut h = Histogram::new();
/// for us in 1..=100u64 {
///     h.record(SimDuration::from_micros(us));
/// }
/// let p50 = h.percentile(50.0).as_micros();
/// assert!((45..=55).contains(&p50), "p50 was {p50}us");
/// ```
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u32>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v < 2 {
            return v as usize; // 0 and 1 get exact buckets.
        }
        let pow = 63 - v.leading_zeros() as usize; // floor(log2 v), >= 1
        let frac = ((v >> (pow.saturating_sub(3))) & 0x7) as usize; // top 3 bits below the MSB
        let idx = pow * SUB_BUCKETS + frac;
        idx.min(BUCKETS - 1)
    }

    /// Representative (geometric-ish midpoint) value for bucket `idx`.
    /// Percentiles now interpolate between bucket edges instead; the
    /// midpoint is kept for the bucket-layout regression tests.
    #[cfg(test)]
    fn bucket_value(idx: usize) -> u64 {
        if idx < 2 {
            return idx as u64;
        }
        let pow = idx / SUB_BUCKETS;
        let frac = idx % SUB_BUCKETS;
        let base = 1u64 << pow;
        base + (base >> 3).saturating_mul(frac as u64) + (base >> 4)
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.record_value(d.as_nanos());
    }

    /// Records one raw value.
    pub fn record_value(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (exact, in raw units).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value as a duration (zero when empty).
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min)
        }
    }

    /// Largest recorded value as a duration (zero when empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max)
    }

    /// Arithmetic mean as a duration (zero when empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum / self.count as u128) as u64)
        }
    }

    /// Lower edge of bucket `idx` (the smallest value that maps to it).
    fn bucket_lower(idx: usize) -> u64 {
        if idx < 2 {
            return idx as u64;
        }
        let pow = idx / SUB_BUCKETS;
        let frac = idx % SUB_BUCKETS;
        let base = 1u64 << pow;
        base + (base >> 3).saturating_mul(frac as u64)
    }

    /// The `p`-th percentile (`0 <= p <= 100`) as a duration.
    ///
    /// Exact for the min/max envelope. Inside, the target rank is located in
    /// its log bucket and then **interpolated within the bucket** by rank
    /// position: a rank that lands `k`-th of `n` samples into bucket
    /// `[lo, lo+width)` reports `lo + width*k/n` rather than the bucket's
    /// fixed midpoint. The result can never be off by more than one bucket
    /// width (≈9%), and tail percentiles (p99/p999) stop collapsing onto the
    /// same midpoint when they share a bucket.
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        if p >= 100.0 {
            // The maximum is tracked exactly; do not round it through a
            // bucket representative.
            return self.max();
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if rank <= 1 {
            // p→0 clamps its rank to the first sample: exactly the minimum.
            return self.min();
        }
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            let in_bucket = c as u64;
            if seen + in_bucket >= rank {
                let lo = Self::bucket_lower(idx);
                let width = Self::bucket_lower(idx + 1).saturating_sub(lo);
                let into = (rank - seen) as f64 / in_bucket as f64; // (0, 1]
                let v = lo + (width as f64 * into).round() as u64;
                // Clamp into the observed envelope so p100 == max and
                // p0 == min stay exact even at the bucket boundaries.
                return SimDuration::from_nanos(v.clamp(self.min, self.max));
            }
            seen += in_bucket;
        }
        SimDuration::from_nanos(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// One-line summary: `n=.. mean=.. p50=.. p99=.. max=..`.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max()
        )
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram({})", self.summary())
    }
}

impl lastcpu_snap::Snapshot for Histogram {
    /// Serializes the envelope plus only the non-zero buckets (bucket
    /// layout is a compile-time constant, so sparse pairs are stable).
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.count);
        w.put_u128(self.sum);
        w.put_u64(self.min);
        w.put_u64(self.max);
        let nonzero = self.buckets.iter().filter(|&&c| c != 0).count();
        w.put_len(nonzero);
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                w.put_u32(idx as u32);
                w.put_u32(c);
            }
        }
    }
}

impl lastcpu_snap::Restore for Histogram {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.reset();
        self.count = r.u64()?;
        self.sum = r.u128()?;
        self.min = r.u64()?;
        self.max = r.u64()?;
        let n = r.len()?;
        for _ in 0..n {
            let idx = r.u32()? as usize;
            let c = r.u32()?;
            if idx >= BUCKETS {
                return Err(lastcpu_snap::SnapError::Corrupt {
                    section: "histogram".into(),
                    detail: format!("bucket index {idx} out of range"),
                });
            }
            self.buckets[idx] = c;
        }
        Ok(())
    }
}

/// A named registry of counters and histograms.
///
/// Devices and subsystems record into the registry by string key; the bench
/// harness reads it out to print experiment tables. Keys follow a
/// `subsystem.object.metric` convention, e.g. `ssd0.file.read_latency`.
#[derive(Default)]
pub struct StatsRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter named `key`, creating it on first use.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Adds `n` to the counter named `key`, creating it on first use.
    pub fn add(&mut self, key: &str, n: u64) {
        self.counters.entry(key.to_string()).or_default().add(n);
    }

    /// Current value of counter `key` (zero when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).map_or(0, |c| c.get())
    }

    /// Records a duration into histogram `key`, creating it on first use.
    pub fn record(&mut self, key: &str, d: SimDuration) {
        self.histograms
            .entry(key.to_string())
            .or_default()
            .record(d);
    }

    /// Looks up histogram `key`.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, c)| (k.as_str(), c.get()))
    }

    /// Iterates histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Clears every metric.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Histogram invariants over arbitrary samples: ordering of
        /// percentiles, envelope exactness, and bounded relative error
        /// against an exact quantile.
        #[test]
        fn prop_histogram_quantile_bounds(mut samples in proptest::collection::vec(1u64..1_000_000_000, 1..300)) {
            let mut h = Histogram::new();
            for &s in &samples {
                h.record_value(s);
            }
            samples.sort_unstable();
            prop_assert_eq!(h.count(), samples.len() as u64);
            prop_assert_eq!(h.min().as_nanos(), samples[0]);
            prop_assert_eq!(h.max().as_nanos(), *samples.last().unwrap());
            let p50 = h.percentile(50.0).as_nanos();
            let p99 = h.percentile(99.0).as_nanos();
            let p100 = h.percentile(100.0).as_nanos();
            prop_assert!(p50 <= p99 && p99 <= p100);
            prop_assert_eq!(p100, *samples.last().unwrap());
            // p50 within ~15% of the exact median (9% bucket error plus
            // rank rounding on small sample counts).
            let exact = samples[(samples.len() - 1) / 2] as f64;
            let err = (p50 as f64 - exact).abs() / exact;
            prop_assert!(err < 0.16, "p50={p50} exact={exact} err={err}");
            // Mean inside the envelope.
            let mean = h.mean().as_nanos();
            prop_assert!(mean >= samples[0] && mean <= *samples.last().unwrap());
        }

        /// Bucket-boundary audit: at every percentile the histogram's
        /// interpolated answer stays within one log-bucket width of the
        /// exact sorted-sample percentile (same nearest-rank definition the
        /// histogram uses).
        #[test]
        fn prop_percentile_within_one_bucket_of_exact(
            mut samples in proptest::collection::vec(1u64..1_000_000_000, 1..400),
            pct_tenths in 0u32..=1000,
        ) {
            let mut h = Histogram::new();
            for &s in &samples {
                h.record_value(s);
            }
            samples.sort_unstable();
            let p = pct_tenths as f64 / 10.0;
            let got = h.percentile(p).as_nanos();
            let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
            let exact = samples[rank.min(samples.len()) - 1];
            // One bucket width at `exact`: ≤ exact/8 once sub-bucketing is
            // active (values ≥ 8); below that the layout is coarser (the
            // [4, 8) range is one bucket), hence the +4 floor.
            let width = exact / 8 + 4;
            let lo = exact.saturating_sub(width);
            let hi = exact.saturating_add(width);
            prop_assert!(
                (lo..=hi).contains(&got),
                "p={p} got={got} exact={exact} width={width}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn single_sample_is_exact() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_nanos(1234));
        assert_eq!(h.count(), 1);
        assert_eq!(h.min().as_nanos(), 1234);
        assert_eq!(h.max().as_nanos(), 1234);
        assert_eq!(h.percentile(50.0).as_nanos(), 1234);
        assert_eq!(h.percentile(100.0).as_nanos(), 1234);
    }

    #[test]
    fn percentiles_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record_value(v);
        }
        let p50 = h.percentile(50.0).as_nanos() as f64;
        let p99 = h.percentile(99.0).as_nanos() as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.15, "p50={p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.15, "p99={p99}");
        assert_eq!(h.mean().as_nanos(), 5_000);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_value(10);
        b.record_value(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min().as_nanos(), 10);
        assert_eq!(a.max().as_nanos(), 1_000_000);
    }

    #[test]
    fn bucket_values_are_monotone() {
        let mut prev = 0u64;
        for idx in 0..BUCKETS {
            let v = Histogram::bucket_value(idx);
            assert!(v >= prev, "bucket {idx}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn bucket_index_maps_value_near_itself() {
        for shift in 1..39u32 {
            let v = 1u64 << shift;
            let idx = Histogram::bucket_index(v);
            let rep = Histogram::bucket_value(idx) as f64;
            let err = (rep - v as f64).abs() / v as f64;
            assert!(err < 0.15, "v={v} rep={rep} err={err}");
        }
    }

    #[test]
    fn tail_percentiles_interpolate_within_a_shared_bucket() {
        // 989 fast samples and 11 slow ones spread inside one log bucket:
        // p99 (rank 990) and p99.9 (rank 999) land in the same bucket but at
        // different ranks, so interpolation must order them strictly instead
        // of collapsing both onto the bucket midpoint.
        let mut h = Histogram::new();
        for _ in 0..989 {
            h.record_value(1_000);
        }
        for i in 0..11u64 {
            // 65536..73536: all inside the [65536, 73728) bucket.
            h.record_value(65_536 + i * 800);
        }
        let p99 = h.percentile(99.0).as_nanos();
        let p999 = h.percentile(99.9).as_nanos();
        assert!(p99 < p999, "p99={p99} p999={p999}");
        assert_eq!(h.percentile(100.0).as_nanos(), 65_536 + 10 * 800);
        // Both stay within the slow cluster's bucket.
        assert!((65_536..=73_536).contains(&p99), "p99={p99}");
        assert!((65_536..=73_536).contains(&p999), "p999={p999}");
    }

    #[test]
    fn interpolated_percentile_is_monotone_in_p() {
        let mut h = Histogram::new();
        for v in [1u64, 3, 9, 100, 101, 102, 4_000, 65_000, 1_000_000] {
            h.record_value(v);
        }
        let mut prev = 0u64;
        for tenth in 0..=1000u32 {
            let p = tenth as f64 / 10.0;
            let v = h.percentile(p).as_nanos();
            assert!(v >= prev, "p={p}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn counter_saturates_at_max() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
        c.incr(); // must not panic, even in debug builds
        c.add(1_000);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn zero_duration_record_lands_in_exact_bucket() {
        let mut h = Histogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(50.0), SimDuration::ZERO);
        assert_eq!(h.percentile(100.0), SimDuration::ZERO);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn values_above_ceiling_clamp_into_last_bucket() {
        let ceiling = 1u64 << MAX_POW2; // ~18 virtual minutes in ns
        let mut h = Histogram::new();
        h.record_value(ceiling);
        h.record_value(ceiling * 4);
        h.record_value(u64::MAX);
        assert_eq!(h.count(), 3);
        // Envelope stays exact even though buckets saturate.
        assert_eq!(h.min().as_nanos(), ceiling);
        assert_eq!(h.max().as_nanos(), u64::MAX);
        assert_eq!(h.percentile(100.0).as_nanos(), u64::MAX);
        // All three landed in the final bucket; percentiles stay inside the
        // observed envelope rather than inventing values beyond it.
        let p50 = h.percentile(50.0).as_nanos();
        assert!((ceiling..=u64::MAX).contains(&p50), "p50={p50}");
    }

    #[test]
    fn percentile_zero_and_hundred_hit_the_envelope() {
        let mut h = Histogram::new();
        for v in [10u64, 500, 90_000] {
            h.record_value(v);
        }
        // p→0 clamps its rank to the first sample: exactly the minimum.
        assert_eq!(h.percentile(0.0).as_nanos(), 10);
        assert_eq!(h.percentile(100.0).as_nanos(), 90_000);
        // Above-100 requests behave like 100.
        assert_eq!(h.percentile(150.0).as_nanos(), 90_000);
    }

    #[test]
    fn merge_of_two_histograms_is_sample_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=100u64 {
            a.record_value(v);
        }
        for v in 1_000..=1_100u64 {
            b.record_value(v);
        }
        let (ca, cb) = (a.count(), b.count());
        let sum = a.sum() + b.sum();
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        assert_eq!(a.sum(), sum);
        assert_eq!(a.min().as_nanos(), 1);
        assert_eq!(a.max().as_nanos(), 1_100);
        // The p50 of the union sits between the two clusters' medians.
        let p50 = a.percentile(50.0).as_nanos();
        assert!((50..=1_100).contains(&p50), "p50={p50}");

        // Merging an empty histogram is a no-op on the envelope.
        let before_min = a.min();
        let before_max = a.max();
        a.merge(&Histogram::new());
        assert_eq!(a.min(), before_min);
        assert_eq!(a.max(), before_max);

        // Merging INTO an empty histogram adopts the other's envelope.
        let mut e = Histogram::new();
        e.merge(&a);
        assert_eq!(e.count(), a.count());
        assert_eq!(e.min(), a.min());
        assert_eq!(e.max(), a.max());
    }

    #[test]
    fn registry_round_trips() {
        let mut r = StatsRegistry::new();
        r.incr("bus.msgs");
        r.add("bus.msgs", 2);
        r.record("op.lat", SimDuration::from_micros(5));
        assert_eq!(r.counter("bus.msgs"), 3);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.histogram("op.lat").unwrap().count(), 1);
        assert_eq!(r.counters().count(), 1);
        r.reset();
        assert_eq!(r.counter("bus.msgs"), 0);
    }

    #[test]
    fn reset_clears_histogram() {
        let mut h = Histogram::new();
        h.record_value(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), SimDuration::ZERO);
    }
}
