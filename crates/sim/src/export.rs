//! Machine-readable exporters for traces and metrics.
//!
//! Three formats, all hand-rolled (the workspace builds offline, so no serde):
//!
//! - [`trace_jsonl`]: one JSON object per line per [`TraceRecord`] — easy to
//!   grep, stream, and post-process.
//! - [`trace_chrome`]: Chrome `trace_event` JSON loadable in
//!   `about://tracing` / Perfetto. Each record becomes an instant event on a
//!   per-source track, and each correlation id additionally becomes an async
//!   span covering its first..last record, so one activity (e.g. the Figure 2
//!   init sequence) renders as a single span tree.
//! - [`metrics_prometheus`] / [`metrics_json`]: point-in-time snapshot of a
//!   [`MetricsHub`] as Prometheus text exposition or JSON.

use std::collections::BTreeMap;

use crate::metrics::MetricsHub;
use crate::profile::ProfileSnapshot;
use crate::record::TraceRecord;
use crate::stats::Histogram;
use crate::trace::TraceSink;

/// Escapes `s` into the body of a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn record_json(r: &TraceRecord) -> String {
    format!(
        "{{\"at_ns\":{},\"source\":\"{}\",\"corr\":{},\"kind\":\"{}\",\"what\":\"{}\"}}",
        r.at.as_nanos(),
        json_escape(&r.source),
        r.corr.0,
        r.data.kind(),
        json_escape(&r.what()),
    )
}

/// The retained trace as JSON-lines (one object per record, oldest first).
pub fn trace_jsonl(sink: &TraceSink) -> String {
    let mut out = String::new();
    for r in sink.events() {
        out.push_str(&record_json(r));
        out.push('\n');
    }
    out
}

/// The retained trace in Chrome `trace_event` format (JSON object form).
///
/// Timestamps are microseconds of virtual time. Sources map to thread ids so
/// each subsystem gets its own track; correlation ids additionally emit
/// `b`/`e` async spans so Perfetto draws one bar per activity.
pub fn trace_chrome(sink: &TraceSink) -> String {
    let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
    let mut spans: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // corr -> (first,last) ns
    for r in sink.events() {
        let next = tids.len() as u64 + 1;
        tids.entry(r.source.as_str()).or_insert(next);
        if r.corr.is_some() {
            let e = spans
                .entry(r.corr.0)
                .or_insert((r.at.as_nanos(), r.at.as_nanos()));
            e.0 = e.0.min(r.at.as_nanos());
            e.1 = e.1.max(r.at.as_nanos());
        }
    }

    let mut events: Vec<String> = Vec::new();
    // Thread (track) names.
    for (source, tid) in &tids {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(source)
        ));
    }
    // Async span per correlation id.
    for (corr, (first, last)) in &spans {
        let ts = *first as f64 / 1_000.0;
        // Zero-length spans still need a visible extent.
        let te = (*last).max(first + 1) as f64 / 1_000.0;
        events.push(format!(
            "{{\"name\":\"c{corr}\",\"cat\":\"span\",\"ph\":\"b\",\"id\":{corr},\
             \"pid\":1,\"tid\":0,\"ts\":{ts:.3}}}"
        ));
        events.push(format!(
            "{{\"name\":\"c{corr}\",\"cat\":\"span\",\"ph\":\"e\",\"id\":{corr},\
             \"pid\":1,\"tid\":0,\"ts\":{te:.3}}}"
        ));
    }
    // Instant event per record on its source's track.
    for r in sink.events() {
        let tid = tids[r.source.as_str()];
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
             \"tid\":{tid},\"ts\":{:.3},\"args\":{{\"corr\":\"{}\",\"what\":\"{}\"}}}}",
            json_escape(&r.what()),
            r.data.kind(),
            r.at.as_nanos() as f64 / 1_000.0,
            r.corr,
            json_escape(&r.what()),
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Sanitizes a hub key into a Prometheus metric name component.
fn prom_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 8);
    out.push_str("lastcpu_");
    for c in key.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// A point-in-time snapshot of the hub in Prometheus text exposition format.
///
/// Counters and gauges map directly; histograms emit summary-style
/// `{quantile=..}` series plus `_sum` (nanoseconds) and `_count`.
pub fn metrics_prometheus(hub: &MetricsHub) -> String {
    let mut out = String::new();
    for (key, v) in hub.counters() {
        let name = prom_name(&key);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (key, v) in hub.gauges() {
        let name = prom_name(&key);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (key, h) in hub.histograms() {
        let name = prom_name(&key);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, p) in [(0.5, 50.0), (0.9, 90.0), (0.99, 99.0), (1.0, 100.0)] {
            out.push_str(&format!(
                "{name}{{quantile=\"{q}\"}} {}\n",
                h.percentile(p).as_nanos()
            ));
        }
        out.push_str(&format!("{name}_sum {}\n", h.sum()));
        out.push_str(&format!("{name}_count {}\n", h.count()));
    }
    out
}

fn histogram_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\
         \"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
        h.count(),
        h.sum(),
        h.min().as_nanos(),
        h.mean().as_nanos(),
        h.percentile(50.0).as_nanos(),
        h.percentile(90.0).as_nanos(),
        h.percentile(99.0).as_nanos(),
        h.max().as_nanos(),
    )
}

/// A point-in-time snapshot of the hub as one JSON object.
pub fn metrics_json(hub: &MetricsHub) -> String {
    let counters: Vec<String> = hub
        .counters()
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
        .collect();
    let gauges: Vec<String> = hub
        .gauges()
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
        .collect();
    let hists: Vec<String> = hub
        .histograms()
        .iter()
        .map(|(k, h)| format!("\"{}\":{}", json_escape(k), histogram_json(h)))
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}\n",
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

/// A profile snapshot (see [`crate::profile::snapshot`]) as one JSON object.
///
/// Scopes are sorted by name so the output is diffable. When `include_wall`
/// is false every wall-clock field is omitted: the remaining numbers are
/// pure functions of the simulated run, so two same-seed runs export
/// byte-identical documents (the E12 determinism gate relies on this).
pub fn profile_json(snap: &ProfileSnapshot, include_wall: bool) -> String {
    let mut scopes: Vec<_> = snap.scopes.iter().collect();
    scopes.sort_by_key(|s| s.name);
    let rows: Vec<String> = scopes
        .iter()
        .map(|s| {
            let mut row = format!(
                "\"{}\":{{\"allocs\":{},\"alloc_bytes\":{},\"spans\":{},\"sim_ns\":{}",
                json_escape(s.name),
                s.allocs,
                s.alloc_bytes,
                s.spans,
                s.sim_ns
            );
            if include_wall {
                row.push_str(&format!(
                    ",\"wall_ns\":{},\"wall_root_ns\":{}",
                    s.wall_ns, s.wall_root_ns
                ));
            }
            row.push('}');
            row
        })
        .collect();
    format!(
        concat!(
            "{{\"scopes\":{{{}}},",
            "\"unattributed\":{{\"allocs\":{},\"alloc_bytes\":{}}},",
            "\"total_allocs\":{},",
            "\"attributed_alloc_fraction\":{:.6}}}\n"
        ),
        rows.join(","),
        snap.unattributed_allocs,
        snap.unattributed_bytes,
        snap.total_allocs(),
        snap.attributed_alloc_fraction(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CorrId, TraceData};
    use crate::time::{SimDuration, SimTime};

    /// Tiny structural JSON validator (objects/arrays/strings/numbers/bools).
    fn check_json(s: &str) -> Result<(), String> {
        let b: Vec<char> = s.chars().collect();
        let mut i = 0usize;
        fn ws(b: &[char], i: &mut usize) {
            while *i < b.len() && b[*i].is_whitespace() {
                *i += 1;
            }
        }
        fn value(b: &[char], i: &mut usize) -> Result<(), String> {
            ws(b, i);
            match b.get(*i) {
                Some('{') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&'}') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        ws(b, i);
                        if b.get(*i) != Some(&'"') {
                            return Err(format!("expected key at {i}"));
                        }
                        string(b, i)?;
                        ws(b, i);
                        if b.get(*i) != Some(&':') {
                            return Err(format!("expected ':' at {i}"));
                        }
                        *i += 1;
                        value(b, i)?;
                        ws(b, i);
                        match b.get(*i) {
                            Some(',') => *i += 1,
                            Some('}') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("bad object at {i}")),
                        }
                    }
                }
                Some('[') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&']') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        value(b, i)?;
                        ws(b, i);
                        match b.get(*i) {
                            Some(',') => *i += 1,
                            Some(']') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("bad array at {i}")),
                        }
                    }
                }
                Some('"') => string(b, i),
                Some(c) if c.is_ascii_digit() || *c == '-' => {
                    while *i < b.len()
                        && (b[*i].is_ascii_digit() || matches!(b[*i], '.' | '-' | '+' | 'e' | 'E'))
                    {
                        *i += 1;
                    }
                    Ok(())
                }
                Some('t') | Some('f') | Some('n') => {
                    while *i < b.len() && b[*i].is_ascii_alphabetic() {
                        *i += 1;
                    }
                    Ok(())
                }
                _ => Err(format!("unexpected token at {i}")),
            }
        }
        fn string(b: &[char], i: &mut usize) -> Result<(), String> {
            *i += 1; // opening quote
            while *i < b.len() {
                match b[*i] {
                    '\\' => *i += 2,
                    '"' => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => *i += 1,
                }
            }
            Err("unterminated string".into())
        }
        value(&b, &mut i)?;
        ws(&b, &mut i);
        if i != b.len() {
            return Err(format!("trailing garbage at {i}"));
        }
        Ok(())
    }

    fn sample_sink() -> TraceSink {
        let mut t = TraceSink::bounded(64);
        t.emit_data(
            SimTime::from_nanos(100),
            "nic0",
            CorrId(1),
            TraceData::Discovery {
                pattern: "file:*".into(),
                dst: "Bus".into(),
            },
        );
        t.emit_data(
            SimTime::from_nanos(350),
            "bus",
            CorrId(1),
            TraceData::Deliver {
                to: "nic0".into(),
                kind: "QueryHit",
            },
        );
        t.emit_corr(
            SimTime::from_nanos(700),
            "ssd0",
            CorrId(2),
            "quoted \"x\"\nline",
        );
        t
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let out = trace_jsonl(&sample_sink());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            check_json(line).unwrap();
        }
        assert!(lines[0].contains("\"corr\":1"));
        assert!(lines[1].contains("-> nic0: QueryHit"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_spans() {
        let out = trace_chrome(&sample_sink());
        check_json(&out).unwrap();
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"ph\":\"b\""));
        assert!(out.contains("\"ph\":\"e\""));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"name\":\"c1\""));
    }

    #[test]
    fn prometheus_snapshot_has_all_metric_kinds() {
        let hub = MetricsHub::new();
        hub.add("bus.messages", 7);
        hub.gauge_set("nic.nic0.queue_depth", 3);
        hub.record("kvs.kvs0.latency", SimDuration::from_micros(10));
        let out = metrics_prometheus(&hub);
        assert!(out.contains("# TYPE lastcpu_bus_messages counter"));
        assert!(out.contains("lastcpu_bus_messages 7"));
        assert!(out.contains("# TYPE lastcpu_nic_nic0_queue_depth gauge"));
        assert!(out.contains("lastcpu_kvs_kvs0_latency_count 1"));
        assert!(out.contains("quantile=\"0.5\""));
    }

    #[test]
    fn profile_json_sorts_scopes_and_gates_wall_fields() {
        use crate::profile::ScopeStats;
        let snap = ProfileSnapshot {
            scopes: vec![
                ScopeStats {
                    name: "zeta.scope",
                    allocs: 3,
                    alloc_bytes: 96,
                    spans: 2,
                    wall_ns: 500,
                    wall_root_ns: 400,
                    sim_ns: 1_000,
                    wall_hist: Histogram::new(),
                },
                ScopeStats {
                    name: "alpha.scope",
                    allocs: 1,
                    alloc_bytes: 8,
                    spans: 1,
                    wall_ns: 100,
                    wall_root_ns: 100,
                    sim_ns: 0,
                    wall_hist: Histogram::new(),
                },
            ],
            unattributed_allocs: 1,
            unattributed_bytes: 16,
        };
        let with_wall = profile_json(&snap, true);
        check_json(with_wall.trim()).unwrap();
        assert!(with_wall.contains("\"wall_ns\":500"));
        assert!(with_wall.find("alpha.scope").unwrap() < with_wall.find("zeta.scope").unwrap());
        let no_wall = profile_json(&snap, false);
        check_json(no_wall.trim()).unwrap();
        assert!(!no_wall.contains("wall"), "wall fields must be stripped");
        assert!(no_wall.contains("\"total_allocs\":5"));
        assert!(no_wall.contains("\"attributed_alloc_fraction\":0.800000"));
    }

    #[test]
    fn metrics_json_is_valid() {
        let hub = MetricsHub::new();
        hub.incr("a.b\"c"); // hostile key
        hub.record_value("h.x", 5);
        hub.gauge_set("g.y", -4);
        let out = metrics_json(&hub);
        check_json(out.trim()).unwrap();
        assert!(out.contains("\"count\":1"));
    }
}
