//! Deterministic discrete-event simulation substrate for the `lastcpu`
//! CPU-less system emulator.
//!
//! "The Last CPU" (HotOS'21) proposes removing the CPU from the system and
//! splitting OS responsibilities between self-managing devices and a
//! privileged system-management bus. The paper's stated next step (§2.4) is a
//! software emulation of such a system; this crate provides the emulation
//! substrate every other crate builds on:
//!
//! - [`SimTime`] / [`SimDuration`]: virtual time in nanoseconds. All latencies
//!   reported by experiments are virtual, so results are independent of the
//!   host machine.
//! - [`EventQueue`]: a priority queue of timestamped events with a
//!   deterministic FIFO tie-break for events scheduled at the same instant.
//! - [`DetRng`]: a seeded, splittable random number generator. Two runs with
//!   the same seed produce identical traces.
//! - [`stats`]: counters and log-bucketed latency histograms used by the
//!   benchmark harness to report percentiles.
//! - [`trace`] / [`record`]: a structured trace sink of typed records
//!   carrying causal correlation ids (e.g. the seven steps of the paper's
//!   Figure 2 initialization sequence reconstruct as one span).
//! - [`metrics`]: the system-wide [`MetricsHub`] every subsystem registers
//!   counters, gauges, and histograms into.
//! - [`export`]: JSON-lines, Chrome `trace_event`, and Prometheus exporters
//!   so every experiment can emit machine-readable artifacts.
//! - [`fault`]: deterministic fault plans ([`FaultPlan`]) and the shared
//!   bounded-exponential [`BackoffPolicy`], so failure experiments replay
//!   bit-identically from a seed.
//! - [`dethash`]: [`DetHashMap`] / [`DetHashSet`] — seedless FNV-backed
//!   maps for simulator state, so even *allocation counts* (which the
//!   [`profile`] layer attributes per scope) are identical across
//!   processes, not just simulation semantics.
//!
//! The substrate is intentionally single-threaded: determinism is worth more
//! to an OS-design experiment than parallel speedup, and the simulated
//! machine itself is highly concurrent regardless.

pub mod critpath;
pub mod dethash;
pub mod export;
pub mod fault;
pub mod metrics;
pub mod pool;
pub mod profile;
pub mod queue;
pub mod record;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use critpath::CritPathReport;
pub use dethash::{DetHashMap, DetHashSet};
pub use fault::{BackoffPolicy, FaultEvent, FaultKind, FaultPlan};
pub use metrics::{CounterHandle, GaugeHandle, HistogramHandle, MetricsHub};
pub use pool::{BufPool, Bytes, PoolStats};
pub use profile::{AllocScope, ProfileSnapshot};
pub use queue::{EventQueue, QueueEngine, ScheduledEvent};
pub use record::{CorrId, TraceData, TraceRecord};
pub use rng::DetRng;
pub use stats::{Counter, Histogram, StatsRegistry};
pub use time::{SimDuration, SimTime};
pub use trace::TraceSink;
