//! Deterministic fault injection and retry/backoff policy.
//!
//! The paper assigns "initialization, coordination, and error handling" to
//! the management bus; this module supplies the *error* half of that story
//! in a form a discrete-event simulator can trust. A [`FaultPlan`] is an
//! ordinary data structure — a sorted list of `(time, target, kind)`
//! injections derived from a [`DetRng`] seed — that the system scheduler
//! turns into regular discrete events, so a faulty run replays
//! bit-identically from its seed (the gem5 lesson: fault paths are only
//! trusted once they are as deterministic as happy paths).
//!
//! [`BackoffPolicy`] is the shared bounded-exponential-backoff-with-jitter
//! policy used by bus RPC retries and the FTL's media retries; jitter comes
//! from a caller-supplied [`DetRng`] stream so it, too, replays.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// What kind of fault to inject at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silently discard the next `count` bus messages sent by or delivered
    /// to the target (wire-layer loss).
    Drop {
        /// Messages to discard.
        count: u32,
    },
    /// Flip one wire bit in each of the next `count` messages touching the
    /// target. Messages that no longer decode are discarded; ones that
    /// still decode are delivered corrupted (the bus fencing/validation
    /// layers must cope).
    Corrupt {
        /// Messages to corrupt.
        count: u32,
    },
    /// Add `extra` latency to the next `count` messages touching the
    /// target (a congested or flapping link).
    Delay {
        /// Messages to delay.
        count: u32,
        /// Additional latency per message, in nanoseconds.
        extra_ns: u64,
    },
    /// Crash the target device: it is fenced, the bus broadcasts
    /// `DeviceFailed`, and the management-bus recovery path resets it and
    /// replays the Figure-2 init sequence.
    Crash,
    /// Hang the target silently: it stops processing *without* telling the
    /// bus. Only the heartbeat liveness sweep can detect this, making it
    /// the adversarial test of the detection path.
    Hang,
    /// Multiply the target's processing time by `factor` for `for_ns`
    /// nanoseconds (thermal throttling, background housekeeping).
    SlowDown {
        /// Service-time multiplier (≥ 1).
        factor: u32,
        /// How long the slowdown lasts, in nanoseconds.
        for_ns: u64,
    },
    /// Deliver `count` spurious IOMMU translation faults to the target in
    /// quick succession (a translation-fault storm).
    IommuStorm {
        /// Faults to deliver.
        count: u32,
    },
}

impl FaultKind {
    /// Short stable tag for traces and tables.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::Drop { .. } => "drop",
            FaultKind::Corrupt { .. } => "corrupt",
            FaultKind::Delay { .. } => "delay",
            FaultKind::Crash => "crash",
            FaultKind::Hang => "hang",
            FaultKind::SlowDown { .. } => "slowdown",
            FaultKind::IommuStorm { .. } => "iommu-storm",
        }
    }
}

/// One scheduled injection: at `at`, do `kind` to the device named
/// `target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// Device name the fault applies to.
    pub target: String,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultKind {
    /// Stable wire encoding for checkpoints.
    pub fn encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        match self {
            FaultKind::Drop { count } => {
                w.put_u8(0);
                w.put_u32(*count);
            }
            FaultKind::Corrupt { count } => {
                w.put_u8(1);
                w.put_u32(*count);
            }
            FaultKind::Delay { count, extra_ns } => {
                w.put_u8(2);
                w.put_u32(*count);
                w.put_u64(*extra_ns);
            }
            FaultKind::Crash => w.put_u8(3),
            FaultKind::Hang => w.put_u8(4),
            FaultKind::SlowDown { factor, for_ns } => {
                w.put_u8(5);
                w.put_u32(*factor);
                w.put_u64(*for_ns);
            }
            FaultKind::IommuStorm { count } => {
                w.put_u8(6);
                w.put_u32(*count);
            }
        }
    }

    /// Inverse of [`FaultKind::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<FaultKind> {
        Ok(match r.u8()? {
            0 => FaultKind::Drop { count: r.u32()? },
            1 => FaultKind::Corrupt { count: r.u32()? },
            2 => FaultKind::Delay {
                count: r.u32()?,
                extra_ns: r.u64()?,
            },
            3 => FaultKind::Crash,
            4 => FaultKind::Hang,
            5 => FaultKind::SlowDown {
                factor: r.u32()?,
                for_ns: r.u64()?,
            },
            6 => FaultKind::IommuStorm { count: r.u32()? },
            tag => {
                return Err(lastcpu_snap::SnapError::Corrupt {
                    section: "faults".into(),
                    detail: format!("unknown FaultKind tag {tag}"),
                })
            }
        })
    }
}

impl FaultEvent {
    /// Stable wire encoding for checkpoints.
    pub fn encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.at.as_nanos());
        w.put_str(&self.target);
        self.kind.encode(w);
    }

    /// Inverse of [`FaultEvent::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<FaultEvent> {
        Ok(FaultEvent {
            at: SimTime::from_nanos(r.u64()?),
            target: r.str()?,
            kind: FaultKind::decode(r)?,
        })
    }
}

/// A deterministic fault schedule.
///
/// Either built explicitly (`inject`) or generated from a seed
/// (`generate`); in both cases the plan is plain data, so two systems fed
/// the same plan produce identical event streams.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan remembering `seed` (used to derive per-fault RNG
    /// streams, e.g. for corruption bit choice).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds one injection.
    pub fn inject(&mut self, at: SimTime, target: impl Into<String>, kind: FaultKind) -> &mut Self {
        self.events.push(FaultEvent {
            at,
            target: target.into(),
            kind,
        });
        self
    }

    /// The scheduled injections, sorted by time (stable for equal times, so
    /// insertion order breaks ties deterministically).
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut v = self.events.clone();
        v.sort_by_key(|e| e.at);
        v
    }

    /// Number of scheduled injections.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a random plan of `count` faults against `targets` spread
    /// over `[t0 + horizon/8, t0 + horizon)`.
    ///
    /// Purely a function of its arguments: the same seed always yields the
    /// same plan. The leading eighth of the horizon is kept fault-free so
    /// the system finishes the Figure-2 init sequence before the first
    /// injection.
    pub fn generate(
        seed: u64,
        targets: &[&str],
        start: SimTime,
        horizon: SimDuration,
        count: u32,
    ) -> Self {
        assert!(!targets.is_empty(), "fault plan needs at least one target");
        let mut rng = DetRng::new(seed ^ 0xFA17_FA17_FA17_FA17);
        let mut plan = FaultPlan::new(seed);
        let quiet = horizon.as_nanos() / 8;
        let window = horizon.as_nanos().saturating_sub(quiet).max(1);
        for _ in 0..count {
            let at = start + SimDuration::from_nanos(quiet + rng.below(window));
            let target = targets[rng.below(targets.len() as u64) as usize];
            let kind = match rng.below(7) {
                0 => FaultKind::Drop {
                    count: 1 + rng.below(4) as u32,
                },
                1 => FaultKind::Corrupt {
                    count: 1 + rng.below(3) as u32,
                },
                2 => FaultKind::Delay {
                    count: 1 + rng.below(8) as u32,
                    extra_ns: 1_000 + rng.below(50_000),
                },
                3 => FaultKind::Crash,
                4 => FaultKind::Hang,
                5 => FaultKind::SlowDown {
                    factor: 2 + rng.below(7) as u32,
                    for_ns: 100_000 + rng.below(2_000_000),
                },
                _ => FaultKind::IommuStorm {
                    count: 1 + rng.below(16) as u32,
                },
            };
            plan.inject(at, target, kind);
        }
        plan
    }

    /// A per-fault RNG stream derived from the plan seed and the fault's
    /// index, for deterministic choices *while applying* a fault (which bit
    /// to flip, etc.).
    pub fn stream(&self, fault_index: u64) -> DetRng {
        DetRng::new(self.seed).split(0xB17F_0000 ^ fault_index)
    }
}

/// Bounded exponential backoff with deterministic jitter.
///
/// Attempt numbering: attempt 0 is the original try; `delay(k, ..)` is the
/// pause before retry `k` (the `k`-th re-issue, 1-based). Once
/// `k > max_retries` the request is exhausted and the caller must surface a
/// terminal error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Upper bound any single delay is clamped to.
    pub cap: SimDuration,
    /// Retries allowed after the original attempt.
    pub max_retries: u32,
    /// Jitter as a percentage of the computed delay (`0` disables jitter);
    /// the jittered delay is `d + uniform(0, d*jitter_pct/100]`.
    pub jitter_pct: u32,
}

impl Default for BackoffPolicy {
    /// 10 µs base, 1 ms cap, 5 retries, 25 % jitter — tuned to the
    /// emulator's bus RTT (a few µs), not wall-clock networks.
    fn default() -> Self {
        BackoffPolicy {
            base: SimDuration::from_micros(10),
            cap: SimDuration::from_millis(1),
            max_retries: 5,
            jitter_pct: 25,
        }
    }
}

impl BackoffPolicy {
    /// The deterministic (jitter-free) delay before retry `retry`
    /// (1-based), or `None` once the budget is exhausted.
    pub fn delay(&self, retry: u32) -> Option<SimDuration> {
        if retry == 0 || retry > self.max_retries {
            return None;
        }
        let factor = 1u64 << (retry - 1).min(20);
        Some(
            self.base
                .saturating_mul(factor)
                .min(self.cap)
                .max(SimDuration::from_nanos(1)),
        )
    }

    /// Like [`BackoffPolicy::delay`] but with jitter drawn from `rng`
    /// (deterministic given the stream).
    pub fn delay_jittered(&self, retry: u32, rng: &mut DetRng) -> Option<SimDuration> {
        let d = self.delay(retry)?;
        if self.jitter_pct == 0 {
            return Some(d);
        }
        let span = d.as_nanos().saturating_mul(self.jitter_pct as u64) / 100;
        let jitter = if span == 0 { 0 } else { rng.below(span + 1) };
        Some(d + SimDuration::from_nanos(jitter))
    }

    /// Total attempts (original + retries).
    pub fn max_attempts(&self) -> u32 {
        self.max_retries + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_generation_is_deterministic() {
        let targets = ["nic0", "ssd0", "memctl0"];
        let a = FaultPlan::generate(7, &targets, SimTime::ZERO, SimDuration::from_secs(1), 32);
        let b = FaultPlan::generate(7, &targets, SimTime::ZERO, SimDuration::from_secs(1), 32);
        assert_eq!(a.events(), b.events());
        let c = FaultPlan::generate(8, &targets, SimTime::ZERO, SimDuration::from_secs(1), 32);
        assert_ne!(a.events(), c.events(), "different seed, different plan");
    }

    #[test]
    fn plan_respects_quiet_period_and_horizon() {
        let horizon = SimDuration::from_millis(80);
        let start = SimTime::from_nanos(500);
        let p = FaultPlan::generate(3, &["d0"], start, horizon, 64);
        assert_eq!(p.len(), 64);
        for e in p.events() {
            assert!(e.at >= start + SimDuration::from_nanos(horizon.as_nanos() / 8));
            assert!(e.at < start + horizon);
        }
    }

    #[test]
    fn events_sorted_with_stable_ties() {
        let mut p = FaultPlan::new(0);
        let t = SimTime::from_nanos(10);
        p.inject(t, "b", FaultKind::Crash);
        p.inject(SimTime::from_nanos(5), "a", FaultKind::Hang);
        p.inject(t, "c", FaultKind::Crash);
        let ev = p.events();
        assert_eq!(ev[0].target, "a");
        assert_eq!(ev[1].target, "b", "equal times keep insertion order");
        assert_eq!(ev[2].target, "c");
    }

    #[test]
    fn backoff_grows_doubles_and_caps() {
        let p = BackoffPolicy {
            base: SimDuration::from_micros(10),
            cap: SimDuration::from_micros(55),
            max_retries: 5,
            jitter_pct: 0,
        };
        assert_eq!(p.delay(0), None, "attempt 0 is the original try");
        assert_eq!(p.delay(1), Some(SimDuration::from_micros(10)));
        assert_eq!(p.delay(2), Some(SimDuration::from_micros(20)));
        assert_eq!(p.delay(3), Some(SimDuration::from_micros(40)));
        assert_eq!(p.delay(4), Some(SimDuration::from_micros(55)), "capped");
        assert_eq!(p.delay(5), Some(SimDuration::from_micros(55)));
        assert_eq!(p.delay(6), None, "budget exhausted");
        assert_eq!(p.max_attempts(), 6);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = BackoffPolicy {
            jitter_pct: 50,
            ..BackoffPolicy::default()
        };
        let mut r1 = DetRng::new(42);
        let mut r2 = DetRng::new(42);
        for retry in 1..=p.max_retries {
            let base = p.delay(retry).unwrap();
            let a = p.delay_jittered(retry, &mut r1).unwrap();
            let b = p.delay_jittered(retry, &mut r2).unwrap();
            assert_eq!(a, b, "same stream, same jitter");
            assert!(a >= base);
            assert!(a.as_nanos() <= base.as_nanos() + base.as_nanos() / 2 + 1);
        }
    }

    #[test]
    fn fault_streams_differ_per_index_but_replay() {
        let p = FaultPlan::new(99);
        assert_eq!(p.stream(0).next_u64(), p.stream(0).next_u64());
        assert_ne!(p.stream(0).next_u64(), p.stream(1).next_u64());
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(FaultKind::Crash.tag(), "crash");
        assert_eq!(FaultKind::Drop { count: 1 }.tag(), "drop");
        assert_eq!(
            FaultKind::Delay {
                count: 1,
                extra_ns: 5
            }
            .tag(),
            "delay"
        );
    }
}
