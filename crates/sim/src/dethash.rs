//! Deterministic hashing for simulation state.
//!
//! `std::collections::HashMap` seeds its hasher per process
//! (`RandomState`), which is fine for semantics — every map in the
//! simulator is either iterated in sorted order or not iterated at all —
//! but it leaks into *allocation counts*: hashbrown decides
//! tombstone-vs-empty on removal and rehash-vs-resize on insert based on
//! where keys land, so two same-seed runs in different processes can
//! differ by a handful of table reallocations. That is invisible to
//! normal metrics and fatal to the E12 attribution gate, which requires
//! same-seed runs to be byte-identical *including* per-scope allocation
//! counts.
//!
//! [`DetHashMap`] / [`DetHashSet`] replace the random seed with FNV-1a,
//! making table growth a pure function of the key sequence. Use them for
//! all simulator state; keep `std` maps only in host-side tooling where
//! reproducible allocation behavior does not matter. FNV is not
//! HashDoS-resistant, which is irrelevant here: every key is produced by
//! the deterministic simulation itself, never by an adversary with
//! influence over hash seeds (the E11 adversary manipulates bus traffic,
//! not host hash tables).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FNV-1a. Small, allocation-free, and — unlike `RandomState` —
/// identical in every process.
#[derive(Debug, Clone)]
pub struct DetHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for DetHasher {
    fn default() -> Self {
        DetHasher(FNV_OFFSET)
    }
}

impl Hasher for DetHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The deterministic `BuildHasher` behind [`DetHashMap`].
pub type DetBuildHasher = BuildHasherDefault<DetHasher>;

/// A `HashMap` whose allocation pattern is a pure function of the key
/// sequence (no per-process seed).
pub type DetHashMap<K, V> = HashMap<K, V, DetBuildHasher>;

/// Set counterpart of [`DetHashMap`].
pub type DetHashSet<T> = HashSet<T, DetBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn fnv1a_known_answers() {
        // Reference vectors for 64-bit FNV-1a.
        let hash = |bytes: &[u8]| {
            let mut h = DetHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn build_hasher_is_seedless() {
        // Two independently-constructed states hash identically — the
        // property RandomState lacks and the E12 byte-identity gate needs.
        let a = DetBuildHasher::default();
        let b = DetBuildHasher::default();
        for key in [0u64, 1, 42, u64::MAX] {
            assert_eq!(a.hash_one(key), b.hash_one(key));
        }
    }

    #[test]
    fn map_works_with_byte_keys() {
        let mut m: DetHashMap<Vec<u8>, u32> = DetHashMap::default();
        for i in 0..1000u32 {
            m.insert(i.to_le_bytes().to_vec(), i);
        }
        for i in (0..1000u32).step_by(3) {
            m.remove(i.to_le_bytes().to_vec().as_slice());
        }
        assert_eq!(m.len(), 666);
        assert_eq!(m.get(1u32.to_le_bytes().as_slice()), Some(&1));
    }
}
