//! Offline causal critical-path analysis (E12).
//!
//! The rack experiments measure end-to-end latency but nothing decomposes a
//! slow operation into *where the time went*: client-side queueing, fabric
//! uplink serialization, spine switching, replica service time, or waiting
//! for the last replication ack. This module walks a (merged) trace and does
//! that decomposition.
//!
//! # Input
//!
//! Workload hosts emit [`TraceData::Stage`] records at protocol milestones
//! (the labels below), and the rack fabric emits one [`TraceData::LinkHop`]
//! per forwarded frame carrying its uplink/spine/downlink timing split. The
//! analyzer joins stages on `(machine, op key)` for the client/router side
//! and on the globally-unique sub-request id for the replica side, then
//! reconstructs each completed operation's **critical chain**:
//!
//! ```text
//! client.issue → router.recv → router.sub ⇢ server.recv → server.done
//!       ⇢ router.ack(last) → router.respond → client.done
//! ```
//!
//! where the critical sub-request is the one whose ack arrived last (for
//! replicated writes, the straggler that gated the response). Consecutive
//! deltas along the chain become named segments, so per-op segments **sum
//! exactly to the measured end-to-end latency**. The two `⇢` transits are
//! further split into uplink / spine / downlink using the matching
//! [`TraceData::LinkHop`] record (the remainder is intra-machine switch
//! delivery); same-machine sub-requests have no hop and count entirely as
//! local delivery.
//!
//! All inputs are virtual-time, so the analysis is bit-deterministic: two
//! same-seed runs produce identical reports.

use std::collections::BTreeMap;

use crate::record::{TraceData, TraceRecord};

/// Stage label: client admitted an operation to the wire.
pub const STAGE_CLIENT_ISSUE: &str = "client.issue";
/// Stage label: client received the response.
pub const STAGE_CLIENT_DONE: &str = "client.done";
/// Stage label: shard router received a client request.
pub const STAGE_ROUTER_RECV: &str = "router.recv";
/// Stage label: shard router sent one sub-request toward a replica.
pub const STAGE_ROUTER_SUB: &str = "router.sub";
/// Stage label: shard router received a sub-request ack.
pub const STAGE_ROUTER_ACK: &str = "router.ack";
/// Stage label: shard router responded to the client.
pub const STAGE_ROUTER_RESPOND: &str = "router.respond";
/// Stage label: replica server received a sub-request.
pub const STAGE_SERVER_RECV: &str = "server.recv";
/// Stage label: replica server finished and sent its ack.
pub const STAGE_SERVER_DONE: &str = "server.done";

/// Builds the per-operation join key from the client's switch port and its
/// request id. Per-client request-id sequences collide across clients, so
/// the port disambiguates; the analyzer additionally scopes this key by the
/// machine the records came from.
pub fn op_key(client_port: u32, req_id: u64) -> u64 {
    ((client_port as u64) << 48) | (req_id & 0xFFFF_FFFF_FFFF)
}

/// Named critical-chain segments, in chain order.
pub const SEGMENTS: [&str; 9] = [
    "client_queue",      // client.issue -> router.recv
    "router_dispatch",   // router.recv -> router.sub (incl. retry/failover wait)
    "uplink",            // fabric uplink queue + serialization (both transits)
    "spine",             // spine switch + propagation (both transits)
    "downlink",          // fabric downlink queue + serialization (both transits)
    "local_delivery",    // intra-machine switch hops of both transits
    "replica_service",   // server.recv -> server.done
    "ack_aggregation",   // last ack -> router.respond
    "response_delivery", // router.respond -> client.done
];

const NSEG: usize = SEGMENTS.len();

/// One completed operation's decomposition (all virtual ns).
#[derive(Debug, Clone)]
pub struct OpBreakdown {
    /// End-to-end latency: `client.done - client.issue`.
    pub total_ns: u64,
    /// Per-segment ns, indexed like [`SEGMENTS`]; sums to `total_ns`.
    pub segments: [u64; NSEG],
    /// Whether the critical sub-request crossed machines.
    pub crossed_fabric: bool,
}

/// Averaged segment row for one percentile band.
#[derive(Debug, Clone)]
pub struct PercentileRow {
    /// The percentile this row describes (e.g. `99.0`).
    pub percentile: f64,
    /// Mean end-to-end ns over the band of ops around that percentile.
    pub total_ns: f64,
    /// Mean per-segment ns over the same band; sums to ~`total_ns`.
    pub segments: [f64; NSEG],
    /// Name of the largest segment in the band.
    pub dominant: &'static str,
}

/// The analyzer's output.
#[derive(Debug, Clone, Default)]
pub struct CritPathReport {
    /// Fully reconstructed operations.
    pub ops: Vec<OpBreakdown>,
    /// Operations with a `client.issue` but no joinable full chain (still
    /// in flight at run end, evicted trace records, or gave up).
    pub incomplete: u64,
    /// Percentile rows (p50 / p90 / p99 / p99.9), empty when no op completed.
    pub rows: Vec<PercentileRow>,
}

impl CritPathReport {
    /// The row for percentile `p`, if present.
    pub fn row(&self, p: f64) -> Option<&PercentileRow> {
        self.rows.iter().find(|r| (r.percentile - p).abs() < 1e-9)
    }

    /// Name of the dominant segment at p99 (`None` when no op completed).
    pub fn dominant_at_p99(&self) -> Option<&'static str> {
        self.row(99.0).map(|r| r.dominant)
    }

    /// Largest relative gap between any op's segment sum and its total.
    /// Exactly 0 by construction; kept as an executable invariant for the
    /// E12 acceptance gate ("segments sum to within 5% of end-to-end").
    pub fn worst_sum_error(&self) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.total_ns > 0)
            .map(|o| {
                let s: u64 = o.segments.iter().sum();
                (s as f64 - o.total_ns as f64).abs() / o.total_ns as f64
            })
            .fold(0.0, f64::max)
    }
}

/// The machine prefix of a merged-trace source (`"m3/kvs.router"` → `"m3"`;
/// sources without one — single-machine runs — map to `""`).
fn machine_of(source: &str) -> &str {
    match source.split_once('/') {
        Some((m, _)) if m.starts_with('m') => m,
        _ => "",
    }
}

fn machine_index(source: &str) -> Option<usize> {
    machine_of(source).strip_prefix('m')?.parse().ok()
}

#[derive(Default)]
struct OpMarks {
    issue: Option<u64>,
    router_recv: Option<u64>,
    respond: Option<u64>,
    done: Option<u64>,
    /// (time, sub id) of every `router.ack` for this op.
    acks: Vec<(u64, u64)>,
}

#[derive(Default)]
struct SubMarks {
    /// Every `router.sub` send time (retries re-send under the same id).
    sent: Vec<u64>,
    /// Every `server.recv` time with the serving machine index.
    recv: Vec<(u64, Option<usize>)>,
    /// Every `server.done` time with the serving machine index.
    done: Vec<(u64, Option<usize>)>,
    /// Machine the sub was issued from (the op's home machine).
    home: Option<usize>,
}

struct Hop {
    at: u64,
    src: usize,
    dst: usize,
    uplink: u64,
    spine: u64,
    downlink: u64,
    used: bool,
}

/// Decomposes every completed operation found in `records`.
///
/// `records` is typically a fabric `merged_trace()`; a single machine's
/// trace works too (transit segments then collapse into local delivery).
pub fn analyze(records: &[TraceRecord]) -> CritPathReport {
    // Join phase: bucket stage marks by key.
    let mut ops: BTreeMap<(String, u64), OpMarks> = BTreeMap::new();
    let mut subs: BTreeMap<u64, SubMarks> = BTreeMap::new();
    let mut hops: Vec<Hop> = Vec::new();

    for r in records {
        let at = r.at.as_nanos();
        match &r.data {
            TraceData::Stage { stage, id, aux } => {
                let m = machine_of(&r.source).to_string();
                match *stage {
                    STAGE_CLIENT_ISSUE => {
                        ops.entry((m, *id)).or_default().issue.get_or_insert(at);
                    }
                    STAGE_ROUTER_RECV => {
                        ops.entry((m, *id))
                            .or_default()
                            .router_recv
                            .get_or_insert(at);
                    }
                    STAGE_ROUTER_RESPOND => {
                        ops.entry((m, *id)).or_default().respond.get_or_insert(at);
                    }
                    STAGE_CLIENT_DONE => {
                        ops.entry((m, *id)).or_default().done.get_or_insert(at);
                    }
                    STAGE_ROUTER_SUB => {
                        let s = subs.entry(*id).or_default();
                        s.sent.push(at);
                        s.home = machine_index(&r.source);
                        ops.entry((m, *aux)).or_default();
                    }
                    STAGE_ROUTER_ACK => {
                        ops.entry((m, *aux)).or_default().acks.push((at, *id));
                    }
                    STAGE_SERVER_RECV => {
                        subs.entry(*id)
                            .or_default()
                            .recv
                            .push((at, machine_index(&r.source)));
                    }
                    STAGE_SERVER_DONE => {
                        subs.entry(*id)
                            .or_default()
                            .done
                            .push((at, machine_index(&r.source)));
                    }
                    _ => {}
                }
            }
            TraceData::LinkHop {
                src_machine,
                dst_machine,
                bytes: _,
                uplink_ns,
                spine_ns,
                downlink_ns,
            } => hops.push(Hop {
                at,
                src: *src_machine,
                dst: *dst_machine,
                uplink: *uplink_ns,
                spine: *spine_ns,
                downlink: *downlink_ns,
                used: false,
            }),
            _ => {}
        }
    }

    // Chain phase: walk each op backwards through its critical sub.
    let mut out = CritPathReport::default();
    for marks in ops.values() {
        match reconstruct(marks, &subs, &mut hops) {
            Some(op) => out.ops.push(op),
            None => out.incomplete += 1,
        }
    }

    // Percentile rows over ops sorted by end-to-end latency.
    let mut order: Vec<usize> = (0..out.ops.len()).collect();
    order.sort_by_key(|&i| (out.ops[i].total_ns, i));
    if !order.is_empty() {
        let n = order.len();
        for p in [50.0f64, 90.0, 99.0, 99.9] {
            let rank = (((p / 100.0) * n as f64).ceil().max(1.0) as usize - 1).min(n - 1);
            // Band of ±max(1, n/200) neighbors smooths single-op noise.
            let w = (n / 200).max(1);
            let lo = rank.saturating_sub(w);
            let hi = (rank + w + 1).min(n);
            let band = &order[lo..hi];
            let mut segs = [0.0f64; NSEG];
            let mut total = 0.0f64;
            for &i in band {
                total += out.ops[i].total_ns as f64;
                for (s, v) in segs.iter_mut().zip(out.ops[i].segments) {
                    *s += v as f64;
                }
            }
            let k = band.len() as f64;
            segs.iter_mut().for_each(|s| *s /= k);
            total /= k;
            let dom = segs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
                .map(|(i, _)| SEGMENTS[i])
                .unwrap_or(SEGMENTS[0]);
            out.rows.push(PercentileRow {
                percentile: p,
                total_ns: total,
                segments: segs,
                dominant: dom,
            });
        }
    }
    out
}

/// Latest element of `v` at or before `limit`.
fn latest_before(v: &[u64], limit: u64) -> Option<u64> {
    v.iter().copied().filter(|&t| t <= limit).max()
}

fn latest_before_m(v: &[(u64, Option<usize>)], limit: u64) -> Option<(u64, Option<usize>)> {
    v.iter().copied().filter(|&(t, _)| t <= limit).max()
}

fn reconstruct(
    marks: &OpMarks,
    subs: &BTreeMap<u64, SubMarks>,
    hops: &mut [Hop],
) -> Option<OpBreakdown> {
    let issue = marks.issue?;
    let done = marks.done?;
    let recv = marks.router_recv?;
    let respond = marks.respond?;
    // Critical sub: the ack that gated the response (latest ack ≤ respond).
    let (ack_at, sub_id) = marks
        .acks
        .iter()
        .copied()
        .filter(|&(t, _)| t <= respond)
        .max()?;
    let sub = subs.get(&sub_id)?;
    let (srv_done, srv_done_m) = latest_before_m(&sub.done, ack_at)?;
    let (srv_recv, srv_recv_m) = latest_before_m(&sub.recv, srv_done)?;
    let sent = latest_before(&sub.sent, srv_recv)?;

    let mut seg = [0u64; NSEG];
    seg[0] = recv - issue; // client_queue
    seg[1] = sent - recv; // router_dispatch
                          // Request transit: sent -> srv_recv, split by the matching fabric hop.
    let req_transit = srv_recv - sent;
    let mut crossed = false;
    let (mut up, mut sp, mut dn) = (0u64, 0u64, 0u64);
    if let (Some(home), Some(dst)) = (sub.home, srv_recv_m) {
        if home != dst {
            crossed = true;
            if let Some((u, s, d)) = take_hop(hops, home, dst, sent, srv_recv) {
                up += u;
                sp += s;
                dn += d;
            }
        }
    }
    // Ack transit: srv_done -> ack_at, split likewise (reverse direction).
    let ack_transit = ack_at - srv_done;
    if let (Some(home), Some(src)) = (sub.home, srv_done_m) {
        if home != src {
            crossed = true;
            if let Some((u, s, d)) = take_hop(hops, src, home, srv_done, ack_at) {
                up += u;
                sp += s;
                dn += d;
            }
        }
    }
    let split = up + sp + dn;
    let transit = req_transit + ack_transit;
    // The hop decomposition can never exceed the observed transit window;
    // clip defensively so segments always sum exactly to the total.
    let (up, sp, dn) = if split > transit && split > 0 {
        let scale = |v: u64| ((v as u128 * transit as u128) / split as u128) as u64;
        (scale(up), scale(sp), scale(dn))
    } else {
        (up, sp, dn)
    };
    seg[2] = up;
    seg[3] = sp;
    seg[4] = dn;
    seg[5] = transit - (up + sp + dn); // local_delivery (residual)
    seg[6] = srv_done - srv_recv; // replica_service
    seg[7] = respond - ack_at; // ack_aggregation
    seg[8] = done - respond; // response_delivery

    let total = done - issue;
    debug_assert_eq!(seg.iter().sum::<u64>(), total);
    Some(OpBreakdown {
        total_ns: total,
        segments: seg,
        crossed_fabric: crossed,
    })
}

/// Finds (and consumes) the latest unused fabric hop from `src` to `dst`
/// delivered inside `(after, until]`, returning its timing split.
fn take_hop(
    hops: &mut [Hop],
    src: usize,
    dst: usize,
    after: u64,
    until: u64,
) -> Option<(u64, u64, u64)> {
    let best = hops
        .iter()
        .enumerate()
        .filter(|(_, h)| !h.used && h.src == src && h.dst == dst && h.at > after && h.at <= until)
        .max_by_key(|(i, h)| (h.at, usize::MAX - i))
        .map(|(i, _)| i)?;
    let h = &mut hops[best];
    h.used = true;
    Some((h.uplink, h.spine, h.downlink))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CorrId;
    use crate::time::SimTime;

    fn stage(at: u64, source: &str, label: &'static str, id: u64, aux: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_nanos(at),
            source: source.into(),
            corr: CorrId::NONE,
            data: TraceData::Stage {
                stage: label,
                id,
                aux,
            },
        }
    }

    fn hop(at: u64, src: usize, dst: usize, up: u64, sp: u64, dn: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_nanos(at),
            source: "fabric".into(),
            corr: CorrId::NONE,
            data: TraceData::LinkHop {
                src_machine: src,
                dst_machine: dst,
                bytes: 100,
                uplink_ns: up,
                spine_ns: sp,
                downlink_ns: dn,
            },
        }
    }

    /// One replicated write crossing m0 -> m1 and back; the m1 replica's ack
    /// arrives last and is therefore critical.
    fn rack_op() -> Vec<TraceRecord> {
        let k = op_key(7, 1);
        let sub_fast = 1 << 62 | 100; // served locally on m0
        let sub_slow = 1 << 62 | 101; // served on m1
        vec![
            stage(1_000, "m0/host7", STAGE_CLIENT_ISSUE, k, 0),
            stage(1_400, "m0/kvs.router", STAGE_ROUTER_RECV, k, 0),
            stage(1_600, "m0/kvs.router", STAGE_ROUTER_SUB, sub_fast, k),
            stage(1_650, "m0/kvs.router", STAGE_ROUTER_SUB, sub_slow, k),
            stage(1_900, "m0/kvs.server0", STAGE_SERVER_RECV, sub_fast, 0),
            stage(2_200, "m0/kvs.server0", STAGE_SERVER_DONE, sub_fast, 0),
            stage(2_500, "m0/kvs.router", STAGE_ROUTER_ACK, sub_fast, k),
            hop(3_000, 0, 1, 400, 700, 250), // request hop for sub_slow
            stage(3_200, "m1/kvs.server2", STAGE_SERVER_RECV, sub_slow, 0),
            stage(4_200, "m1/kvs.server2", STAGE_SERVER_DONE, sub_slow, 0),
            hop(5_400, 1, 0, 300, 700, 200), // ack hop
            stage(5_650, "m0/kvs.router", STAGE_ROUTER_ACK, sub_slow, k),
            stage(5_700, "m0/kvs.router", STAGE_ROUTER_RESPOND, k, 0),
            stage(6_000, "m0/host7", STAGE_CLIENT_DONE, k, 0),
        ]
    }

    #[test]
    fn decomposes_one_rack_op() {
        let report = analyze(&rack_op());
        assert_eq!(report.ops.len(), 1);
        assert_eq!(report.incomplete, 0);
        let op = &report.ops[0];
        assert_eq!(op.total_ns, 5_000);
        assert!(op.crossed_fabric);
        let by: BTreeMap<_, _> = SEGMENTS.iter().copied().zip(op.segments).collect();
        assert_eq!(by["client_queue"], 400);
        assert_eq!(by["router_dispatch"], 250); // recv 1400 -> slow sub 1650
        assert_eq!(by["uplink"], 700); // 400 + 300
        assert_eq!(by["spine"], 1_400); // 700 + 700
        assert_eq!(by["downlink"], 450); // 250 + 200
        assert_eq!(by["replica_service"], 1_000);
        assert_eq!(by["ack_aggregation"], 50);
        assert_eq!(by["response_delivery"], 300);
        // Residual local delivery makes the chain sum exact.
        assert_eq!(op.segments.iter().sum::<u64>(), op.total_ns);
        assert_eq!(report.worst_sum_error(), 0.0);
    }

    #[test]
    fn percentile_rows_name_a_dominant_segment() {
        // 50 copies of the rack op, shifted in time so keys do not collide
        // (different client ports).
        let mut records = Vec::new();
        for i in 0..50u64 {
            for mut r in rack_op() {
                r.at = SimTime::from_nanos(r.at.as_nanos() + i * 100_000);
                if let TraceData::Stage { id, aux, .. } = &mut r.data {
                    let shift = |v: &mut u64| {
                        if *v >= 1 << 62 {
                            *v += i * 1000; // sub ids stay unique
                        } else if *v != 0 {
                            *v = op_key(7 + i as u32, 1);
                        }
                    };
                    shift(id);
                    shift(aux);
                }
                records.push(r);
            }
        }
        let report = analyze(&records);
        assert_eq!(report.ops.len(), 50);
        assert_eq!(report.rows.len(), 4);
        let p99 = report.row(99.0).unwrap();
        // All ops identical: spine (1400ns) dominates every band.
        assert_eq!(p99.dominant, "spine");
        assert_eq!(report.dominant_at_p99(), Some("spine"));
        assert!((p99.total_ns - 5_000.0).abs() < 1e-6);
        let sum: f64 = p99.segments.iter().sum();
        assert!((sum - p99.total_ns).abs() < 1e-6);
    }

    #[test]
    fn incomplete_ops_are_counted_not_fabricated() {
        let mut records = rack_op();
        records.retain(
            |r| !matches!(&r.data, TraceData::Stage { stage, .. } if *stage == STAGE_CLIENT_DONE),
        );
        let report = analyze(&records);
        assert_eq!(report.ops.len(), 0);
        assert_eq!(report.incomplete, 1);
        assert!(report.rows.is_empty());
        assert_eq!(report.dominant_at_p99(), None);
    }

    #[test]
    fn single_machine_op_has_no_fabric_segments() {
        let k = op_key(3, 9);
        let sub = 1 << 62 | 7;
        let records = vec![
            stage(100, "host3", STAGE_CLIENT_ISSUE, k, 0),
            stage(200, "kvs.router", STAGE_ROUTER_RECV, k, 0),
            stage(250, "kvs.router", STAGE_ROUTER_SUB, sub, k),
            stage(400, "kvs.server0", STAGE_SERVER_RECV, sub, 0),
            stage(900, "kvs.server0", STAGE_SERVER_DONE, sub, 0),
            stage(1_000, "kvs.router", STAGE_ROUTER_ACK, sub, k),
            stage(1_010, "kvs.router", STAGE_ROUTER_RESPOND, k, 0),
            stage(1_100, "host3", STAGE_CLIENT_DONE, k, 0),
        ];
        let report = analyze(&records);
        assert_eq!(report.ops.len(), 1);
        let op = &report.ops[0];
        assert!(!op.crossed_fabric);
        assert_eq!(op.total_ns, 1_000);
        let by: BTreeMap<_, _> = SEGMENTS.iter().copied().zip(op.segments).collect();
        assert_eq!(by["uplink"] + by["spine"] + by["downlink"], 0);
        assert_eq!(by["local_delivery"], 150 + 100); // both transits
        assert_eq!(by["replica_service"], 500);
        assert_eq!(op.segments.iter().sum::<u64>(), op.total_ns);
    }

    #[test]
    fn retried_sub_attributes_wait_to_dispatch() {
        // The first send at t=250 got no server.recv; the retry at t=5250
        // reached the server. router_dispatch must absorb the timeout wait.
        let k = op_key(3, 10);
        let sub = 1 << 62 | 8;
        let records = vec![
            stage(100, "host3", STAGE_CLIENT_ISSUE, k, 0),
            stage(200, "kvs.router", STAGE_ROUTER_RECV, k, 0),
            stage(250, "kvs.router", STAGE_ROUTER_SUB, sub, k),
            stage(5_250, "kvs.router", STAGE_ROUTER_SUB, sub, k),
            stage(5_400, "kvs.server1", STAGE_SERVER_RECV, sub, 0),
            stage(5_900, "kvs.server1", STAGE_SERVER_DONE, sub, 0),
            stage(6_000, "kvs.router", STAGE_ROUTER_ACK, sub, k),
            stage(6_010, "kvs.router", STAGE_ROUTER_RESPOND, k, 0),
            stage(6_100, "host3", STAGE_CLIENT_DONE, k, 0),
        ];
        let report = analyze(&records);
        assert_eq!(report.ops.len(), 1);
        let op = &report.ops[0];
        let by: BTreeMap<_, _> = SEGMENTS.iter().copied().zip(op.segments).collect();
        assert_eq!(by["router_dispatch"], 5_050);
        assert_eq!(op.segments.iter().sum::<u64>(), op.total_ns);
    }
}
