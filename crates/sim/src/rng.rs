//! Deterministic random numbers.
//!
//! Every stochastic choice in the emulator (workload key selection, device
//! self-test jitter, fault injection) draws from a [`DetRng`] seeded at system
//! construction. Identical seeds therefore reproduce identical event traces —
//! the property the rest of the test suite leans on.

/// A seeded deterministic RNG with convenience helpers and cheap splitting.
///
/// Splitting derives an independent child stream from the parent, so each
/// device can own a private RNG without global draw-order coupling: adding a
/// draw in one device does not perturb another device's stream.
///
/// The generator is xoshiro256++ seeded through a SplitMix64 expansion —
/// self-contained, allocation-free, and identical across platforms, which is
/// exactly the reproducibility property the test suite leans on.
pub struct DetRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 step: advances `x` and returns a well-mixed output word.
#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the 64-bit seed into 256 bits of state via SplitMix64, the
        // construction recommended by the xoshiro authors. The state of a
        // SplitMix64-seeded xoshiro256++ is never all-zero.
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { state, seed }
    }

    /// The seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `salt`.
    ///
    /// The same `(seed, salt)` pair always yields the same child stream.
    pub fn split(&self, salt: u64) -> DetRng {
        // SplitMix64 finalizer mixes seed and salt into a well-distributed
        // child seed; this is the standard construction for seed derivation.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(salt.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng::new(z)
    }

    /// The raw generator cursor for checkpointing: the four xoshiro256++
    /// state words plus the originating seed (kept so `split` still works
    /// after a restore).
    pub fn raw_state(&self) -> ([u64; 4], u64) {
        (self.state, self.seed)
    }

    /// Rebuilds a stream mid-sequence from [`DetRng::raw_state`] output.
    pub fn from_raw_state(state: [u64; 4], seed: u64) -> Self {
        DetRng { state, seed }
    }

    /// A uniform `u64` (xoshiro256++ output function).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "DetRng::below(0)");
        // Widening-multiply rejection (Lemire): unbiased and nearly always a
        // single draw for the bounds we use.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "DetRng::range: empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits scaled into [0, 1): the standard double conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Fills `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }

    /// A Zipfian-distributed rank in `[0, n)` with exponent `theta`.
    ///
    /// Uses rejection-inversion (Jacobson's approximation) which is accurate
    /// enough for workload skew modelling and allocation-free. `theta = 0`
    /// degenerates to uniform; YCSB's default skew is `theta = 0.99`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        assert!(n > 0, "DetRng::zipf(0, _)");
        if theta <= f64::EPSILON {
            return self.below(n);
        }
        // Classic YCSB-style Zipfian generator.
        let n_f = n as f64;
        let zeta = zeta(n, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n_f).powf(1.0 - theta)) / (1.0 - zeta_static(theta) / zeta);
        let u = self.unit();
        let uz = u * zeta;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(theta) {
            return 1;
        }
        ((n_f * (eta * u - eta + 1.0).powf(alpha)) as u64).min(n - 1)
    }
}

/// Harmonic number H_{n,theta}, capped for cost: beyond the cap the tail
/// contribution is negligible for the skews we use.
fn zeta(n: u64, theta: f64) -> f64 {
    let cap = n.min(10_000);
    let mut sum = 0.0;
    for i in 1..=cap {
        sum += 1.0 / (i as f64).powf(theta);
    }
    if n > cap {
        // Integral approximation of the tail.
        let a = cap as f64;
        let b = n as f64;
        sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
    }
    sum
}

fn zeta_static(theta: f64) -> f64 {
    zeta(2, theta)
}

impl lastcpu_snap::Snapshot for DetRng {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        for s in self.state {
            w.put_u64(s);
        }
        w.put_u64(self.seed);
    }
}

impl lastcpu_snap::Restore for DetRng {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = r.u64()?;
        }
        self.seed = r.u64()?;
        self.state = state;
        Ok(())
    }
}

impl std::fmt::Debug for DetRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DetRng(seed={})", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn split_is_deterministic_and_independent() {
        let parent = DetRng::new(99);
        let mut c1 = parent.split(5);
        let mut c2 = parent.split(5);
        let c3 = parent.split(6);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.seed(), c3.seed());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped, not UB.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn zipf_skews_towards_small_ranks() {
        let mut r = DetRng::new(5);
        let n = 1000u64;
        let draws = 20_000;
        let mut head = 0u64;
        for _ in 0..draws {
            let v = r.zipf(n, 0.99);
            assert!(v < n);
            if v < n / 10 {
                head += 1;
            }
        }
        // With theta=0.99 the hottest 10% of keys should receive well over
        // half the draws; uniform would give ~10%.
        assert!(
            head as f64 / draws as f64 > 0.5,
            "head share {head}/{draws}"
        );
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut r = DetRng::new(6);
        let n = 10u64;
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.zipf(n, 0.0) as usize] += 1;
        }
        for &c in &counts {
            assert!((600..1500).contains(&c), "count {c} far from uniform");
        }
    }
}
