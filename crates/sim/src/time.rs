//! Virtual time.
//!
//! The simulator advances a virtual clock measured in integer nanoseconds.
//! Integer (rather than float) time keeps event ordering exact and makes runs
//! bit-reproducible across hosts.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `ns` nanoseconds after the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch, truncated.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is in the future, mirroring
    /// `std::time::Instant::saturating_duration_since`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating sum of two durations.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// This duration scaled by an integer factor (saturating).
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0 as f64 / 1000.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(late.since(early).as_nanos(), 20);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_micros(3).as_micros(), 3);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        let max = SimDuration::from_nanos(u64::MAX);
        assert_eq!(max.saturating_add(max).as_nanos(), u64::MAX);
        assert_eq!(max.saturating_mul(3).as_nanos(), u64::MAX);
        let t = SimTime::from_nanos(u64::MAX);
        assert_eq!(t.saturating_add(max).as_nanos(), u64::MAX);
    }
}
