//! Pooled payload buffers for the zero-alloc delivery path (E13).
//!
//! The E12 profiler attributed ~92% of the system phase's residual
//! allocs/event to frame-delivery payload buffers: every request/response
//! hop materialized a fresh `Vec<u8>` (encode), cloned it through the switch
//! (route), and dropped it after decode. [`BufPool`] breaks that cycle with
//! a thread-safe free-list of reusable byte buffers, and [`Bytes`] is the
//! payload handle that returns its storage to the pool on drop.
//!
//! Design rules that keep the simulator deterministic:
//!
//! - The free-list is LIFO (a stack), so buffer reuse order is a pure
//!   function of the take/return sequence — no address ordering, no
//!   timestamps.
//! - A pool is owned by one simulated machine and only touched from its
//!   (serialized) event execution, so the take/return sequence — and with
//!   it the *allocation count* observed by the E9 profiler — is identical
//!   across runs and across fabric thread counts. Thread-safety (a `Mutex`)
//!   is still required because the parallel fabric returns tunneled
//!   buffers at window barriers from the coordinator thread.
//! - Unpooled `Bytes` (built from a plain `Vec<u8>`) behave identically on
//!   the wire: same bytes, same equality, same hashes. Pooling is a pure
//!   storage optimization — a differential test drives the same workload
//!   with pooling on and off and asserts byte-identical outputs.
//!
//! Generation tags: every take stamps the handle with a fresh generation id
//! and records it in the pool's live set; the return path asserts the id is
//! still live and retires it. A double return (the use-after-recycle bug
//! class this guards) panics in tests instead of silently corrupting a
//! buffer another owner now holds.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default maximum number of idle buffers a pool retains.
const DEFAULT_MAX_FREE: usize = 1024;

/// Pool occupancy and traffic counters (observability only; never consulted
/// on the take/return path, so reading them cannot perturb determinism).
#[derive(Debug, Default, Clone, Copy)]
pub struct PoolStats {
    /// Buffers handed out (pool hit or fresh allocation).
    pub taken: u64,
    /// Takes served from the free-list (no heap allocation).
    pub recycled: u64,
    /// Takes that had to allocate a fresh buffer.
    pub fresh: u64,
    /// Buffers returned to the free-list.
    pub returned: u64,
    /// Returns dropped on the floor because the free-list was full.
    pub shed: u64,
}

struct PoolCore {
    free: Mutex<Vec<Vec<u8>>>,
    /// Live generation ids, kept only when tracking is enabled (tests).
    live: Option<Mutex<Vec<u64>>>,
    max_free: usize,
    next_gen: AtomicU64,
    taken: AtomicU64,
    recycled: AtomicU64,
    fresh: AtomicU64,
    returned: AtomicU64,
    shed: AtomicU64,
}

impl PoolCore {
    fn take(self: &Arc<Self>) -> Bytes {
        let buf = self.free.lock().expect("pool free-list poisoned").pop();
        self.taken.fetch_add(1, Ordering::Relaxed);
        let buf = match buf {
            Some(b) => {
                self.recycled.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(256)
            }
        };
        let gen = self.next_gen.fetch_add(1, Ordering::Relaxed);
        if let Some(live) = &self.live {
            live.lock().expect("pool live set poisoned").push(gen);
        }
        Bytes {
            buf,
            origin: Some(Arc::clone(self)),
            gen,
        }
    }

    fn put_back(&self, mut buf: Vec<u8>, gen: u64) {
        if let Some(live) = &self.live {
            let mut live = live.lock().expect("pool live set poisoned");
            match live.iter().position(|&g| g == gen) {
                Some(i) => {
                    live.swap_remove(i);
                }
                None => panic!("pool buffer generation {gen} returned twice (use-after-recycle)"),
            }
        }
        self.returned.fetch_add(1, Ordering::Relaxed);
        let mut free = self.free.lock().expect("pool free-list poisoned");
        if free.len() < self.max_free {
            buf.clear();
            free.push(buf);
        } else {
            self.shed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A thread-safe free-list of reusable payload buffers.
///
/// Cloning the handle is cheap (`Arc`); all clones share one free-list.
#[derive(Clone)]
pub struct BufPool {
    core: Arc<PoolCore>,
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for BufPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "BufPool(taken={}, recycled={}, fresh={}, idle={})",
            s.taken,
            s.recycled,
            s.fresh,
            self.idle()
        )
    }
}

impl BufPool {
    /// An empty pool retaining up to the default number of idle buffers.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MAX_FREE)
    }

    /// An empty pool retaining up to `max_free` idle buffers.
    pub fn with_capacity(max_free: usize) -> Self {
        BufPool {
            core: Arc::new(PoolCore {
                free: Mutex::new(Vec::with_capacity(max_free.min(4096))),
                live: None,
                max_free,
                next_gen: AtomicU64::new(1),
                taken: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                fresh: AtomicU64::new(0),
                returned: AtomicU64::new(0),
                shed: AtomicU64::new(0),
            }),
        }
    }

    /// A pool that additionally tracks live generation ids and panics on a
    /// double return. Test-only instrumentation: tracking costs a search per
    /// return, so production pools leave it off.
    pub fn with_tracking(max_free: usize) -> Self {
        let mut p = Self::with_capacity(max_free);
        let core = Arc::get_mut(&mut p.core).expect("fresh pool is unshared");
        core.live = Some(Mutex::new(Vec::new()));
        p
    }

    /// Takes an empty buffer (recycled when one is idle).
    pub fn take(&self) -> Bytes {
        self.core.take()
    }

    /// Takes a buffer pre-filled with a copy of `src`.
    pub fn take_copy(&self, src: &[u8]) -> Bytes {
        let mut b = self.core.take();
        b.buf.extend_from_slice(src);
        b
    }

    /// Takes a buffer filled with `len` copies of `byte`.
    pub fn take_filled(&self, byte: u8, len: usize) -> Bytes {
        let mut b = self.core.take();
        b.buf.resize(len, byte);
        b
    }

    /// Traffic counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            taken: self.core.taken.load(Ordering::Relaxed),
            recycled: self.core.recycled.load(Ordering::Relaxed),
            fresh: self.core.fresh.load(Ordering::Relaxed),
            returned: self.core.returned.load(Ordering::Relaxed),
            shed: self.core.shed.load(Ordering::Relaxed),
        }
    }

    /// Idle buffers currently on the free-list.
    pub fn idle(&self) -> usize {
        self.core
            .free
            .lock()
            .expect("pool free-list poisoned")
            .len()
    }

    /// The next generation tag a take would stamp (checkpoint cursor).
    pub fn next_generation(&self) -> u64 {
        self.core.next_gen.load(Ordering::Relaxed)
    }

    /// Zeroes the traffic counters (sampled-measurement windows read deltas
    /// by resetting at window boundaries). The free-list, live set, and
    /// generation cursor are untouched, so determinism is unaffected.
    pub fn reset_stats(&self) {
        self.core.taken.store(0, Ordering::Relaxed);
        self.core.recycled.store(0, Ordering::Relaxed);
        self.core.fresh.store(0, Ordering::Relaxed);
        self.core.returned.store(0, Ordering::Relaxed);
        self.core.shed.store(0, Ordering::Relaxed);
    }

    /// Restores checkpointed pool state: traffic counters, the generation
    /// cursor, and the free-list *length* (`idle` cleared buffers — contents
    /// and capacities are not semantic: a recycled buffer is always cleared
    /// before reuse, so only how many takes hit the free-list matters).
    ///
    /// # Panics
    ///
    /// Panics if buffers are still outstanding — restoring under live
    /// handles would corrupt the generation cursor.
    pub fn restore_state(&self, stats: PoolStats, idle: usize, next_gen: u64) {
        if let Some(live) = &self.core.live {
            assert!(
                live.lock().expect("pool live set poisoned").is_empty(),
                "BufPool::restore_state with outstanding buffers"
            );
        }
        let mut free = self.core.free.lock().expect("pool free-list poisoned");
        free.clear();
        free.resize_with(idle.min(self.core.max_free), Vec::new);
        drop(free);
        self.core.taken.store(stats.taken, Ordering::Relaxed);
        self.core.recycled.store(stats.recycled, Ordering::Relaxed);
        self.core.fresh.store(stats.fresh, Ordering::Relaxed);
        self.core.returned.store(stats.returned, Ordering::Relaxed);
        self.core.shed.store(stats.shed, Ordering::Relaxed);
        self.core.next_gen.store(next_gen, Ordering::Relaxed);
    }

    /// Buffers handed out and not yet returned.
    pub fn outstanding(&self) -> u64 {
        let s = self.stats();
        s.taken - s.returned
    }
}

/// A payload byte buffer, possibly backed by a [`BufPool`].
///
/// Dereferences to `[u8]`; equality, ordering and hashing are by content, so
/// pooled and unpooled payloads are indistinguishable on the wire. Dropping
/// a pooled `Bytes` returns its storage to the owning pool.
pub struct Bytes {
    buf: Vec<u8>,
    origin: Option<Arc<PoolCore>>,
    gen: u64,
}

impl Bytes {
    /// An empty, unpooled buffer.
    pub fn new() -> Self {
        Bytes {
            buf: Vec::new(),
            origin: None,
            gen: 0,
        }
    }

    /// The underlying `Vec`, for encoders that append in place.
    pub fn vec_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Copies the content into a plain `Vec<u8>` (the storage stays pooled).
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Extracts the content as a `Vec<u8>`, allocating only if pooled (a
    /// pooled buffer cannot give up its storage without starving the pool).
    pub fn into_vec(mut self) -> Vec<u8> {
        if self.origin.is_some() {
            self.buf.clone()
        } else {
            std::mem::take(&mut self.buf)
        }
    }

    /// Whether this buffer came from a pool.
    pub fn is_pooled(&self) -> bool {
        self.origin.is_some()
    }

    /// The generation tag stamped at take time (0 for unpooled buffers).
    pub fn generation(&self) -> u64 {
        self.gen
    }
}

impl Drop for Bytes {
    fn drop(&mut self) {
        if let Some(core) = self.origin.take() {
            core.put_back(std::mem::take(&mut self.buf), self.gen);
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Bytes {
    /// Cloning a pooled buffer draws the copy's storage from the same pool
    /// (so broadcast fan-out recycles too); unpooled buffers clone plainly.
    fn clone(&self) -> Self {
        match &self.origin {
            Some(core) => {
                let mut b = core.take();
                b.buf.extend_from_slice(&self.buf);
                b
            }
            None => Bytes {
                buf: self.buf.clone(),
                origin: None,
                gen: 0,
            },
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={}", self.buf.len())?;
        if self.origin.is_some() {
            write!(f, ", pooled gen={}", self.gen)?;
        }
        write!(f, ")")
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for Bytes {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        Bytes {
            buf,
            origin: None,
            gen: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.buf.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.buf.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.buf == other
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self == &other.buf
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.buf.as_slice() == *other as &[u8]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.buf.as_slice() == other as &[u8]
    }
}

impl lastcpu_snap::Snapshot for BufPool {
    /// Serializes counters, the free-list length, and the generation cursor.
    /// Buffer contents are deliberately excluded: recycled buffers are
    /// cleared on return, so only the free-list *length* shapes future
    /// behavior (hit/miss sequence) and the E9 allocation accounting.
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        let s = self.stats();
        w.put_u64(s.taken);
        w.put_u64(s.recycled);
        w.put_u64(s.fresh);
        w.put_u64(s.returned);
        w.put_u64(s.shed);
        w.put_len(self.idle());
        w.put_u64(self.next_generation());
    }
}

impl lastcpu_snap::Restore for BufPool {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        let stats = PoolStats {
            taken: r.u64()?,
            recycled: r.u64()?,
            fresh: r.u64()?,
            returned: r.u64()?,
            shed: r.u64()?,
        };
        let idle = r.len()?;
        let next_gen = r.u64()?;
        self.restore_state(stats, idle, next_gen);
        Ok(())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.buf.hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.buf.cmp(&other.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_and_drop_recycles_storage() {
        let pool = BufPool::with_capacity(8);
        {
            let mut b = pool.take();
            b.vec_mut().extend_from_slice(b"hello");
            assert!(b.is_pooled());
            assert_eq!(&*b, b"hello");
        }
        assert_eq!(pool.idle(), 1);
        let b2 = pool.take();
        assert!(b2.is_empty(), "recycled buffer comes back cleared");
        let s = pool.stats();
        assert_eq!(s.taken, 2);
        assert_eq!(s.recycled, 1);
        assert_eq!(s.fresh, 1);
    }

    #[test]
    fn every_buffer_returns_exactly_once() {
        let pool = BufPool::with_tracking(64);
        let mut held = Vec::new();
        for i in 0..32 {
            let mut b = pool.take();
            b.vec_mut().push(i as u8);
            held.push(b);
        }
        assert_eq!(pool.outstanding(), 32);
        held.clear();
        assert_eq!(pool.outstanding(), 0);
        let s = pool.stats();
        assert_eq!(s.taken, 32);
        assert_eq!(s.returned, 32);
        assert_eq!(pool.idle(), 32);
    }

    #[test]
    fn generation_tags_are_unique_per_take() {
        let pool = BufPool::with_tracking(4);
        let a = pool.take();
        let ga = a.generation();
        drop(a);
        let b = pool.take();
        assert_ne!(ga, b.generation(), "recycled storage gets a fresh tag");
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BufPool::with_capacity(2);
        let bufs: Vec<Bytes> = (0..5).map(|_| pool.take()).collect();
        drop(bufs);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().shed, 3);
    }

    #[test]
    fn clone_draws_from_the_same_pool() {
        let pool = BufPool::with_capacity(8);
        let b = pool.take_copy(b"payload");
        let c = b.clone();
        assert!(c.is_pooled());
        assert_eq!(b, c);
        assert_ne!(b.generation(), c.generation());
        drop(b);
        drop(c);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn pooled_and_unpooled_compare_equal() {
        let pool = BufPool::new();
        let pooled = pool.take_copy(b"abc");
        let plain: Bytes = b"abc".to_vec().into();
        assert_eq!(pooled, plain);
        assert_eq!(pooled, b"abc");
        assert_eq!(pooled, b"abc".to_vec());
        use std::collections::hash_map::DefaultHasher;
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        pooled.hash(&mut h1);
        plain.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn into_vec_preserves_content() {
        let pool = BufPool::new();
        let pooled = pool.take_copy(b"xyz");
        assert_eq!(pooled.into_vec(), b"xyz".to_vec());
        let plain: Bytes = b"xyz".to_vec().into();
        assert_eq!(plain.into_vec(), b"xyz".to_vec());
    }

    #[test]
    fn take_filled_matches_vec_macro() {
        let pool = BufPool::new();
        let b = pool.take_filled(0xCD, 16);
        assert_eq!(*b, *vec![0xCD; 16]);
    }

    #[test]
    fn cross_thread_return_is_safe() {
        let pool = BufPool::with_tracking(8);
        let b = pool.take_copy(b"migrant");
        let handle = std::thread::spawn(move || drop(b));
        handle.join().unwrap();
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "returned twice")]
    fn double_return_panics_under_tracking() {
        let pool = BufPool::with_tracking(8);
        let b = pool.take();
        let gen = b.generation();
        drop(b);
        // Forge a second return of the same generation.
        pool.core.put_back(Vec::new(), gen);
    }
}
