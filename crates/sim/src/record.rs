//! Typed trace records with causal correlation ids.
//!
//! The paper's control plane (bus registration, discovery, IOMMU programming)
//! is exactly what experiments need visibility into, so instead of free-form
//! strings every protocol-level step is a [`TraceData`] variant stamped with
//! the virtual time, the emitting subsystem, and a [`CorrId`] — a causal
//! correlation id allocated at the root of each activity and propagated
//! through bus envelopes, timers, doorbells, and network frames. Filtering a
//! trace by one `CorrId` therefore reconstructs an end-to-end span (e.g. a KV
//! GET crossing nic → bus → ssd → iommu) and the exporters in
//! [`crate::export`] turn those spans into Perfetto-loadable trees.

use std::fmt;

use crate::time::SimTime;

/// A causal correlation id.
///
/// `CorrId::NONE` (zero) means "not part of any tracked activity"; fresh ids
/// are allocated by the system event loop whenever an activity starts
/// spontaneously (device start, host timer) and inherited by everything that
/// activity causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CorrId(pub u64);

impl CorrId {
    /// The null id: not part of any tracked activity.
    pub const NONE: CorrId = CorrId(0);

    /// Whether this is a real (non-null) correlation id.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for CorrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "-")
        } else {
            write!(f, "c{}", self.0)
        }
    }
}

/// What happened: the typed payload of one trace record.
///
/// Variants cover the control-plane steps the paper makes central; `Text` is
/// the escape hatch for device-specific annotations. Each variant renders to
/// a stable human-readable line via `Display` (preserved verbatim from the
/// original string tracer so message-sequence assertions keep working).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceData {
    /// A device handed a control message to the bus.
    BusSend { what: String, dst: String },
    /// A discovery query entered the bus.
    Discovery { pattern: String, dst: String },
    /// A message was delivered to a device.
    Deliver { to: String, kind: &'static str },
    /// A device completed registration on the bus.
    BusRegister { device: String },
    /// The bus programmed a device's IOMMU with a mapping.
    IommuMap {
        device: String,
        pasid: u32,
        va: u64,
        pa: u64,
        pages: u64,
        perms: String,
    },
    /// The bus revoked pages from a device's IOMMU.
    IommuUnmap {
        device: String,
        pasid: u32,
        va: u64,
        pages: u64,
    },
    /// An IOMMU programming request failed.
    MapFailure { error: String },
    /// Memory was granted to a peer device for DMA (a successful share).
    DmaGrant {
        to: String,
        pages: u64,
        writable: bool,
    },
    /// A queue doorbell rang.
    QueueDoorbell { to: String, value: u64 },
    /// A device halted or was killed.
    DeviceFault { device: String, detail: String },
    /// A security check refused an operation (E11 audit layer): a DMA
    /// outside the accessor's mapped windows, a privileged bus operation
    /// from a non-controller, a shadowed service announcement, or a
    /// flood-limited control message.
    SecurityDenial {
        /// Device whose access or request was refused.
        device: String,
        /// Check that refused it, e.g. `"dma"`, `"map_instruction"`.
        check: String,
        /// Human-readable denial detail.
        detail: String,
    },
    /// A critical-path stage boundary (E12 attribution layer). Workload
    /// hosts emit one at each protocol milestone — `client.issue`,
    /// `router.recv`, `router.sub`, `server.recv`, … — and the offline
    /// analyzer in [`crate::critpath`] joins them on `(stage, id)` to
    /// decompose an operation's end-to-end latency into named segments.
    Stage {
        /// Milestone label; by convention `role.event`.
        stage: &'static str,
        /// Primary join key (request id or globally-unique sub-request id).
        id: u64,
        /// Secondary disambiguator (e.g. the client's switch port, so
        /// per-client request-id sequences cannot collide).
        aux: u64,
    },
    /// One inter-machine hop through the rack fabric (E12 attribution
    /// layer): the fabric's timing decomposition of a forwarded frame,
    /// emitted at delivery time so the critical-path analyzer can split a
    /// cross-machine transit into uplink / spine / downlink time.
    LinkHop {
        /// Source machine index.
        src_machine: usize,
        /// Destination machine index.
        dst_machine: usize,
        /// Frame wire length in bytes.
        bytes: u64,
        /// Queueing + serialization on the source machine's uplink, ns.
        uplink_ns: u64,
        /// Spine switching + propagation, ns.
        spine_ns: u64,
        /// Queueing + serialization on the destination downlink, ns.
        downlink_ns: u64,
    },
    /// Free-form annotation.
    Text(String),
}

impl fmt::Display for TraceData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceData::BusSend { what, dst } => write!(f, "sends {what} to {dst}"),
            TraceData::Discovery { pattern, dst } => write!(f, "sends Query({pattern}) to {dst}"),
            TraceData::Deliver { to, kind } => write!(f, "-> {to}: {kind}"),
            TraceData::BusRegister { device } => write!(f, "device {device} registered"),
            TraceData::IommuMap {
                device,
                pasid,
                va,
                pa,
                pages,
                perms,
            } => write!(
                f,
                "programmed IOMMU of {device}: pasid {pasid} va {va:#x} -> pa {pa:#x} ({pages} pages, {perms})"
            ),
            TraceData::IommuUnmap {
                device,
                pasid,
                va,
                pages,
            } => write!(f, "revoked {pages} pages from {device} (pasid {pasid}, va {va:#x})"),
            TraceData::MapFailure { error } => write!(f, "map failed: {error}"),
            TraceData::DmaGrant { to, pages, writable } => {
                write!(f, "granted {pages} pages to {to} (writable={writable})")
            }
            TraceData::QueueDoorbell { to, value } => {
                write!(f, "doorbell -> {to}: value {value:#x}")
            }
            TraceData::DeviceFault { device: _, detail } => write!(f, "{detail}"),
            TraceData::SecurityDenial {
                device,
                check,
                detail,
            } => write!(f, "denied [{check}] {device}: {detail}"),
            TraceData::Stage { stage, id, aux } => {
                write!(f, "stage {stage} id={id} aux={aux}")
            }
            TraceData::LinkHop {
                src_machine,
                dst_machine,
                bytes,
                uplink_ns,
                spine_ns,
                downlink_ns,
            } => write!(
                f,
                "link hop m{src_machine} -> m{dst_machine} ({bytes} B, uplink {uplink_ns}ns, spine {spine_ns}ns, downlink {downlink_ns}ns)"
            ),
            TraceData::Text(s) => write!(f, "{s}"),
        }
    }
}

impl TraceData {
    /// A short machine-readable tag for exporters (`"iommu_map"`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceData::BusSend { .. } => "bus_send",
            TraceData::Discovery { .. } => "discovery",
            TraceData::Deliver { .. } => "deliver",
            TraceData::BusRegister { .. } => "bus_register",
            TraceData::IommuMap { .. } => "iommu_map",
            TraceData::IommuUnmap { .. } => "iommu_unmap",
            TraceData::MapFailure { .. } => "map_failure",
            TraceData::DmaGrant { .. } => "dma_grant",
            TraceData::QueueDoorbell { .. } => "queue_doorbell",
            TraceData::DeviceFault { .. } => "device_fault",
            TraceData::SecurityDenial { .. } => "security_denial",
            TraceData::Stage { .. } => "stage",
            TraceData::LinkHop { .. } => "link_hop",
            TraceData::Text(_) => "text",
        }
    }
}

impl TraceData {
    /// Stable wire encoding for checkpoints (variant tag + fields, LE).
    pub fn encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        match self {
            TraceData::BusSend { what, dst } => {
                w.put_u8(0);
                w.put_str(what);
                w.put_str(dst);
            }
            TraceData::Discovery { pattern, dst } => {
                w.put_u8(1);
                w.put_str(pattern);
                w.put_str(dst);
            }
            TraceData::Deliver { to, kind } => {
                w.put_u8(2);
                w.put_str(to);
                w.put_str(kind);
            }
            TraceData::BusRegister { device } => {
                w.put_u8(3);
                w.put_str(device);
            }
            TraceData::IommuMap {
                device,
                pasid,
                va,
                pa,
                pages,
                perms,
            } => {
                w.put_u8(4);
                w.put_str(device);
                w.put_u32(*pasid);
                w.put_u64(*va);
                w.put_u64(*pa);
                w.put_u64(*pages);
                w.put_str(perms);
            }
            TraceData::IommuUnmap {
                device,
                pasid,
                va,
                pages,
            } => {
                w.put_u8(5);
                w.put_str(device);
                w.put_u32(*pasid);
                w.put_u64(*va);
                w.put_u64(*pages);
            }
            TraceData::MapFailure { error } => {
                w.put_u8(6);
                w.put_str(error);
            }
            TraceData::DmaGrant {
                to,
                pages,
                writable,
            } => {
                w.put_u8(7);
                w.put_str(to);
                w.put_u64(*pages);
                w.put_bool(*writable);
            }
            TraceData::QueueDoorbell { to, value } => {
                w.put_u8(8);
                w.put_str(to);
                w.put_u64(*value);
            }
            TraceData::DeviceFault { device, detail } => {
                w.put_u8(9);
                w.put_str(device);
                w.put_str(detail);
            }
            TraceData::SecurityDenial {
                device,
                check,
                detail,
            } => {
                w.put_u8(10);
                w.put_str(device);
                w.put_str(check);
                w.put_str(detail);
            }
            TraceData::Stage { stage, id, aux } => {
                w.put_u8(11);
                w.put_str(stage);
                w.put_u64(*id);
                w.put_u64(*aux);
            }
            TraceData::LinkHop {
                src_machine,
                dst_machine,
                bytes,
                uplink_ns,
                spine_ns,
                downlink_ns,
            } => {
                w.put_u8(12);
                w.put_u64(*src_machine as u64);
                w.put_u64(*dst_machine as u64);
                w.put_u64(*bytes);
                w.put_u64(*uplink_ns);
                w.put_u64(*spine_ns);
                w.put_u64(*downlink_ns);
            }
            TraceData::Text(s) => {
                w.put_u8(13);
                w.put_str(s);
            }
        }
    }

    /// Inverse of [`TraceData::encode`]. `&'static str` fields come back
    /// through the process-wide intern table.
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<TraceData> {
        Ok(match r.u8()? {
            0 => TraceData::BusSend {
                what: r.str()?,
                dst: r.str()?,
            },
            1 => TraceData::Discovery {
                pattern: r.str()?,
                dst: r.str()?,
            },
            2 => TraceData::Deliver {
                to: r.str()?,
                kind: lastcpu_snap::intern_static(&r.str()?),
            },
            3 => TraceData::BusRegister { device: r.str()? },
            4 => TraceData::IommuMap {
                device: r.str()?,
                pasid: r.u32()?,
                va: r.u64()?,
                pa: r.u64()?,
                pages: r.u64()?,
                perms: r.str()?,
            },
            5 => TraceData::IommuUnmap {
                device: r.str()?,
                pasid: r.u32()?,
                va: r.u64()?,
                pages: r.u64()?,
            },
            6 => TraceData::MapFailure { error: r.str()? },
            7 => TraceData::DmaGrant {
                to: r.str()?,
                pages: r.u64()?,
                writable: r.bool()?,
            },
            8 => TraceData::QueueDoorbell {
                to: r.str()?,
                value: r.u64()?,
            },
            9 => TraceData::DeviceFault {
                device: r.str()?,
                detail: r.str()?,
            },
            10 => TraceData::SecurityDenial {
                device: r.str()?,
                check: r.str()?,
                detail: r.str()?,
            },
            11 => TraceData::Stage {
                stage: lastcpu_snap::intern_static(&r.str()?),
                id: r.u64()?,
                aux: r.u64()?,
            },
            12 => TraceData::LinkHop {
                src_machine: r.u64()? as usize,
                dst_machine: r.u64()? as usize,
                bytes: r.u64()?,
                uplink_ns: r.u64()?,
                spine_ns: r.u64()?,
                downlink_ns: r.u64()?,
            },
            13 => TraceData::Text(r.str()?),
            tag => {
                return Err(lastcpu_snap::SnapError::Corrupt {
                    section: "trace".into(),
                    detail: format!("unknown TraceData tag {tag}"),
                })
            }
        })
    }
}

/// One trace record: when, who, which activity, and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time at which the event occurred.
    pub at: SimTime,
    /// Subsystem tag, e.g. `"bus"`, `"nic0"`, `"iommu.ssd0"`.
    pub source: String,
    /// Causal correlation id ([`CorrId::NONE`] when untracked).
    pub corr: CorrId,
    /// The typed payload.
    pub data: TraceData,
}

impl TraceRecord {
    /// Human-readable description (the legacy string form).
    pub fn what(&self) -> String {
        self.data.to_string()
    }

    /// Stable wire encoding for checkpoints.
    pub fn encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.at.as_nanos());
        w.put_str(&self.source);
        w.put_u64(self.corr.0);
        self.data.encode(w);
    }

    /// Inverse of [`TraceRecord::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<TraceRecord> {
        Ok(TraceRecord {
            at: SimTime::from_nanos(r.u64()?),
            source: r.str()?,
            corr: CorrId(r.u64()?),
            data: TraceData::decode(r)?,
        })
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:>6} {:<12} {}",
            self.at.to_string(),
            self.corr.to_string(),
            self.source,
            self.data
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corr_display() {
        assert_eq!(CorrId::NONE.to_string(), "-");
        assert_eq!(CorrId(17).to_string(), "c17");
        assert!(!CorrId::NONE.is_some());
        assert!(CorrId(1).is_some());
    }

    #[test]
    fn data_renders_legacy_strings() {
        let d = TraceData::Deliver {
            to: "nic0".into(),
            kind: "QueryHit",
        };
        assert_eq!(d.to_string(), "-> nic0: QueryHit");
        let m = TraceData::IommuMap {
            device: "dev:3".into(),
            pasid: 1,
            va: 0x1000,
            pa: 0x8000,
            pages: 4,
            perms: "RW".into(),
        };
        assert!(m
            .to_string()
            .starts_with("programmed IOMMU of dev:3: pasid 1"));
        assert_eq!(m.kind(), "iommu_map");
    }
}
