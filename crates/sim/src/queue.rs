//! The event queue at the heart of the discrete-event engine.
//!
//! Events are arbitrary user values tagged with a firing time. Ties are
//! broken by insertion order (FIFO), which — together with the seeded RNG —
//! makes whole-system runs deterministic.
//!
//! # Engines
//!
//! Two interchangeable engines implement the same `(time, seq)` min-order
//! contract:
//!
//! - [`QueueEngine::Wheel`] (the default): a hierarchical timing wheel. The
//!   near future is an array of power-of-two-granularity slots (O(1)
//!   unsorted insert); the slot currently being drained is sorted once into
//!   a `ready` run; anything beyond the wheel horizon parks in a small
//!   overflow heap. Under heavy traffic almost every event lands in a slot
//!   or in the ready run, so the per-event cost is a push plus an amortized
//!   share of one small sort — no O(log n) sift through a cache-hostile
//!   heap per operation.
//! - [`QueueEngine::Heap`]: the original `BinaryHeap` implementation,
//!   retained as a differential-testing reference and as the `--engine
//!   heap` baseline for the E9 throughput experiment.
//!
//! Both engines produce bit-identical pop sequences for any schedule (the
//! property tests below check this on random interleavings), so swapping
//! engines never perturbs a seeded run.

use std::cmp::Ordering;
use std::collections::binary_heap::PeekMut;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::{SimDuration, SimTime};

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueEngine {
    /// Hierarchical timing wheel (slots + sorted ready run + overflow heap).
    #[default]
    Wheel,
    /// Binary min-heap on `(time, seq)` — the reference implementation.
    Heap,
}

impl QueueEngine {
    /// Parses an engine name as used by bench `--engine` flags.
    pub fn parse(s: &str) -> Option<QueueEngine> {
        match s {
            "wheel" => Some(QueueEngine::Wheel),
            "heap" => Some(QueueEngine::Heap),
            _ => None,
        }
    }

    /// The flag spelling (`"wheel"` / `"heap"`).
    pub fn name(self) -> &'static str {
        match self {
            QueueEngine::Wheel => "wheel",
            QueueEngine::Heap => "heap",
        }
    }
}

/// An event extracted from the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// The event payload.
    pub event: E,
}

/// Internal entry. The heap engine relies on the reversed `Ord` so that the
/// *earliest* `(time, seq)` pops first; the wheel engine sorts ascending by
/// the same key.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Slot granularity: `1 << SLOT_SHIFT` nanoseconds per slot (256 ns), a bit
/// finer than one bus hop so bursts of back-to-back deliveries spread over a
/// handful of slots instead of piling into one.
const SLOT_SHIFT: u32 = 8;

/// Number of wheel slots (must be a power of two). With 256 ns slots the
/// wheel horizon is 1024 × 256 ns ≈ 262 µs; timers beyond that (heartbeats,
/// liveness scans) take the overflow heap, which is fine — they are rare.
const NUM_SLOTS: usize = 1024;

/// The timing-wheel engine.
///
/// Invariants (checked by the differential property tests):
///
/// - `ready` is sorted ascending by `(at, seq)` and holds only entries whose
///   slot is `<= drain_slot`.
/// - `slots[s & mask]` holds only entries whose absolute slot is exactly `s`
///   for some `s` in `(drain_slot, drain_slot + NUM_SLOTS)`; buckets are
///   unsorted until drained.
/// - `overflow` holds entries at or beyond the horizon at the time they were
///   scheduled; its min is always `>=` every slot/ready entry **after**
///   [`Wheel::refill`] has run for the current `drain_slot`.
struct Wheel<E> {
    slots: Vec<Vec<Entry<E>>>,
    /// Occupancy bitmap over `slots` (bit per bucket): the drain cursor
    /// skips runs of empty buckets with a couple of word scans instead of
    /// stepping slot by slot. Sparse schedules (events microseconds apart,
    /// i.e. dozens of empty slots between occupied ones) would otherwise
    /// pay a per-slot walk on every pop.
    occupied: [u64; NUM_SLOTS / 64],
    /// Sorted run for the slot currently being drained (plus any late
    /// arrivals at or before `drain_slot`, inserted in order).
    ready: VecDeque<Entry<E>>,
    /// Beyond-horizon events, min-heap by `(at, seq)`.
    overflow: BinaryHeap<Entry<E>>,
    /// Absolute slot index the drain cursor points at.
    drain_slot: u64,
    /// Number of entries across all `slots` buckets.
    in_slots: usize,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        let mut slots = Vec::with_capacity(NUM_SLOTS);
        slots.resize_with(NUM_SLOTS, Vec::new);
        Wheel {
            slots,
            occupied: [0; NUM_SLOTS / 64],
            ready: VecDeque::new(),
            overflow: BinaryHeap::new(),
            drain_slot: 0,
            in_slots: 0,
        }
    }

    /// Marks bucket `idx` occupied.
    #[inline]
    fn mark(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Circular distance (in slots, `0..NUM_SLOTS`) from the cursor to the
    /// next occupied bucket. Requires `in_slots > 0`.
    fn next_occupied_distance(&self) -> u64 {
        let start = (self.drain_slot & Self::mask()) as usize;
        let (w0, b0) = (start / 64, start % 64);
        // Bits at or above the cursor in its own word (distance 0 included).
        let head = self.occupied[w0] >> b0;
        if head != 0 {
            return head.trailing_zeros() as u64;
        }
        let words = NUM_SLOTS / 64;
        for i in 1..=words {
            // `i == words` revisits the start word for the wrapped-around
            // bits below the cursor.
            let w = self.occupied[(w0 + i) % words];
            if w != 0 {
                return (i * 64 - b0) as u64 + w.trailing_zeros() as u64;
            }
        }
        unreachable!("in_slots > 0 implies an occupied bucket");
    }

    #[inline]
    fn mask() -> u64 {
        (NUM_SLOTS - 1) as u64
    }

    fn len(&self) -> usize {
        self.ready.len() + self.in_slots + self.overflow.len()
    }

    /// Inserts one entry. `seq` values are handed out monotonically by the
    /// queue, so an entry landing at or before the drain cursor can only
    /// belong *after* every same-instant entry already in `ready` — the
    /// sorted insert reduces to a search on `at` alone.
    fn schedule(&mut self, entry: Entry<E>) {
        let s = entry.at.as_nanos() >> SLOT_SHIFT;
        if s <= self.drain_slot {
            // At or before the drain cursor: merge into the sorted ready
            // run. The common case (scheduling for the instant being
            // drained) appends at/near the back.
            let pos = self.ready.partition_point(|e| e.at <= entry.at);
            if pos == self.ready.len() {
                self.ready.push_back(entry);
            } else {
                self.ready.insert(pos, entry);
            }
        } else if s - self.drain_slot < NUM_SLOTS as u64 {
            let idx = (s & Self::mask()) as usize;
            self.slots[idx].push(entry);
            self.mark(idx);
            self.in_slots += 1;
        } else {
            self.overflow.push(entry);
        }
    }

    /// Moves overflow entries that now fall inside the wheel window into
    /// their buckets.
    fn refill(&mut self) {
        let horizon = self.drain_slot + NUM_SLOTS as u64;
        while let Some(min) = self.overflow.peek() {
            let s = min.at.as_nanos() >> SLOT_SHIFT;
            if s >= horizon {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry");
            // `s >= drain_slot` always holds: overflow entries were beyond
            // the horizon when scheduled and the cursor only moves forward
            // (a cursor jump targets exactly the overflow minimum's slot).
            let idx = (s & Self::mask()) as usize;
            self.slots[idx].push(entry);
            self.mark(idx);
            self.in_slots += 1;
        }
    }

    /// Makes `ready` non-empty iff the wheel holds any entry.
    fn ensure_ready(&mut self) {
        while self.ready.is_empty() {
            if self.in_slots == 0 {
                if self.overflow.is_empty() {
                    return;
                }
                // Every near bucket is empty: jump the cursor straight to
                // the overflow minimum's slot instead of stepping through
                // the gap one slot at a time.
                let min_at = self.overflow.peek().expect("non-empty").at;
                self.drain_slot = min_at.as_nanos() >> SLOT_SHIFT;
                self.refill();
                debug_assert!(self.in_slots > 0);
            }
            // Advance to the next occupied slot in one bitmap scan
            // (guaranteed to exist within one revolution: `in_slots > 0`).
            // Jumping is safe: overflow entries pulled in by the wider
            // horizon all sit at or beyond the *old* horizon, which is
            // strictly later than any bucketed slot we could jump to, so
            // the target found before `refill` is still the minimum.
            let dist = self.next_occupied_distance();
            if dist > 0 {
                self.drain_slot += dist;
                self.refill();
            }
            let idx = (self.drain_slot & Self::mask()) as usize;
            let bucket = &mut self.slots[idx];
            bucket.sort_unstable_by_key(|e| (e.at, e.seq));
            self.in_slots -= bucket.len();
            self.occupied[idx / 64] &= !(1u64 << (idx % 64));
            // `drain` keeps the bucket's capacity for the next revolution.
            self.ready.extend(bucket.drain(..));
        }
    }

    fn clear(&mut self, now: SimTime) {
        for bucket in &mut self.slots {
            bucket.clear();
        }
        self.occupied = [0; NUM_SLOTS / 64];
        self.ready.clear();
        self.overflow.clear();
        self.in_slots = 0;
        self.drain_slot = now.as_nanos() >> SLOT_SHIFT;
    }
}

enum EngineImpl<E> {
    Heap(BinaryHeap<Entry<E>>),
    Wheel(Wheel<E>),
}

/// A deterministic min-priority event queue with a virtual clock.
///
/// The queue owns the clock: popping an event advances `now` to the event's
/// timestamp. Scheduling into the past is a logic error and is reported as
/// a panic rather than silently reordering history.
///
/// # Examples
///
/// ```
/// use lastcpu_sim::{EventQueue, SimDuration};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule_in(SimDuration::from_nanos(20), "b");
/// q.schedule_in(SimDuration::from_nanos(10), "a");
/// q.schedule_in(SimDuration::from_nanos(10), "a2"); // same instant: FIFO
/// let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
/// assert_eq!(order, vec!["a", "a2", "b"]);
/// ```
pub struct EventQueue<E> {
    engine: EngineImpl<E>,
    now: SimTime,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue (timing-wheel engine) with the clock at
    /// [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_engine(QueueEngine::Wheel)
    }

    /// Creates an empty queue backed by the given engine.
    pub fn with_engine(engine: QueueEngine) -> Self {
        let engine = match engine {
            QueueEngine::Heap => EngineImpl::Heap(BinaryHeap::new()),
            QueueEngine::Wheel => EngineImpl::Wheel(Wheel::new()),
        };
        EventQueue {
            engine,
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// Which engine backs this queue.
    pub fn engine(&self) -> QueueEngine {
        match self.engine {
            EngineImpl::Heap(_) => QueueEngine::Heap,
            EngineImpl::Wheel(_) => QueueEngine::Wheel,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        match &self.engine {
            EngineImpl::Heap(h) => h.len(),
            EngineImpl::Wheel(w) => w.len(),
        }
    }

    /// Whether the queue holds no pending events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events popped so far (a cheap progress metric).
    ///
    /// Intentionally **cumulative across [`clear`](Self::clear)**: it counts
    /// work done over the queue's whole lifetime, not the current schedule.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time: an event in
    /// the past can never fire and indicates a bug in the caller's cost
    /// accounting.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at:?} which is before now ({:?})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { at, seq, event };
        match &mut self.engine {
            EngineImpl::Heap(h) => h.push(entry),
            EngineImpl::Wheel(w) => w.schedule(entry),
        }
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` to fire immediately (at the current time, after all
    /// events already scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Timestamp of the next pending event, if any.
    ///
    /// Takes `&mut self` because the wheel engine may advance its drain
    /// cursor to find the next event; the observable state (pending events,
    /// clock) is unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.engine {
            EngineImpl::Heap(h) => h.peek().map(|e| e.at),
            EngineImpl::Wheel(w) => {
                w.ensure_ready();
                w.ready.front().map(|e| e.at)
            }
        }
    }

    /// Extracts the next entry if it fires at or before `deadline` (`None` =
    /// no deadline). Single peek: the qualifying entry is popped without
    /// re-comparing against the queue.
    fn pop_entry(&mut self, deadline: Option<SimTime>) -> Option<Entry<E>> {
        match &mut self.engine {
            EngineImpl::Heap(h) => {
                let top = h.peek_mut()?;
                if deadline.is_some_and(|d| top.at > d) {
                    return None;
                }
                Some(PeekMut::pop(top))
            }
            EngineImpl::Wheel(w) => {
                w.ensure_ready();
                let front = w.ready.front()?;
                if deadline.is_some_and(|d| front.at > d) {
                    return None;
                }
                w.ready.pop_front()
            }
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let entry = self.pop_entry(None)?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.popped += 1;
        Some(ScheduledEvent {
            at: entry.at,
            event: entry.event,
        })
    }

    /// Pops the next event only if it fires at or before `deadline`.
    ///
    /// Leaves the clock untouched when no event qualifies, so callers can
    /// interleave simulation with external pacing.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<ScheduledEvent<E>> {
        let entry = self.pop_entry(Some(deadline))?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.popped += 1;
        Some(ScheduledEvent {
            at: entry.at,
            event: entry.event,
        })
    }

    /// Discards all pending events without advancing the clock.
    ///
    /// Also resets the FIFO tie-break counter, so a reused queue orders
    /// same-instant events exactly like a fresh one (the counter previously
    /// carried over, silently changing tie-break behaviour after reuse).
    /// [`events_processed`](Self::events_processed) is *not* reset — it is
    /// a lifetime counter by design.
    pub fn clear(&mut self) {
        match &mut self.engine {
            EngineImpl::Heap(h) => h.clear(),
            EngineImpl::Wheel(w) => w.clear(self.now),
        }
        self.seq = 0;
    }

    /// The FIFO tie-break cursor: the `seq` the next scheduled event gets.
    pub fn seq_cursor(&self) -> u64 {
        self.seq
    }

    /// Every pending entry as `(time, seq, &event)`, sorted by `(time, seq)`
    /// — i.e. exactly the order the queue would pop them. Engine internals
    /// (which bucket or heap an entry currently sits in) are not observable,
    /// so a checkpoint taken from either engine encodes identically.
    pub fn entries(&self) -> Vec<(SimTime, u64, &E)> {
        fn collect<'a, E>(
            out: &mut Vec<(SimTime, u64, &'a E)>,
            it: impl Iterator<Item = &'a Entry<E>>,
        ) {
            out.extend(it.map(|e| (e.at, e.seq, &e.event)));
        }
        let mut out: Vec<(SimTime, u64, &E)> = Vec::with_capacity(self.len());
        match &self.engine {
            EngineImpl::Heap(h) => collect(&mut out, h.iter()),
            EngineImpl::Wheel(w) => {
                collect(&mut out, w.ready.iter());
                collect(&mut out, w.slots.iter().flatten());
                collect(&mut out, w.overflow.iter());
            }
        }
        out.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        out
    }

    /// Reinitializes the queue from checkpointed state: clock, tie-break
    /// cursor, lifetime pop counter, and the pending entries *with their
    /// original seq values* (so same-instant FIFO order replays exactly).
    ///
    /// This is the restore path's reset — [`clear`](Self::clear) alone
    /// cannot be used because it zeroes the seq cursor and keeps the
    /// lifetime counter, both of which must instead match the checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if an entry fires before `now` or carries a seq at or beyond
    /// `seq` (either would mean the checkpoint is internally inconsistent).
    pub fn reinit_from(
        &mut self,
        now: SimTime,
        seq: u64,
        popped: u64,
        entries: impl IntoIterator<Item = (SimTime, u64, E)>,
    ) {
        match &mut self.engine {
            EngineImpl::Heap(h) => h.clear(),
            EngineImpl::Wheel(w) => w.clear(now),
        }
        self.now = now;
        self.seq = seq;
        self.popped = popped;
        // Insert in (at, seq) order: the wheel's sorted-ready merge relies
        // on same-instant entries arriving in ascending seq order.
        let mut entries: Vec<(SimTime, u64, E)> = entries.into_iter().collect();
        entries.sort_unstable_by_key(|&(at, s, _)| (at, s));
        for (at, entry_seq, event) in entries {
            assert!(
                at >= now,
                "reinit_from: entry at {at:?} is before the restored clock {now:?}"
            );
            assert!(
                entry_seq < seq,
                "reinit_from: entry seq {entry_seq} is at/beyond the cursor {seq}"
            );
            let entry = Entry {
                at,
                seq: entry_seq,
                event,
            };
            match &mut self.engine {
                EngineImpl::Heap(h) => h.push(entry),
                EngineImpl::Wheel(w) => w.schedule(entry),
            }
        }
    }
}

#[cfg(test)]
mod difftest {
    use super::*;

    /// Differential check: both engines produce identical pop sequences on a
    /// deterministic pseudo-random schedule mixing same-instant bursts,
    /// near-future and far-future (beyond-horizon) events, interleaved with
    /// pops and deadline-limited pops.
    pub fn differential_run(seed: u64, ops: usize) {
        use crate::rng::DetRng;
        let mut rng = DetRng::new(seed);
        let mut wheel: EventQueue<u64> = EventQueue::with_engine(QueueEngine::Wheel);
        let mut heap: EventQueue<u64> = EventQueue::with_engine(QueueEngine::Heap);
        let mut next_id = 0u64;
        for _ in 0..ops {
            match rng.below(10) {
                // Schedule a burst (possibly same-instant FIFO).
                0..=4 => {
                    let base = wheel.now();
                    let delay = match rng.below(4) {
                        0 => 0,                  // same instant
                        1 => rng.below(1 << 10), // near: inside one slot region
                        2 => rng.below(1 << 18), // mid: within the horizon
                        _ => rng.below(1 << 24), // far: mostly beyond the horizon
                    };
                    let at = base + SimDuration::from_nanos(delay);
                    let burst = 1 + rng.below(8);
                    for _ in 0..burst {
                        wheel.schedule_at(at, next_id);
                        heap.schedule_at(at, next_id);
                        next_id += 1;
                    }
                }
                // Pop a few.
                5..=7 => {
                    for _ in 0..=rng.below(6) {
                        let a = wheel.pop();
                        let b = heap.pop();
                        assert_eq!(a, b, "pop diverged (seed {seed:#x})");
                    }
                }
                // Deadline-limited pop.
                8 => {
                    let d = wheel.now() + SimDuration::from_nanos(rng.below(1 << 20));
                    let a = wheel.pop_until(d);
                    let b = heap.pop_until(d);
                    assert_eq!(a, b, "pop_until diverged (seed {seed:#x})");
                }
                // Peek (exercises the wheel cursor without consuming).
                _ => {
                    assert_eq!(wheel.peek_time(), heap.peek_time());
                }
            }
            assert_eq!(wheel.now(), heap.now());
            assert_eq!(wheel.len(), heap.len());
        }
        // Drain: remaining sequences must match exactly.
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b, "drain diverged (seed {seed:#x})");
            if a.is_none() {
                break;
            }
        }
        assert_eq!(wheel.events_processed(), heap.events_processed());
    }
}

#[cfg(test)]
mod proptests {
    use super::difftest::differential_run;
    use proptest::prelude::*;

    proptest! {
        /// Property: for any random schedule (same-instant bursts, near- and
        /// far-future mixes included), the wheel and the reference heap pop
        /// bit-identical sequences.
        #[test]
        fn prop_wheel_matches_heap(seed in any::<u64>()) {
            differential_run(seed, 200);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> EventQueue<u32> {
        EventQueue::new()
    }

    /// Runs `test` against both engines.
    fn for_both(test: impl Fn(EventQueue<u32>)) {
        test(EventQueue::with_engine(QueueEngine::Wheel));
        test(EventQueue::with_engine(QueueEngine::Heap));
    }

    #[test]
    fn default_engine_is_wheel() {
        assert_eq!(q().engine(), QueueEngine::Wheel);
        assert_eq!(
            EventQueue::<u32>::with_engine(QueueEngine::Heap).engine(),
            QueueEngine::Heap
        );
        assert_eq!(QueueEngine::parse("heap"), Some(QueueEngine::Heap));
        assert_eq!(QueueEngine::parse("wheel"), Some(QueueEngine::Wheel));
        assert_eq!(QueueEngine::parse("btree"), None);
        assert_eq!(QueueEngine::Wheel.name(), "wheel");
    }

    #[test]
    fn pops_in_time_order() {
        for_both(|mut q| {
            q.schedule_at(SimTime::from_nanos(30), 3);
            q.schedule_at(SimTime::from_nanos(10), 1);
            q.schedule_at(SimTime::from_nanos(20), 2);
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn ties_pop_fifo() {
        for_both(|mut q| {
            for i in 0..100 {
                q.schedule_at(SimTime::from_nanos(5), i);
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn clock_advances_on_pop() {
        for_both(|mut q| {
            q.schedule_at(SimTime::from_nanos(42), 0);
            assert_eq!(q.now(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.now(), SimTime::from_nanos(42));
        });
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_into_the_past_panics() {
        let mut q = q();
        q.schedule_at(SimTime::from_nanos(10), 0);
        q.pop();
        q.schedule_at(SimTime::from_nanos(5), 1);
    }

    #[test]
    fn pop_until_respects_deadline() {
        for_both(|mut q| {
            q.schedule_at(SimTime::from_nanos(10), 1);
            q.schedule_at(SimTime::from_nanos(100), 2);
            assert_eq!(q.pop_until(SimTime::from_nanos(50)).unwrap().event, 1);
            assert!(q.pop_until(SimTime::from_nanos(50)).is_none());
            // Clock did not jump past the deadline.
            assert_eq!(q.now(), SimTime::from_nanos(10));
            assert_eq!(q.pop().unwrap().event, 2);
        });
    }

    #[test]
    fn schedule_now_fires_after_existing_same_instant_events() {
        for_both(|mut q| {
            q.schedule_now(1);
            q.schedule_now(2);
            assert_eq!(q.pop().unwrap().event, 1);
            assert_eq!(q.pop().unwrap().event, 2);
        });
    }

    #[test]
    fn counts_processed_events() {
        for_both(|mut q| {
            q.schedule_now(1);
            q.schedule_now(2);
            q.pop();
            q.pop();
            assert_eq!(q.events_processed(), 2);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn clear_resets_tie_break_but_not_events_processed() {
        for_both(|mut q| {
            // Drive the seq counter up, then clear.
            for i in 0..10 {
                q.schedule_now(i);
            }
            q.pop();
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.events_processed(), 1, "popped is cumulative");

            // A reused queue must order same-instant events exactly like a
            // fresh one (the seq counter used to carry over).
            let mut fresh = EventQueue::with_engine(q.engine());
            // Align the fresh clock with the reused queue's.
            fresh.schedule_at(q.now(), 999);
            fresh.pop();
            for (queue, base) in [(&mut q, 100u32), (&mut fresh, 100u32)] {
                for i in 0..5 {
                    queue.schedule_now(base + i);
                }
            }
            let a: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
            let b: Vec<u32> = std::iter::from_fn(|| fresh.pop().map(|e| e.event)).collect();
            assert_eq!(a, b);
            assert_eq!(a, vec![100, 101, 102, 103, 104]);
        });
    }

    #[test]
    fn peek_time_reports_next_event() {
        for_both(|mut q| {
            assert_eq!(q.peek_time(), None);
            q.schedule_at(SimTime::from_nanos(70), 1);
            q.schedule_at(SimTime::from_nanos(30), 2);
            assert_eq!(q.peek_time(), Some(SimTime::from_nanos(30)));
            // Peeking does not consume or advance.
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop().unwrap().event, 2);
        });
    }

    /// Regression for the wheel's cursor-jump hazard: peeking a far-future
    /// event jumps the drain cursor; an event then scheduled *between* now
    /// and that far slot must still pop first.
    #[test]
    fn near_event_scheduled_after_far_future_peek_pops_first() {
        let mut q: EventQueue<u32> = EventQueue::with_engine(QueueEngine::Wheel);
        // Far beyond the wheel horizon (262 µs): lands in overflow.
        q.schedule_at(SimTime::from_nanos(10_000_000), 1);
        // Force a cursor jump to the overflow minimum's slot.
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10_000_000)));
        // Now schedule earlier events: before the jumped-to slot, at it, and
        // same-instant bursts.
        q.schedule_at(SimTime::from_nanos(100), 2);
        q.schedule_at(SimTime::from_nanos(100), 3);
        q.schedule_at(SimTime::from_nanos(9_999_999), 4);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![2, 3, 4, 1]);
    }

    #[test]
    fn horizon_boundary_and_wraparound() {
        for_both(|mut q| {
            // Straddle the wheel horizon (1024 slots × 256 ns = 262_144 ns)
            // and force multiple wheel revolutions.
            let times = [
                0u64, 255, 256, 262_143, 262_144, 262_145, 600_000, 1_000_000,
            ];
            for (i, &t) in times.iter().enumerate() {
                q.schedule_at(SimTime::from_nanos(t), i as u32);
            }
            let got: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.at.as_nanos())).collect();
            let mut want = times.to_vec();
            want.sort_unstable();
            assert_eq!(got, want);
        });
    }

    use super::difftest::differential_run;

    #[test]
    fn differential_wheel_vs_heap_fixed_seeds() {
        for seed in [0xC0FFEE, 1, 2, 3, 0xE9, 0xDEAD_BEEF, 42, 1984] {
            differential_run(seed, 400);
        }
    }
}
