//! The event queue at the heart of the discrete-event engine.
//!
//! Events are arbitrary user values tagged with a firing time. Ties are
//! broken by insertion order (FIFO), which — together with the seeded RNG —
//! makes whole-system runs deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An event extracted from the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// The event payload.
    pub event: E,
}

/// Internal heap entry. Ordered so that the *earliest* time pops first and
/// ties pop in insertion order.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic min-priority event queue with a virtual clock.
///
/// The queue owns the clock: popping an event advances `now` to the event's
/// timestamp. Scheduling into the past is a logic error and is reported as
/// a panic rather than silently reordering history.
///
/// # Examples
///
/// ```
/// use lastcpu_sim::{EventQueue, SimDuration};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule_in(SimDuration::from_nanos(20), "b");
/// q.schedule_in(SimDuration::from_nanos(10), "a");
/// q.schedule_in(SimDuration::from_nanos(10), "a2"); // same instant: FIFO
/// let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
/// assert_eq!(order, vec!["a", "a2", "b"]);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (a cheap progress metric).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time: an event in
    /// the past can never fire and indicates a bug in the caller's cost
    /// accounting.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at:?} which is before now ({:?})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` to fire immediately (at the current time, after all
    /// events already scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.popped += 1;
        Some(ScheduledEvent {
            at: entry.at,
            event: entry.event,
        })
    }

    /// Pops the next event only if it fires at or before `deadline`.
    ///
    /// Leaves the clock untouched when no event qualifies, so callers can
    /// interleave simulation with external pacing.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<ScheduledEvent<E>> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Discards all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> EventQueue<u32> {
        EventQueue::new()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = q();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = q();
        for i in 0..100 {
            q.schedule_at(SimTime::from_nanos(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = q();
        q.schedule_at(SimTime::from_nanos(42), 0);
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_into_the_past_panics() {
        let mut q = q();
        q.schedule_at(SimTime::from_nanos(10), 0);
        q.pop();
        q.schedule_at(SimTime::from_nanos(5), 1);
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = q();
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(100), 2);
        assert_eq!(q.pop_until(SimTime::from_nanos(50)).unwrap().event, 1);
        assert!(q.pop_until(SimTime::from_nanos(50)).is_none());
        // Clock did not jump past the deadline.
        assert_eq!(q.now(), SimTime::from_nanos(10));
        assert_eq!(q.pop().unwrap().event, 2);
    }

    #[test]
    fn schedule_now_fires_after_existing_same_instant_events() {
        let mut q = q();
        q.schedule_now(1);
        q.schedule_now(2);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
    }

    #[test]
    fn counts_processed_events() {
        let mut q = q();
        q.schedule_now(1);
        q.schedule_now(2);
        q.pop();
        q.pop();
        assert_eq!(q.events_processed(), 2);
        assert!(q.is_empty());
    }
}
