//! System-wide metrics hub.
//!
//! A [`MetricsHub`] is a hierarchical registry of counters, gauges, and the
//! log-bucketed [`Histogram`]s from [`crate::stats`], keyed
//! `subsystem.device.metric` (e.g. `nic.nic0.frames_rx`,
//! `kvs.kvs0.gets`). Every subsystem — bus, iommu, devices, net, kvs,
//! memctl — registers into the same hub at construction, so one snapshot
//! captures the whole machine and the exporters in [`crate::export`] can emit
//! it as Prometheus text or JSON.
//!
//! The hub is a cheaply clonable handle (`Rc<RefCell<…>>` — the simulator is
//! deliberately single-threaded). Hot paths should grab a [`CounterHandle`],
//! [`GaugeHandle`], or [`HistogramHandle`] once and update through it: a
//! handle update is a single `Cell` add, with no map lookup and no borrow
//! bookkeeping.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::stats::Histogram;
use crate::time::SimDuration;

/// Cheap shared handle to one counter (monotonically increasing).
#[derive(Clone)]
pub struct CounterHandle(Rc<Cell<u64>>);

impl CounterHandle {
    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating, so soak runs cannot overflow-panic).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().saturating_add(n));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Cheap shared handle to one gauge (a signed level, e.g. a queue depth).
#[derive(Clone)]
pub struct GaugeHandle(Rc<Cell<i64>>);

impl GaugeHandle {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.set(v);
    }

    /// Moves the level by `delta` (saturating).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.set(self.0.get().saturating_add(delta));
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

/// Cheap shared handle to one histogram.
#[derive(Clone)]
pub struct HistogramHandle(Rc<RefCell<Histogram>>);

impl HistogramHandle {
    /// Records one duration.
    #[inline]
    pub fn record(&self, d: SimDuration) {
        self.0.borrow_mut().record(d);
    }

    /// Records one raw value.
    #[inline]
    pub fn record_value(&self, v: u64) {
        self.0.borrow_mut().record_value(v);
    }

    /// Merges a whole sample set.
    pub fn merge(&self, other: &Histogram) {
        self.0.borrow_mut().merge(other);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> Histogram {
        self.0.borrow().clone()
    }
}

#[derive(Default)]
struct HubInner {
    counters: BTreeMap<String, Rc<Cell<u64>>>,
    gauges: BTreeMap<String, Rc<Cell<i64>>>,
    histograms: BTreeMap<String, Rc<RefCell<Histogram>>>,
}

/// Shared, hierarchical registry of counters, gauges, and histograms.
///
/// Method names are a superset of the older `StatsRegistry`, so call sites
/// recording by string key (`incr`, `add`, `record`, `counter`, `histogram`)
/// keep their spelling; interior mutability means recording needs only `&self`.
#[derive(Clone, Default)]
pub struct MetricsHub {
    inner: Rc<RefCell<HubInner>>,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    // --- handle registration (construction-time) ---------------------------

    /// The counter named `key`, creating it on first use.
    ///
    /// Existing keys are looked up by `&str` — no `String` is built. The
    /// `BTreeMap::entry` spelling used here originally interned `key` on
    /// *every* call, which made each by-key `incr`/`add`/`record` on a hot
    /// path cost one heap allocation even after the metric existed (the
    /// single largest contributor to E9's system-phase allocs/event).
    pub fn counter_handle(&self, key: &str) -> CounterHandle {
        let mut inner = self.inner.borrow_mut();
        if let Some(cell) = inner.counters.get(key) {
            return CounterHandle(cell.clone());
        }
        let cell = Rc::new(Cell::new(0));
        inner.counters.insert(key.to_string(), cell.clone());
        CounterHandle(cell)
    }

    /// The gauge named `key`, creating it on first use (allocation-free for
    /// existing keys; see [`MetricsHub::counter_handle`]).
    pub fn gauge_handle(&self, key: &str) -> GaugeHandle {
        let mut inner = self.inner.borrow_mut();
        if let Some(cell) = inner.gauges.get(key) {
            return GaugeHandle(cell.clone());
        }
        let cell = Rc::new(Cell::new(0));
        inner.gauges.insert(key.to_string(), cell.clone());
        GaugeHandle(cell)
    }

    /// The histogram named `key`, creating it on first use (allocation-free
    /// for existing keys; see [`MetricsHub::counter_handle`]).
    pub fn histogram_handle(&self, key: &str) -> HistogramHandle {
        let mut inner = self.inner.borrow_mut();
        if let Some(h) = inner.histograms.get(key) {
            return HistogramHandle(h.clone());
        }
        let h = Rc::new(RefCell::new(Histogram::new()));
        inner.histograms.insert(key.to_string(), h.clone());
        HistogramHandle(h)
    }

    // --- by-key recording ---------------------------------------------------

    /// Increments the counter named `key`, creating it on first use.
    pub fn incr(&self, key: &str) {
        self.add(key, 1);
    }

    /// Adds `n` to the counter named `key`, creating it on first use.
    pub fn add(&self, key: &str, n: u64) {
        self.counter_handle(key).add(n);
    }

    /// Sets the gauge named `key`.
    pub fn gauge_set(&self, key: &str, v: i64) {
        self.gauge_handle(key).set(v);
    }

    /// Moves the gauge named `key` by `delta`.
    pub fn gauge_add(&self, key: &str, delta: i64) {
        self.gauge_handle(key).add(delta);
    }

    /// Records a duration into histogram `key`, creating it on first use.
    pub fn record(&self, key: &str, d: SimDuration) {
        self.histogram_handle(key).record(d);
    }

    /// Records a raw value into histogram `key`, creating it on first use.
    pub fn record_value(&self, key: &str, v: u64) {
        self.histogram_handle(key).record_value(v);
    }

    /// Merges a whole sample set into histogram `key`, creating it on first
    /// use (used by the profiler to publish per-scope span histograms).
    pub fn merge_histogram(&self, key: &str, h: &Histogram) {
        self.histogram_handle(key).merge(h);
    }

    // --- reading ------------------------------------------------------------

    /// Current value of counter `key` (zero when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.inner.borrow().counters.get(key).map_or(0, |c| c.get())
    }

    /// Current level of gauge `key` (zero when absent).
    pub fn gauge(&self, key: &str) -> i64 {
        self.inner.borrow().gauges.get(key).map_or(0, |g| g.get())
    }

    /// Point-in-time copy of histogram `key`.
    pub fn histogram(&self, key: &str) -> Option<Histogram> {
        self.inner
            .borrow()
            .histograms
            .get(key)
            .map(|h| h.borrow().clone())
    }

    /// Snapshot of all counters in key order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .borrow()
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Snapshot of all gauges in key order.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        self.inner
            .borrow()
            .gauges
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect()
    }

    /// Snapshot of all histograms in key order.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.inner
            .borrow()
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.borrow().clone()))
            .collect()
    }

    /// Keys (counters, gauges, histograms) under `prefix`, in order.
    pub fn keys_under(&self, prefix: &str) -> Vec<String> {
        let inner = self.inner.borrow();
        let mut keys: Vec<String> = inner
            .counters
            .keys()
            .chain(inner.gauges.keys())
            .chain(inner.histograms.keys())
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        keys.sort();
        keys
    }

    /// Zeroes every metric but keeps registrations (handles stay valid).
    pub fn reset(&self) {
        let inner = self.inner.borrow();
        for c in inner.counters.values() {
            c.set(0);
        }
        for g in inner.gauges.values() {
            g.set(0);
        }
        for h in inner.histograms.values() {
            h.borrow_mut().reset();
        }
    }
}

impl lastcpu_snap::Snapshot for MetricsHub {
    /// Serializes every registered metric in key order. Zero-valued but
    /// registered metrics are included: registration is part of the state
    /// (a restored hub must re-export the same key set).
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        let inner = self.inner.borrow();
        w.put_len(inner.counters.len());
        for (k, c) in &inner.counters {
            w.put_str(k);
            w.put_u64(c.get());
        }
        w.put_len(inner.gauges.len());
        for (k, g) in &inner.gauges {
            w.put_str(k);
            w.put_i64(g.get());
        }
        w.put_len(inner.histograms.len());
        for (k, h) in &inner.histograms {
            w.put_str(k);
            h.borrow().snapshot(w);
        }
    }
}

impl lastcpu_snap::Restore for MetricsHub {
    /// Zeroes live metrics, then loads checkpointed values — creating
    /// registrations for keys not yet seen, through the same get-or-create
    /// path recording uses, so outstanding handles stay valid.
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.reset();
        let n = r.len()?;
        for _ in 0..n {
            let k = r.str()?;
            let v = r.u64()?;
            self.counter_handle(&k).0.set(v);
        }
        let n = r.len()?;
        for _ in 0..n {
            let k = r.str()?;
            let v = r.i64()?;
            self.gauge_handle(&k).0.set(v);
        }
        let n = r.len()?;
        for _ in 0..n {
            let k = r.str()?;
            let h = self.histogram_handle(&k);
            h.0.borrow_mut().restore(r)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "MetricsHub({} counters, {} gauges, {} histograms)",
            inner.counters.len(),
            inner.gauges.len(),
            inner.histograms.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_key_round_trips() {
        let hub = MetricsHub::new();
        hub.incr("bus.messages");
        hub.add("bus.messages", 2);
        hub.record("kvs.kvs0.latency", SimDuration::from_micros(5));
        hub.gauge_set("nic.nic0.queue_depth", 7);
        assert_eq!(hub.counter("bus.messages"), 3);
        assert_eq!(hub.counter("missing"), 0);
        assert_eq!(hub.gauge("nic.nic0.queue_depth"), 7);
        assert_eq!(hub.histogram("kvs.kvs0.latency").unwrap().count(), 1);
        assert!(hub.histogram("missing").is_none());
    }

    #[test]
    fn handles_share_storage_with_keys() {
        let hub = MetricsHub::new();
        let h = hub.counter_handle("iommu.dev3.maps");
        h.incr();
        h.add(4);
        hub.incr("iommu.dev3.maps");
        assert_eq!(hub.counter("iommu.dev3.maps"), 6);
        assert_eq!(h.get(), 6);

        let g = hub.gauge_handle("sys.inbox");
        g.add(3);
        g.add(-1);
        assert_eq!(hub.gauge("sys.inbox"), 2);

        let lat = hub.histogram_handle("ssd.ssd0.read_latency");
        lat.record(SimDuration::from_nanos(400));
        assert_eq!(hub.histogram("ssd.ssd0.read_latency").unwrap().count(), 1);
        assert_eq!(lat.snapshot().count(), 1);
    }

    #[test]
    fn clones_view_the_same_hub() {
        let hub = MetricsHub::new();
        let view = hub.clone();
        hub.incr("a.b.c");
        assert_eq!(view.counter("a.b.c"), 1);
    }

    #[test]
    fn counters_saturate_instead_of_panicking() {
        let hub = MetricsHub::new();
        let h = hub.counter_handle("soak");
        h.add(u64::MAX - 1);
        h.add(5);
        assert_eq!(h.get(), u64::MAX);
        let g = hub.gauge_handle("level");
        g.set(i64::MAX);
        g.add(1);
        assert_eq!(g.get(), i64::MAX);
    }

    #[test]
    fn handle_lookup_of_existing_key_does_not_reintern() {
        // Regression for the hot-path allocation: fetching a handle for a
        // key that already exists must return the same storage (and, by
        // construction, never rebuilds the key String — the lookup goes
        // through `BTreeMap::get(&str)`).
        let hub = MetricsHub::new();
        let a = hub.counter_handle("kvs.c0.gets");
        let b = hub.counter_handle("kvs.c0.gets");
        a.incr();
        b.incr();
        assert_eq!(hub.counter("kvs.c0.gets"), 2);
        assert_eq!(hub.counters().len(), 1);

        let ha = hub.histogram_handle("kvs.c0.lat");
        let hb = hub.histogram_handle("kvs.c0.lat");
        ha.record_value(1);
        hb.record_value(2);
        assert_eq!(hub.histogram("kvs.c0.lat").unwrap().count(), 2);
    }

    #[test]
    fn merge_histogram_unions_samples() {
        let hub = MetricsHub::new();
        let mut h = Histogram::new();
        h.record_value(10);
        h.record_value(20);
        hub.record_value("prof.span", 5);
        hub.merge_histogram("prof.span", &h);
        let got = hub.histogram("prof.span").unwrap();
        assert_eq!(got.count(), 3);
        assert_eq!(got.min().as_nanos(), 5);
        assert_eq!(got.max().as_nanos(), 20);
    }

    #[test]
    fn snapshots_and_reset() {
        let hub = MetricsHub::new();
        hub.incr("bus.messages");
        hub.gauge_set("q", -2);
        hub.record_value("h", 9);
        assert_eq!(hub.counters().len(), 1);
        assert_eq!(hub.gauges().len(), 1);
        assert_eq!(hub.histograms().len(), 1);
        assert_eq!(hub.keys_under("bus."), vec!["bus.messages".to_string()]);
        let handle = hub.counter_handle("bus.messages");
        hub.reset();
        assert_eq!(hub.counter("bus.messages"), 0);
        handle.incr(); // handles survive reset
        assert_eq!(hub.counter("bus.messages"), 1);
    }
}
