//! Split-virtqueue byte layout (VIRTIO 1.1 §2.6).
//!
//! ```text
//! base ─► descriptor table   16 bytes × N          (align 16)
//!         available ring     4 + 2 × N bytes       (align 2)
//!         used ring          4 + 8 × N bytes       (align 4)
//! ```

/// Size of one descriptor in bytes.
pub const DESC_SIZE: u64 = 16;

/// Byte layout of one split virtqueue of `size` entries at `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueLayout {
    /// Queue size (number of descriptors); a power of two ≤ 32768.
    pub size: u16,
    /// Virtual address of the descriptor table.
    pub desc: u64,
    /// Virtual address of the available ring.
    pub avail: u64,
    /// Virtual address of the used ring.
    pub used: u64,
}

fn align_up(v: u64, a: u64) -> u64 {
    v.div_ceil(a) * a
}

impl QueueLayout {
    /// Computes the layout for a queue of `size` entries at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero, not a power of two, or exceeds 32768 —
    /// these are protocol constants, not runtime conditions. The
    /// power-of-two requirement is load-bearing for correctness, not just
    /// VIRTIO conformance: ring cursors are free-running `u16`s that wrap
    /// at 65536, and [`QueueLayout::slot`] reduces them with a bitmask.
    /// With a non-power-of-two size, `idx % size` and the wrapped cursor
    /// distance (`wrapping_sub`) disagree after the first u16 wrap —
    /// 65536 % 12 ≠ 0 — so the slot pointer and the pending count would
    /// drift apart permanently.
    pub fn new(base: u64, size: u16) -> Self {
        assert!(size > 0 && size <= 32768, "queue size out of range");
        assert!(size.is_power_of_two(), "queue size must be a power of two");
        let desc = align_up(base, 16);
        let avail = align_up(desc + DESC_SIZE * size as u64, 2);
        let used = align_up(avail + 4 + 2 * size as u64, 4);
        QueueLayout {
            size,
            desc,
            avail,
            used,
        }
    }

    /// Reduces a free-running ring cursor to its slot in `[0, size)`.
    ///
    /// Uses a bitmask rather than `%` so the reduction stays consistent
    /// with `u16` cursor wraparound (valid because `size` is a power of
    /// two, enforced at construction).
    pub fn slot(&self, cursor: u16) -> u16 {
        cursor & (self.size - 1)
    }

    /// Total bytes the queue structures occupy from `desc` to the end of
    /// the used ring.
    pub fn total_bytes(&self) -> u64 {
        self.used + 4 + 8 * self.size as u64 - self.desc
    }

    /// First byte past the queue structures (where buffer space can start).
    pub fn end(&self) -> u64 {
        self.used + 4 + 8 * self.size as u64
    }

    /// Address of descriptor `i`.
    pub fn desc_addr(&self, i: u16) -> u64 {
        debug_assert!(i < self.size);
        self.desc + DESC_SIZE * i as u64
    }

    /// Address of the available ring's `flags` field.
    pub fn avail_flags(&self) -> u64 {
        self.avail
    }

    /// Address of the available ring's `idx` field.
    pub fn avail_idx(&self) -> u64 {
        self.avail + 2
    }

    /// Address of available ring slot `i` (callers pass `idx % size`).
    pub fn avail_ring(&self, i: u16) -> u64 {
        debug_assert!(i < self.size);
        self.avail + 4 + 2 * i as u64
    }

    /// Address of the used ring's `flags` field.
    pub fn used_flags(&self) -> u64 {
        self.used
    }

    /// Address of the used ring's `idx` field.
    pub fn used_idx(&self) -> u64 {
        self.used + 2
    }

    /// Address of used ring element `i` (8 bytes: id u32 + len u32).
    pub fn used_ring(&self, i: u16) -> u64 {
        debug_assert!(i < self.size);
        self.used + 4 + 8 * i as u64
    }
}

impl QueueLayout {
    /// Serializes into a snapshot section.
    pub fn encode(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u16(self.size);
        w.put_u64(self.desc);
        w.put_u64(self.avail);
        w.put_u64(self.used);
    }

    /// Inverse of [`QueueLayout::encode`].
    pub fn decode(r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<Self> {
        Ok(QueueLayout {
            size: r.u16()?,
            desc: r.u64()?,
            avail: r.u64()?,
            used: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_ordered_and_aligned() {
        let l = QueueLayout::new(0x1000, 64);
        assert_eq!(l.desc % 16, 0);
        assert_eq!(l.avail % 2, 0);
        assert_eq!(l.used % 4, 0);
        assert!(l.desc < l.avail);
        assert!(l.avail < l.used);
        assert_eq!(l.desc, 0x1000);
        assert_eq!(l.avail, 0x1000 + 16 * 64);
    }

    #[test]
    fn unaligned_base_is_aligned_up() {
        let l = QueueLayout::new(0x1001, 8);
        assert_eq!(l.desc, 0x1010);
    }

    #[test]
    fn regions_do_not_overlap() {
        for size in [1u16, 2, 8, 256, 1024] {
            let l = QueueLayout::new(0, size);
            let desc_end = l.desc + DESC_SIZE * size as u64;
            let avail_end = l.avail + 4 + 2 * size as u64;
            assert!(desc_end <= l.avail, "size {size}");
            assert!(avail_end <= l.used, "size {size}");
            assert_eq!(l.end(), l.used + 4 + 8 * size as u64);
            assert!(l.total_bytes() > 0);
        }
    }

    #[test]
    fn element_addresses_are_within_regions() {
        let l = QueueLayout::new(0x2000, 16);
        assert_eq!(l.desc_addr(0), l.desc);
        assert_eq!(l.desc_addr(15), l.desc + 15 * 16);
        assert_eq!(l.avail_ring(0), l.avail + 4);
        assert_eq!(l.used_ring(0), l.used + 4);
        assert_eq!(l.avail_idx(), l.avail + 2);
        assert_eq!(l.used_idx(), l.used + 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        QueueLayout::new(0, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_size_rejected() {
        QueueLayout::new(0, 0);
    }
}
