//! VIRTIO-style split virtqueues over shared memory.
//!
//! §2.1 of the paper singles out VIRTIO as "an ideal interface for exposing
//! resources from self-managing devices": one standard queue protocol that
//! any device can serve and any device can drive. This crate implements the
//! split-virtqueue layout of VIRTIO 1.1 — descriptor table, available ring,
//! used ring — operating on *virtual addresses inside an application's
//! shared-memory region*, exactly as the paper's Figure 2 step 7 sets up
//! ("The NIC may then establish the connection by programming the VIRTIO
//! queues in the SSD using virtual addresses").
//!
//! The queue structures live in simulated DRAM and every access goes
//! through the [`QueueMemory`] trait, which the system glue implements as
//! IOMMU-translated DMA. Nothing here is a shortcut around the data plane:
//! descriptors are really serialized to bytes and really parsed back, so a
//! corrupted ring is detected the way hardware would detect it.
//!
//! - [`layout`]: byte layout and alignment of the three rings.
//! - [`queue`]: [`VirtqueueDriver`] (guest/driver side) and
//!   [`VirtqueueDevice`] (device side).
//! - [`arena`]: a slot allocator for request/response buffer space inside
//!   the shared region.
//! - [`features`]: feature-bit negotiation.

pub mod arena;
pub mod features;
pub mod layout;
pub mod queue;

pub use arena::BufferArena;
pub use features::{FeatureSet, F_EVENT_IDX, F_INDIRECT_DESC, F_VERSION_1};
pub use layout::QueueLayout;
pub use queue::{DescChain, QueueError, VirtqueueDevice, VirtqueueDriver};

/// Abstract access to the shared memory a queue lives in.
///
/// Implementations translate the virtual addresses through the accessing
/// device's IOMMU; a translation fault surfaces as [`MemFault`].
pub trait QueueMemory {
    /// Reads `buf.len()` bytes at virtual address `va`.
    fn read(&mut self, va: u64, buf: &mut [u8]) -> Result<(), MemFault>;

    /// Writes `buf` at virtual address `va`.
    fn write(&mut self, va: u64, buf: &[u8]) -> Result<(), MemFault>;
}

/// A data-plane memory fault (missing mapping or permission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting virtual address.
    pub va: u64,
    /// Whether the faulting access was a write.
    pub write: bool,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory fault on {} at {:#x}",
            if self.write { "write" } else { "read" },
            self.va
        )
    }
}

impl std::error::Error for MemFault {}

/// A plain `Vec`-backed [`QueueMemory`] for tests and examples.
///
/// Addresses map 1:1 onto the vector (no translation). Out-of-range
/// accesses fault like an unmapped page would.
pub struct FlatMemory {
    bytes: Vec<u8>,
}

impl FlatMemory {
    /// Creates `size` bytes of zeroed flat memory.
    pub fn new(size: usize) -> Self {
        FlatMemory {
            bytes: vec![0; size],
        }
    }

    /// The backing size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }
}

impl QueueMemory for FlatMemory {
    fn read(&mut self, va: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        let start = va as usize;
        let end = start
            .checked_add(buf.len())
            .ok_or(MemFault { va, write: false })?;
        if end > self.bytes.len() {
            return Err(MemFault { va, write: false });
        }
        buf.copy_from_slice(&self.bytes[start..end]);
        Ok(())
    }

    fn write(&mut self, va: u64, buf: &[u8]) -> Result<(), MemFault> {
        let start = va as usize;
        let end = start
            .checked_add(buf.len())
            .ok_or(MemFault { va, write: true })?;
        if end > self.bytes.len() {
            return Err(MemFault { va, write: true });
        }
        self.bytes[start..end].copy_from_slice(buf);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_memory_round_trips() {
        let mut m = FlatMemory::new(1024);
        m.write(100, b"abc").unwrap();
        let mut b = [0u8; 3];
        m.read(100, &mut b).unwrap();
        assert_eq!(&b, b"abc");
    }

    #[test]
    fn flat_memory_faults_out_of_range() {
        let mut m = FlatMemory::new(16);
        let mut b = [0u8; 8];
        assert_eq!(
            m.read(12, &mut b),
            Err(MemFault {
                va: 12,
                write: false
            })
        );
        assert_eq!(
            m.write(u64::MAX, &b),
            Err(MemFault {
                va: u64::MAX,
                write: true
            })
        );
    }
}
