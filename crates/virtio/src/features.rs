//! Feature-bit negotiation.
//!
//! VIRTIO devices advertise a feature word; drivers acknowledge the subset
//! they support; the connection operates on the intersection. The emulator
//! uses the handful of bits that affect queue behaviour.

/// The device complies with VIRTIO 1.0+ semantics (always negotiated here).
pub const F_VERSION_1: u64 = 1 << 32;
/// Indirect descriptor tables are supported.
pub const F_INDIRECT_DESC: u64 = 1 << 28;
/// Used/available event index suppression is supported.
pub const F_EVENT_IDX: u64 = 1 << 29;

/// A set of feature bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeatureSet(pub u64);

impl FeatureSet {
    /// The empty set.
    pub const NONE: FeatureSet = FeatureSet(0);

    /// Whether all bits in `mask` are present.
    pub fn has(self, mask: u64) -> bool {
        self.0 & mask == mask
    }

    /// Negotiates: the intersection of device-offered and driver-wanted
    /// bits. Returns `None` if the mandatory `F_VERSION_1` would be lost,
    /// which real drivers treat as a failed probe.
    pub fn negotiate(device_offers: FeatureSet, driver_wants: FeatureSet) -> Option<FeatureSet> {
        let agreed = FeatureSet(device_offers.0 & driver_wants.0);
        if agreed.has(F_VERSION_1) {
            Some(agreed)
        } else {
            None
        }
    }
}

impl std::ops::BitOr for FeatureSet {
    type Output = FeatureSet;

    fn bitor(self, rhs: FeatureSet) -> FeatureSet {
        FeatureSet(self.0 | rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_intersects() {
        let dev = FeatureSet(F_VERSION_1 | F_INDIRECT_DESC | F_EVENT_IDX);
        let drv = FeatureSet(F_VERSION_1 | F_INDIRECT_DESC);
        let agreed = FeatureSet::negotiate(dev, drv).unwrap();
        assert!(agreed.has(F_VERSION_1));
        assert!(agreed.has(F_INDIRECT_DESC));
        assert!(!agreed.has(F_EVENT_IDX));
    }

    #[test]
    fn missing_version_1_fails_probe() {
        let dev = FeatureSet(F_INDIRECT_DESC);
        let drv = FeatureSet(F_VERSION_1 | F_INDIRECT_DESC);
        assert_eq!(FeatureSet::negotiate(dev, drv), None);
    }

    #[test]
    fn bitor_combines() {
        let s = FeatureSet(F_VERSION_1) | FeatureSet(F_EVENT_IDX);
        assert!(s.has(F_VERSION_1 | F_EVENT_IDX));
    }
}
