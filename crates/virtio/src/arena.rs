//! Buffer-space allocator for the shared region.
//!
//! Descriptors point at request/response buffers that must also live in the
//! shared memory region. The arena hands out fixed-size slots from the area
//! behind the queue structures — the same strategy as a driver's DMA buffer
//! pool. Fixed-size slots keep free O(1) and make exhaustion behaviour
//! (queue backpressure) easy to reason about in experiments.

/// A fixed-slot buffer allocator over `[base, base + slot_size * slots)`.
#[derive(Debug)]
pub struct BufferArena {
    base: u64,
    slot_size: u64,
    free: Vec<u16>,
    total: u16,
}

impl BufferArena {
    /// Creates an arena of `slots` slots of `slot_size` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `slot_size` is zero.
    pub fn new(base: u64, slot_size: u64, slots: u16) -> Self {
        assert!(slots > 0 && slot_size > 0, "arena must be non-empty");
        // LIFO free list: hot slots are reused first (cache-friendly on
        // real hardware, deterministic here).
        let free = (0..slots).rev().collect();
        BufferArena {
            base,
            slot_size,
            free,
            total: slots,
        }
    }

    /// Slot size in bytes.
    pub fn slot_size(&self) -> u64 {
        self.slot_size
    }

    /// Number of free slots.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Total slots.
    pub fn total_slots(&self) -> u16 {
        self.total
    }

    /// First byte past the arena.
    pub fn end(&self) -> u64 {
        self.base + self.slot_size * self.total as u64
    }

    /// Allocates a slot, returning its virtual address.
    pub fn alloc(&mut self) -> Option<u64> {
        self.free
            .pop()
            .map(|s| self.base + self.slot_size * s as u64)
    }

    /// Returns a slot by its virtual address.
    ///
    /// # Panics
    ///
    /// Panics if `va` is not a slot base inside this arena or the slot is
    /// already free — both indicate corrupted driver state.
    pub fn free(&mut self, va: u64) {
        assert!(
            va >= self.base && va < self.end(),
            "address {va:#x} outside arena"
        );
        let off = va - self.base;
        assert_eq!(off % self.slot_size, 0, "address {va:#x} not a slot base");
        let slot = (off / self.slot_size) as u16;
        assert!(!self.free.contains(&slot), "double free of slot {slot}");
        self.free.push(slot);
    }
}

impl lastcpu_snap::Snapshot for BufferArena {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.base);
        w.put_u64(self.slot_size);
        w.put_u16(self.total);
        w.put_len(self.free.len());
        for &s in &self.free {
            w.put_u16(s);
        }
    }
}

impl lastcpu_snap::Restore for BufferArena {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.base = r.u64()?;
        self.slot_size = r.u64()?;
        self.total = r.u16()?;
        let n = r.len()?;
        if n > self.total as usize {
            return Err(r.corrupt("more free slots than arena total"));
        }
        self.free = Vec::with_capacity(n);
        for _ in 0..n {
            let s = r.u16()?;
            if s >= self.total {
                return Err(r.corrupt(format!("free slot {s} out of range")));
            }
            self.free.push(s);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut a = BufferArena::new(0x1000, 512, 4);
        let mut got = vec![];
        while let Some(va) = a.alloc() {
            got.push(va);
        }
        assert_eq!(got.len(), 4);
        // Distinct, slot-aligned, in range.
        for &va in &got {
            assert!(va >= 0x1000 && va < a.end());
            assert_eq!((va - 0x1000) % 512, 0);
        }
        got.dedup();
        assert_eq!(got.len(), 4);
        for va in got {
            a.free(va);
        }
        assert_eq!(a.free_slots(), 4);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = BufferArena::new(0, 64, 1);
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_none());
    }

    #[test]
    fn lifo_reuse() {
        let mut a = BufferArena::new(0, 64, 2);
        let first = a.alloc().unwrap();
        a.free(first);
        assert_eq!(a.alloc().unwrap(), first);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = BufferArena::new(0, 64, 2);
        let va = a.alloc().unwrap();
        a.free(va);
        a.free(va);
    }

    #[test]
    #[should_panic(expected = "not a slot base")]
    fn misaligned_free_panics() {
        let mut a = BufferArena::new(0, 64, 2);
        let va = a.alloc().unwrap();
        a.free(va + 1);
    }

    #[test]
    #[should_panic(expected = "outside arena")]
    fn foreign_free_panics() {
        let mut a = BufferArena::new(0x1000, 64, 2);
        a.free(0x10);
    }
}
