//! Driver- and device-side virtqueue endpoints.
//!
//! Both endpoints keep only *shadow* state (free lists, ring cursors); the
//! authoritative descriptor table and rings live in shared memory and every
//! operation reads/writes them through [`QueueMemory`]. A malformed table —
//! out-of-range index, descriptor cycle — is detected and reported as
//! [`QueueError::Corrupt`], the way a defensive device implementation must
//! (the peer is another device, not a trusted kernel).

use std::collections::HashMap;

use crate::layout::QueueLayout;
use crate::{MemFault, QueueMemory};

/// Descriptor flag: another descriptor chains after this one.
pub const DESC_F_NEXT: u16 = 1;
/// Descriptor flag: the device writes this buffer (driver reads it back).
pub const DESC_F_WRITE: u16 = 2;
/// Descriptor flag: the buffer holds an indirect descriptor table
/// (VIRTIO 1.1 §2.6.5.3; requires `F_INDIRECT_DESC`).
pub const DESC_F_INDIRECT: u16 = 4;

/// Errors from queue operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueError {
    /// No free descriptors for the request.
    Full,
    /// Shared-memory access faulted.
    Fault(MemFault),
    /// The ring state in shared memory is inconsistent.
    Corrupt(&'static str),
    /// A response did not fit the writable buffers provided.
    ResponseTooLarge {
        /// Bytes the device wanted to write.
        need: u64,
        /// Bytes of writable buffer available.
        have: u64,
    },
}

impl From<MemFault> for QueueError {
    fn from(f: MemFault) -> Self {
        QueueError::Fault(f)
    }
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Full => write!(f, "virtqueue full"),
            QueueError::Fault(m) => write!(f, "virtqueue {m}"),
            QueueError::Corrupt(why) => write!(f, "virtqueue corrupt: {why}"),
            QueueError::ResponseTooLarge { need, have } => {
                write!(f, "response of {need} bytes exceeds {have} writable bytes")
            }
        }
    }
}

impl std::error::Error for QueueError {}

/// One raw descriptor (16 bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Desc {
    addr: u64,
    len: u32,
    flags: u16,
    next: u16,
}

fn read_desc<M: QueueMemory>(
    mem: &mut M,
    layout: &QueueLayout,
    i: u16,
) -> Result<Desc, QueueError> {
    let mut b = [0u8; 16];
    mem.read(layout.desc_addr(i), &mut b)?;
    Ok(Desc {
        addr: u64::from_le_bytes(b[0..8].try_into().expect("len 8")),
        len: u32::from_le_bytes(b[8..12].try_into().expect("len 4")),
        flags: u16::from_le_bytes(b[12..14].try_into().expect("len 2")),
        next: u16::from_le_bytes(b[14..16].try_into().expect("len 2")),
    })
}

fn write_desc<M: QueueMemory>(
    mem: &mut M,
    layout: &QueueLayout,
    i: u16,
    d: Desc,
) -> Result<(), QueueError> {
    let mut b = [0u8; 16];
    b[0..8].copy_from_slice(&d.addr.to_le_bytes());
    b[8..12].copy_from_slice(&d.len.to_le_bytes());
    b[12..14].copy_from_slice(&d.flags.to_le_bytes());
    b[14..16].copy_from_slice(&d.next.to_le_bytes());
    mem.write(layout.desc_addr(i), &b)?;
    Ok(())
}

/// One buffer segment in a request chain, from the driver's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainSeg {
    /// Virtual address of the buffer.
    pub va: u64,
    /// Buffer length in bytes.
    pub len: u32,
    /// Whether the *device* writes this buffer (response space).
    pub device_writes: bool,
}

/// A completed request popped from the used ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Head descriptor index identifying the request.
    pub head: u16,
    /// Bytes the device wrote into the writable buffers.
    pub written: u32,
}

/// The driver (requester) side of a virtqueue.
pub struct VirtqueueDriver {
    layout: QueueLayout,
    free: Vec<u16>,
    chains: HashMap<u16, Vec<u16>>,
    avail_idx: u16,
    last_used: u16,
}

impl VirtqueueDriver {
    /// Initializes the queue structures in shared memory and returns the
    /// driver endpoint.
    pub fn create<M: QueueMemory>(mem: &mut M, layout: QueueLayout) -> Result<Self, QueueError> {
        mem.write(layout.avail_flags(), &0u16.to_le_bytes())?;
        mem.write(layout.avail_idx(), &0u16.to_le_bytes())?;
        mem.write(layout.used_flags(), &0u16.to_le_bytes())?;
        mem.write(layout.used_idx(), &0u16.to_le_bytes())?;
        Ok(VirtqueueDriver {
            free: (0..layout.size).rev().collect(),
            chains: HashMap::new(),
            layout,
            avail_idx: 0,
            last_used: 0,
        })
    }

    /// The queue layout.
    pub fn layout(&self) -> &QueueLayout {
        &self.layout
    }

    /// Free descriptors remaining.
    pub fn free_descriptors(&self) -> usize {
        self.free.len()
    }

    /// Requests submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.chains.len()
    }

    /// Submits a descriptor chain, returning the head index.
    ///
    /// Segment order follows the VIRTIO rule: all device-readable segments
    /// must precede device-writable ones; this is validated here so the
    /// device side can rely on it.
    pub fn submit_chain<M: QueueMemory>(
        &mut self,
        mem: &mut M,
        segs: &[ChainSeg],
    ) -> Result<u16, QueueError> {
        if segs.is_empty() {
            return Err(QueueError::Corrupt("empty chain"));
        }
        let mut seen_writable = false;
        for s in segs {
            if s.device_writes {
                seen_writable = true;
            } else if seen_writable {
                return Err(QueueError::Corrupt("readable segment after writable"));
            }
        }
        if self.free.len() < segs.len() {
            return Err(QueueError::Full);
        }
        let ids: Vec<u16> = (0..segs.len())
            .map(|_| self.free.pop().expect("checked length"))
            .collect();
        for (k, (seg, &id)) in segs.iter().zip(&ids).enumerate() {
            let last = k == segs.len() - 1;
            let mut flags = 0u16;
            if !last {
                flags |= DESC_F_NEXT;
            }
            if seg.device_writes {
                flags |= DESC_F_WRITE;
            }
            write_desc(
                mem,
                &self.layout,
                id,
                Desc {
                    addr: seg.va,
                    len: seg.len,
                    flags,
                    next: if last { 0 } else { ids[k + 1] },
                },
            )?;
        }
        let head = ids[0];
        // Publish: slot, then index (index write is the release barrier on
        // real hardware; ordering is preserved here by program order).
        let slot = self.layout.slot(self.avail_idx);
        mem.write(self.layout.avail_ring(slot), &head.to_le_bytes())?;
        self.avail_idx = self.avail_idx.wrapping_add(1);
        mem.write(self.layout.avail_idx(), &self.avail_idx.to_le_bytes())?;
        self.chains.insert(head, ids);
        Ok(head)
    }

    /// Submits a chain through an *indirect* descriptor table (VIRTIO 1.1
    /// §2.6.5.3): the whole chain is serialized as a table at `table_va`
    /// (caller-owned buffer space, `16 * segs.len()` bytes) and consumes
    /// only a single ring descriptor — the mechanism long chains use to
    /// avoid exhausting the ring.
    pub fn submit_chain_indirect<M: QueueMemory>(
        &mut self,
        mem: &mut M,
        segs: &[ChainSeg],
        table_va: u64,
    ) -> Result<u16, QueueError> {
        if segs.is_empty() {
            return Err(QueueError::Corrupt("empty chain"));
        }
        let mut seen_writable = false;
        for s in segs {
            if s.device_writes {
                seen_writable = true;
            } else if seen_writable {
                return Err(QueueError::Corrupt("readable segment after writable"));
            }
        }
        if self.free.is_empty() {
            return Err(QueueError::Full);
        }
        // Serialize the indirect table: entries chained by table-local
        // `next` indices.
        for (k, seg) in segs.iter().enumerate() {
            let last = k == segs.len() - 1;
            let mut flags = 0u16;
            if !last {
                flags |= DESC_F_NEXT;
            }
            if seg.device_writes {
                flags |= DESC_F_WRITE;
            }
            let mut b = [0u8; 16];
            b[0..8].copy_from_slice(&seg.va.to_le_bytes());
            b[8..12].copy_from_slice(&seg.len.to_le_bytes());
            b[12..14].copy_from_slice(&flags.to_le_bytes());
            b[14..16].copy_from_slice(&((k + 1) as u16).to_le_bytes());
            mem.write(table_va + 16 * k as u64, &b)?;
        }
        let id = self.free.pop().expect("checked nonempty");
        write_desc(
            mem,
            &self.layout,
            id,
            Desc {
                addr: table_va,
                len: (16 * segs.len()) as u32,
                flags: DESC_F_INDIRECT,
                next: 0,
            },
        )?;
        let slot = self.layout.slot(self.avail_idx);
        mem.write(self.layout.avail_ring(slot), &id.to_le_bytes())?;
        self.avail_idx = self.avail_idx.wrapping_add(1);
        mem.write(self.layout.avail_idx(), &self.avail_idx.to_le_bytes())?;
        self.chains.insert(id, vec![id]);
        Ok(id)
    }

    /// Convenience: submits one request buffer (already written to `out_va`
    /// by the caller via `mem`) plus one response buffer.
    pub fn submit_request<M: QueueMemory>(
        &mut self,
        mem: &mut M,
        out_va: u64,
        out_len: u32,
        in_va: u64,
        in_len: u32,
    ) -> Result<u16, QueueError> {
        self.submit_chain(
            mem,
            &[
                ChainSeg {
                    va: out_va,
                    len: out_len,
                    device_writes: false,
                },
                ChainSeg {
                    va: in_va,
                    len: in_len,
                    device_writes: true,
                },
            ],
        )
    }

    /// Pops one completion from the used ring, reclaiming its descriptors.
    pub fn complete<M: QueueMemory>(
        &mut self,
        mem: &mut M,
    ) -> Result<Option<Completion>, QueueError> {
        let mut idx_b = [0u8; 2];
        mem.read(self.layout.used_idx(), &mut idx_b)?;
        let used_idx = u16::from_le_bytes(idx_b);
        if used_idx == self.last_used {
            return Ok(None);
        }
        let slot = self.layout.slot(self.last_used);
        let mut elem = [0u8; 8];
        mem.read(self.layout.used_ring(slot), &mut elem)?;
        let id = u32::from_le_bytes(elem[0..4].try_into().expect("len 4"));
        let written = u32::from_le_bytes(elem[4..8].try_into().expect("len 4"));
        if id >= self.layout.size as u32 {
            return Err(QueueError::Corrupt("used element id out of range"));
        }
        let head = id as u16;
        let ids = self
            .chains
            .remove(&head)
            .ok_or(QueueError::Corrupt("completion for unknown head"))?;
        self.free.extend(ids);
        self.last_used = self.last_used.wrapping_add(1);
        Ok(Some(Completion { head, written }))
    }
}

/// A request chain popped by the device side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescChain {
    /// Head descriptor index (echoed into the used ring on completion).
    pub head: u16,
    /// Device-readable segments `(va, len)` in chain order.
    pub readable: Vec<(u64, u32)>,
    /// Device-writable segments `(va, len)` in chain order.
    pub writable: Vec<(u64, u32)>,
}

impl DescChain {
    /// Total readable bytes.
    pub fn readable_len(&self) -> u64 {
        self.readable.iter().map(|&(_, l)| l as u64).sum()
    }

    /// Total writable bytes.
    pub fn writable_len(&self) -> u64 {
        self.writable.iter().map(|&(_, l)| l as u64).sum()
    }
}

/// The device (server) side of a virtqueue.
pub struct VirtqueueDevice {
    layout: QueueLayout,
    last_avail: u16,
    used_idx: u16,
}

impl VirtqueueDevice {
    /// Attaches to a queue the driver already initialized.
    pub fn attach(layout: QueueLayout) -> Self {
        VirtqueueDevice {
            layout,
            last_avail: 0,
            used_idx: 0,
        }
    }

    /// The queue layout.
    pub fn layout(&self) -> &QueueLayout {
        &self.layout
    }

    /// Requests available but not yet popped.
    pub fn pending<M: QueueMemory>(&self, mem: &mut M) -> Result<u16, QueueError> {
        let mut idx_b = [0u8; 2];
        mem.read(self.layout.avail_idx(), &mut idx_b)?;
        Ok(u16::from_le_bytes(idx_b).wrapping_sub(self.last_avail))
    }

    /// Pops the next request chain, if any.
    pub fn pop<M: QueueMemory>(&mut self, mem: &mut M) -> Result<Option<DescChain>, QueueError> {
        let mut chain = DescChain {
            head: 0,
            readable: Vec::new(),
            writable: Vec::new(),
        };
        Ok(if self.pop_into(mem, &mut chain)? {
            Some(chain)
        } else {
            None
        })
    }

    /// Pops the next request chain into `chain`, reusing its segment-vector
    /// capacity. Returns `Ok(false)` when no request is pending (the chain
    /// contents are then unspecified).
    ///
    /// This is the allocation-free variant of [`pop`](Self::pop): a device
    /// loop that pops thousands of chains can hold one `DescChain` and walk
    /// descriptors without a pair of fresh `Vec`s per request.
    pub fn pop_into<M: QueueMemory>(
        &mut self,
        mem: &mut M,
        chain: &mut DescChain,
    ) -> Result<bool, QueueError> {
        chain.readable.clear();
        chain.writable.clear();
        if self.pending(mem)? == 0 {
            return Ok(false);
        }
        let slot = self.layout.slot(self.last_avail);
        let mut head_b = [0u8; 2];
        mem.read(self.layout.avail_ring(slot), &mut head_b)?;
        let head = u16::from_le_bytes(head_b);
        if head >= self.layout.size {
            return Err(QueueError::Corrupt("avail head out of range"));
        }
        chain.head = head;
        let readable = &mut chain.readable;
        let writable = &mut chain.writable;
        let mut i = head;
        let mut hops = 0u32;
        loop {
            hops += 1;
            if hops > self.layout.size as u32 {
                return Err(QueueError::Corrupt("descriptor chain cycle"));
            }
            let d = read_desc(mem, &self.layout, i)?;
            if d.flags & DESC_F_INDIRECT != 0 {
                // An indirect descriptor must stand alone (§2.6.5.3.1) and
                // carries the whole chain in its buffer.
                if d.flags & DESC_F_NEXT != 0 {
                    return Err(QueueError::Corrupt("indirect descriptor with NEXT"));
                }
                if hops != 1 {
                    return Err(QueueError::Corrupt("indirect descriptor mid-chain"));
                }
                if d.len == 0 || d.len % 16 != 0 {
                    return Err(QueueError::Corrupt("indirect table length not 16-aligned"));
                }
                let entries = (d.len / 16) as u16;
                let mut j = 0u16;
                let mut ihops = 0u32;
                loop {
                    ihops += 1;
                    if ihops > entries as u32 {
                        return Err(QueueError::Corrupt("indirect table cycle"));
                    }
                    let mut b = [0u8; 16];
                    mem.read(d.addr + 16 * j as u64, &mut b)?;
                    let e = Desc {
                        addr: u64::from_le_bytes(b[0..8].try_into().expect("len 8")),
                        len: u32::from_le_bytes(b[8..12].try_into().expect("len 4")),
                        flags: u16::from_le_bytes(b[12..14].try_into().expect("len 2")),
                        next: u16::from_le_bytes(b[14..16].try_into().expect("len 2")),
                    };
                    if e.flags & DESC_F_INDIRECT != 0 {
                        return Err(QueueError::Corrupt("nested indirect table"));
                    }
                    if e.flags & DESC_F_WRITE != 0 {
                        writable.push((e.addr, e.len));
                    } else {
                        if !writable.is_empty() {
                            return Err(QueueError::Corrupt("readable after writable"));
                        }
                        readable.push((e.addr, e.len));
                    }
                    if e.flags & DESC_F_NEXT == 0 {
                        break;
                    }
                    if e.next >= entries {
                        return Err(QueueError::Corrupt("indirect next out of range"));
                    }
                    j = e.next;
                }
                self.last_avail = self.last_avail.wrapping_add(1);
                return Ok(true);
            }
            if d.flags & DESC_F_WRITE != 0 {
                writable.push((d.addr, d.len));
            } else {
                if !writable.is_empty() {
                    return Err(QueueError::Corrupt("readable after writable"));
                }
                readable.push((d.addr, d.len));
            }
            if d.flags & DESC_F_NEXT == 0 {
                break;
            }
            if d.next >= self.layout.size {
                return Err(QueueError::Corrupt("descriptor next out of range"));
            }
            i = d.next;
        }
        self.last_avail = self.last_avail.wrapping_add(1);
        Ok(true)
    }

    /// Reads and concatenates a chain's readable segments.
    pub fn read_request<M: QueueMemory>(
        &self,
        mem: &mut M,
        chain: &DescChain,
    ) -> Result<Vec<u8>, QueueError> {
        let mut out = Vec::new();
        self.read_request_into(mem, chain, &mut out)?;
        Ok(out)
    }

    /// Reads and concatenates a chain's readable segments into `out`,
    /// clearing it first and reusing its capacity. Each segment is read
    /// directly into its slice of `out` — no per-segment staging buffer.
    pub fn read_request_into<M: QueueMemory>(
        &self,
        mem: &mut M,
        chain: &DescChain,
        out: &mut Vec<u8>,
    ) -> Result<(), QueueError> {
        out.clear();
        out.resize(chain.readable_len() as usize, 0);
        let mut off = 0usize;
        for &(va, len) in &chain.readable {
            let end = off + len as usize;
            mem.read(va, &mut out[off..end])?;
            off = end;
        }
        Ok(())
    }

    /// Scatters `data` into a chain's writable segments.
    ///
    /// Returns the byte count to report in the used element.
    pub fn write_response<M: QueueMemory>(
        &self,
        mem: &mut M,
        chain: &DescChain,
        data: &[u8],
    ) -> Result<u32, QueueError> {
        if (data.len() as u64) > chain.writable_len() {
            return Err(QueueError::ResponseTooLarge {
                need: data.len() as u64,
                have: chain.writable_len(),
            });
        }
        let mut off = 0usize;
        for &(va, len) in &chain.writable {
            if off >= data.len() {
                break;
            }
            let chunk = (len as usize).min(data.len() - off);
            mem.write(va, &data[off..off + chunk])?;
            off += chunk;
        }
        Ok(data.len() as u32)
    }

    /// Publishes a completion for `head` with `written` response bytes.
    pub fn push_used<M: QueueMemory>(
        &mut self,
        mem: &mut M,
        head: u16,
        written: u32,
    ) -> Result<(), QueueError> {
        if head >= self.layout.size {
            return Err(QueueError::Corrupt("push_used head out of range"));
        }
        let slot = self.layout.slot(self.used_idx);
        let mut elem = [0u8; 8];
        elem[0..4].copy_from_slice(&(head as u32).to_le_bytes());
        elem[4..8].copy_from_slice(&written.to_le_bytes());
        mem.write(self.layout.used_ring(slot), &elem)?;
        self.used_idx = self.used_idx.wrapping_add(1);
        mem.write(self.layout.used_idx(), &self.used_idx.to_le_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::FlatMemory;
    use proptest::prelude::*;

    proptest! {
        /// Random interleavings of submits and serves: every submitted
        /// request is completed exactly once, descriptors never leak, and
        /// payloads survive the ring round trip.
        #[test]
        fn prop_ring_conserves_requests(
            schedule in proptest::collection::vec(any::<bool>(), 1..300),
            qsize_pow in 1u32..6,
        ) {
            let size = 1u16 << qsize_pow;
            let mut mem = FlatMemory::new(256 * 1024);
            let layout = QueueLayout::new(0x100, size);
            let mut drv = VirtqueueDriver::create(&mut mem, layout).unwrap();
            let mut dev = VirtqueueDevice::attach(layout);
            let mut seq = 0u32;
            let mut submitted = 0u64;
            let mut served = 0u64;
            let mut completed = 0u64;
            for do_submit in schedule {
                if do_submit {
                    let out_va = 0x8000 + (seq as u64 % 64) * 0x100;
                    let in_va = 0x1_0000 + (seq as u64 % 64) * 0x100;
                    mem.write(out_va, &seq.to_le_bytes()).unwrap();
                    match drv.submit_request(&mut mem, out_va, 4, in_va, 8) {
                        Ok(_) => {
                            submitted += 1;
                            seq += 1;
                        }
                        Err(QueueError::Full) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                } else if let Some(chain) = dev.pop(&mut mem).unwrap() {
                    let req = dev.read_request(&mut mem, &chain).unwrap();
                    prop_assert_eq!(req.len(), 4);
                    let mut resp = req.clone();
                    resp.extend_from_slice(&req);
                    let n = dev.write_response(&mut mem, &chain, &resp).unwrap();
                    dev.push_used(&mut mem, chain.head, n).unwrap();
                    served += 1;
                }
                while let Some(c) = drv.complete(&mut mem).unwrap() {
                    prop_assert_eq!(c.written, 8);
                    completed += 1;
                }
            }
            // Drain everything still in flight.
            while let Some(chain) = dev.pop(&mut mem).unwrap() {
                let req = dev.read_request(&mut mem, &chain).unwrap();
                let mut resp = req.clone();
                resp.extend_from_slice(&req);
                let n = dev.write_response(&mut mem, &chain, &resp).unwrap();
                dev.push_used(&mut mem, chain.head, n).unwrap();
                served += 1;
            }
            while let Some(_c) = drv.complete(&mut mem).unwrap() {
                completed += 1;
            }
            prop_assert_eq!(served, submitted);
            prop_assert_eq!(completed, submitted);
            prop_assert_eq!(drv.in_flight(), 0);
            prop_assert_eq!(drv.free_descriptors(), size as usize);
        }
    }
}

#[cfg(test)]
mod indirect_tests {
    use super::*;
    use crate::FlatMemory;

    fn setup(size: u16) -> (FlatMemory, VirtqueueDriver, VirtqueueDevice) {
        let mut mem = FlatMemory::new(128 * 1024);
        let layout = QueueLayout::new(0x100, size);
        let drv = VirtqueueDriver::create(&mut mem, layout).unwrap();
        let dev = VirtqueueDevice::attach(layout);
        (mem, drv, dev)
    }

    const TABLE: u64 = 0x3000;
    const BUF: u64 = 0x8000;

    #[test]
    fn indirect_round_trip_consumes_one_ring_slot() {
        let (mut mem, mut drv, mut dev) = setup(4);
        mem.write(BUF, b"hello").unwrap();
        // A 5-segment chain would not even fit a 4-entry ring directly.
        let segs = [
            ChainSeg {
                va: BUF,
                len: 2,
                device_writes: false,
            },
            ChainSeg {
                va: BUF + 2,
                len: 3,
                device_writes: false,
            },
            ChainSeg {
                va: BUF + 0x100,
                len: 2,
                device_writes: true,
            },
            ChainSeg {
                va: BUF + 0x200,
                len: 2,
                device_writes: true,
            },
            ChainSeg {
                va: BUF + 0x300,
                len: 4,
                device_writes: true,
            },
        ];
        let head = drv.submit_chain_indirect(&mut mem, &segs, TABLE).unwrap();
        assert_eq!(drv.free_descriptors(), 3, "only one ring descriptor used");

        let chain = dev.pop(&mut mem).unwrap().unwrap();
        assert_eq!(chain.head, head);
        assert_eq!(chain.readable.len(), 2);
        assert_eq!(chain.writable.len(), 3);
        let req = dev.read_request(&mut mem, &chain).unwrap();
        assert_eq!(req, b"hello");
        let n = dev.write_response(&mut mem, &chain, b"worldfly").unwrap();
        dev.push_used(&mut mem, head, n).unwrap();

        let c = drv.complete(&mut mem).unwrap().unwrap();
        assert_eq!(c.head, head);
        assert_eq!(drv.free_descriptors(), 4);
        let mut out = [0u8; 2];
        mem.read(BUF + 0x100, &mut out).unwrap();
        assert_eq!(&out, b"wo");
    }

    #[test]
    fn nested_indirect_rejected() {
        let (mut mem, mut drv, mut dev) = setup(4);
        drv.submit_chain_indirect(
            &mut mem,
            &[ChainSeg {
                va: BUF,
                len: 4,
                device_writes: false,
            }],
            TABLE,
        )
        .unwrap();
        // Corrupt the table entry to claim it is itself indirect.
        let mut b = [0u8; 16];
        mem.read(TABLE, &mut b).unwrap();
        b[12] |= DESC_F_INDIRECT as u8;
        mem.write(TABLE, &b).unwrap();
        assert!(matches!(dev.pop(&mut mem), Err(QueueError::Corrupt(_))));
    }

    #[test]
    fn indirect_table_cycle_rejected() {
        let (mut mem, mut drv, mut dev) = setup(4);
        drv.submit_chain_indirect(
            &mut mem,
            &[
                ChainSeg {
                    va: BUF,
                    len: 4,
                    device_writes: false,
                },
                ChainSeg {
                    va: BUF + 8,
                    len: 4,
                    device_writes: false,
                },
            ],
            TABLE,
        )
        .unwrap();
        // Point entry 1 back at entry 0.
        let mut b = [0u8; 16];
        mem.read(TABLE + 16, &mut b).unwrap();
        b[12] |= DESC_F_NEXT as u8;
        b[14] = 0;
        b[15] = 0;
        mem.write(TABLE + 16, &b).unwrap();
        assert!(matches!(dev.pop(&mut mem), Err(QueueError::Corrupt(_))));
    }

    #[test]
    fn misaligned_indirect_len_rejected() {
        let (mut mem, mut drv, mut dev) = setup(4);
        drv.submit_chain_indirect(
            &mut mem,
            &[ChainSeg {
                va: BUF,
                len: 4,
                device_writes: false,
            }],
            TABLE,
        )
        .unwrap();
        // Corrupt the ring descriptor's len to a non-multiple of 16.
        let layout = *drv.layout();
        let mut b = [0u8; 16];
        mem.read(layout.desc_addr(3), &mut b).unwrap(); // head popped from free list top (id 3? find it)
                                                        // Find the published head instead of guessing the id.
        let mut head_b = [0u8; 2];
        mem.read(layout.avail_ring(0), &mut head_b).unwrap();
        let head = u16::from_le_bytes(head_b);
        mem.read(layout.desc_addr(head), &mut b).unwrap();
        b[8..12].copy_from_slice(&7u32.to_le_bytes());
        mem.write(layout.desc_addr(head), &b).unwrap();
        assert!(matches!(dev.pop(&mut mem), Err(QueueError::Corrupt(_))));
    }

    #[test]
    fn indirect_interleaves_with_direct() {
        let (mut mem, mut drv, mut dev) = setup(8);
        mem.write(BUF, b"AB").unwrap();
        let direct = drv
            .submit_request(&mut mem, BUF, 2, BUF + 0x500, 4)
            .unwrap();
        let indirect = drv
            .submit_chain_indirect(
                &mut mem,
                &[
                    ChainSeg {
                        va: BUF,
                        len: 2,
                        device_writes: false,
                    },
                    ChainSeg {
                        va: BUF + 0x600,
                        len: 4,
                        device_writes: true,
                    },
                ],
                TABLE,
            )
            .unwrap();
        let c1 = dev.pop(&mut mem).unwrap().unwrap();
        let c2 = dev.pop(&mut mem).unwrap().unwrap();
        assert_eq!(c1.head, direct);
        assert_eq!(c2.head, indirect);
        for c in [c1, c2] {
            let n = dev.write_response(&mut mem, &c, b"ok").unwrap();
            dev.push_used(&mut mem, c.head, n).unwrap();
        }
        assert_eq!(drv.complete(&mut mem).unwrap().unwrap().head, direct);
        assert_eq!(drv.complete(&mut mem).unwrap().unwrap().head, indirect);
        assert_eq!(drv.free_descriptors(), 8);
    }
}

impl lastcpu_snap::Snapshot for VirtqueueDriver {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        self.layout.encode(w);
        w.put_len(self.free.len());
        for &d in &self.free {
            w.put_u16(d);
        }
        w.put_u16(self.avail_idx);
        w.put_u16(self.last_used);
        let mut heads: Vec<_> = self.chains.keys().copied().collect();
        heads.sort_unstable();
        w.put_len(heads.len());
        for h in heads {
            w.put_u16(h);
            let ids = &self.chains[&h];
            w.put_len(ids.len());
            for &d in ids {
                w.put_u16(d);
            }
        }
    }
}

impl lastcpu_snap::Restore for VirtqueueDriver {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.layout = QueueLayout::decode(r)?;
        let n = r.len()?;
        self.free = Vec::with_capacity(n);
        for _ in 0..n {
            self.free.push(r.u16()?);
        }
        self.avail_idx = r.u16()?;
        self.last_used = r.u16()?;
        let n = r.len()?;
        self.chains = HashMap::with_capacity(n);
        for _ in 0..n {
            let head = r.u16()?;
            let k = r.len()?;
            let mut ids = Vec::with_capacity(k);
            for _ in 0..k {
                ids.push(r.u16()?);
            }
            self.chains.insert(head, ids);
        }
        Ok(())
    }
}

impl lastcpu_snap::Snapshot for VirtqueueDevice {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        self.layout.encode(w);
        w.put_u16(self.last_avail);
        w.put_u16(self.used_idx);
    }
}

impl lastcpu_snap::Restore for VirtqueueDevice {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.layout = QueueLayout::decode(r)?;
        self.last_avail = r.u16()?;
        self.used_idx = r.u16()?;
        Ok(())
    }
}

impl VirtqueueDriver {
    /// A driver endpoint with empty state, intended as the target of a
    /// [`lastcpu_snap::Restore`] — it touches no queue memory (unlike
    /// [`VirtqueueDriver::create`]) and is unusable until restored.
    pub fn detached() -> Self {
        VirtqueueDriver {
            layout: QueueLayout::new(0, 1),
            free: Vec::new(),
            chains: HashMap::new(),
            avail_idx: 0,
            last_used: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatMemory;

    fn setup(size: u16) -> (FlatMemory, VirtqueueDriver, VirtqueueDevice) {
        let mut mem = FlatMemory::new(64 * 1024);
        let layout = QueueLayout::new(0x100, size);
        let drv = VirtqueueDriver::create(&mut mem, layout).unwrap();
        let dev = VirtqueueDevice::attach(layout);
        (mem, drv, dev)
    }

    /// Buffer area beyond the ring structures.
    const BUF0: u64 = 0x4000;
    const BUF1: u64 = 0x5000;

    #[test]
    fn echo_round_trip() {
        let (mut mem, mut drv, mut dev) = setup(8);
        mem.write(BUF0, b"ping").unwrap();
        let head = drv.submit_request(&mut mem, BUF0, 4, BUF1, 16).unwrap();
        assert_eq!(drv.in_flight(), 1);

        let chain = dev.pop(&mut mem).unwrap().expect("one pending");
        assert_eq!(chain.head, head);
        let req = dev.read_request(&mut mem, &chain).unwrap();
        assert_eq!(req, b"ping");
        let n = dev.write_response(&mut mem, &chain, b"pong!").unwrap();
        dev.push_used(&mut mem, chain.head, n).unwrap();

        let c = drv.complete(&mut mem).unwrap().expect("completion");
        assert_eq!(c.head, head);
        assert_eq!(c.written, 5);
        let mut resp = vec![0u8; 5];
        mem.read(BUF1, &mut resp).unwrap();
        assert_eq!(resp, b"pong!");
        assert_eq!(drv.in_flight(), 0);
        assert_eq!(drv.free_descriptors(), 8);
    }

    #[test]
    fn multiple_outstanding_complete_in_order_served() {
        let (mut mem, mut drv, mut dev) = setup(8);
        mem.write(BUF0, b"a").unwrap();
        mem.write(BUF0 + 100, b"b").unwrap();
        let h1 = drv.submit_request(&mut mem, BUF0, 1, BUF1, 8).unwrap();
        let h2 = drv
            .submit_request(&mut mem, BUF0 + 100, 1, BUF1 + 100, 8)
            .unwrap();
        // Device serves out of order: h2 first.
        let c1 = dev.pop(&mut mem).unwrap().unwrap();
        let c2 = dev.pop(&mut mem).unwrap().unwrap();
        assert_eq!((c1.head, c2.head), (h1, h2));
        dev.push_used(&mut mem, c2.head, 0).unwrap();
        dev.push_used(&mut mem, c1.head, 0).unwrap();
        let f1 = drv.complete(&mut mem).unwrap().unwrap();
        let f2 = drv.complete(&mut mem).unwrap().unwrap();
        assert_eq!(f1.head, h2);
        assert_eq!(f2.head, h1);
        assert!(drv.complete(&mut mem).unwrap().is_none());
    }

    #[test]
    fn queue_full_reports_backpressure() {
        let (mut mem, mut drv, _) = setup(2);
        drv.submit_request(&mut mem, BUF0, 1, BUF1, 1).unwrap();
        // 2 descriptors used; next 2-desc chain cannot fit.
        assert_eq!(
            drv.submit_request(&mut mem, BUF0, 1, BUF1, 1),
            Err(QueueError::Full)
        );
    }

    #[test]
    fn empty_queue_pops_nothing() {
        let (mut mem, mut drv, mut dev) = setup(4);
        assert!(dev.pop(&mut mem).unwrap().is_none());
        assert!(drv.complete(&mut mem).unwrap().is_none());
        assert_eq!(dev.pending(&mut mem).unwrap(), 0);
    }

    #[test]
    fn indices_wrap_around_u16() {
        let (mut mem, mut drv, mut dev) = setup(2);
        mem.write(BUF0, b"x").unwrap();
        // Drive > 65536 round trips through a size-2 queue so both the
        // free-running indices and the ring slots wrap many times.
        for i in 0..70_000u32 {
            let head = drv.submit_request(&mut mem, BUF0, 1, BUF1, 4).unwrap();
            let chain = dev
                .pop(&mut mem)
                .unwrap()
                .unwrap_or_else(|| panic!("iter {i}"));
            dev.push_used(&mut mem, chain.head, 1).unwrap();
            let c = drv.complete(&mut mem).unwrap().unwrap();
            assert_eq!(c.head, head);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn size_12_ring_rejected_at_construction() {
        // Regression guard for the wraparound bug class: a 12-entry ring
        // would make `slot(cursor)` and the wrapped cursor distance diverge
        // after the first u16 wrap (65536 % 12 != 0), so non-power-of-two
        // sizes must never get past layout construction.
        QueueLayout::new(0x100, 12);
    }

    #[test]
    fn indices_wrap_around_u16_size_16_with_outstanding() {
        // Drive > 65536 descriptors through a size-16 ring while keeping
        // several requests outstanding, so the free-running u16 cursors wrap
        // multiple times with the ring partially occupied. Before the
        // mask-based slot reduction this was the configuration where slot
        // math and free-count could disagree.
        let (mut mem, mut drv, mut dev) = setup(16);
        mem.write(BUF0, b"x").unwrap();
        let mut submitted = 0u64;
        let mut completed = 0u64;
        // Each request uses 2 descriptors -> up to 8 outstanding.
        while completed < 70_000 {
            while drv.free_descriptors() >= 2 && submitted - completed < 8 {
                drv.submit_request(&mut mem, BUF0, 1, BUF1, 4).unwrap();
                submitted += 1;
            }
            // Serve half of what is pending, completing out of lockstep
            // with submission so cursors drift apart.
            let pending = dev.pending(&mut mem).unwrap();
            let serve = (pending / 2).max(1);
            for _ in 0..serve {
                let chain = dev.pop(&mut mem).unwrap().expect("pending chain");
                dev.push_used(&mut mem, chain.head, 1).unwrap();
            }
            while let Some(c) = drv.complete(&mut mem).unwrap() {
                assert_eq!(c.written, 1);
                completed += 1;
            }
        }
        assert!(submitted > 65_536, "must cross the u16 wrap");
        assert_eq!(drv.in_flight() as u64, submitted - completed);
        // Drain the tail.
        while let Some(chain) = dev.pop(&mut mem).unwrap() {
            dev.push_used(&mut mem, chain.head, 1).unwrap();
        }
        while drv.complete(&mut mem).unwrap().is_some() {
            completed += 1;
        }
        assert_eq!(submitted, completed);
        assert_eq!(drv.free_descriptors(), 16);
        assert_eq!(drv.in_flight(), 0);
    }

    #[test]
    fn readable_after_writable_rejected_on_submit() {
        let (mut mem, mut drv, _) = setup(4);
        let err = drv.submit_chain(
            &mut mem,
            &[
                ChainSeg {
                    va: BUF0,
                    len: 4,
                    device_writes: true,
                },
                ChainSeg {
                    va: BUF1,
                    len: 4,
                    device_writes: false,
                },
            ],
        );
        assert_eq!(
            err,
            Err(QueueError::Corrupt("readable segment after writable"))
        );
    }

    #[test]
    fn empty_chain_rejected() {
        let (mut mem, mut drv, _) = setup(4);
        assert!(matches!(
            drv.submit_chain(&mut mem, &[]),
            Err(QueueError::Corrupt(_))
        ));
    }

    #[test]
    fn device_detects_descriptor_cycle() {
        let (mut mem, mut drv, mut dev) = setup(4);
        drv.submit_request(&mut mem, BUF0, 1, BUF1, 1).unwrap();
        // Corrupt the head descriptor to point at itself with NEXT set.
        let layout = *drv.layout();
        let mut b = [0u8; 16];
        mem.read(layout.desc_addr(0), &mut b).unwrap();
        b[12] |= DESC_F_NEXT as u8;
        b[14] = 0; // next = 0 (itself or within chain)
        b[15] = 0;
        mem.write(layout.desc_addr(0), &b).unwrap();
        assert!(matches!(dev.pop(&mut mem), Err(QueueError::Corrupt(_))));
    }

    #[test]
    fn device_detects_out_of_range_head() {
        let (mut mem, mut drv, mut dev) = setup(4);
        drv.submit_request(&mut mem, BUF0, 1, BUF1, 1).unwrap();
        let layout = *drv.layout();
        // Overwrite the published slot with a bogus head.
        mem.write(layout.avail_ring(0), &999u16.to_le_bytes())
            .unwrap();
        assert_eq!(
            dev.pop(&mut mem),
            Err(QueueError::Corrupt("avail head out of range"))
        );
    }

    #[test]
    fn response_too_large_detected() {
        let (mut mem, mut drv, mut dev) = setup(4);
        drv.submit_request(&mut mem, BUF0, 1, BUF1, 4).unwrap();
        let chain = dev.pop(&mut mem).unwrap().unwrap();
        assert_eq!(
            dev.write_response(&mut mem, &chain, &[0u8; 100]),
            Err(QueueError::ResponseTooLarge { need: 100, have: 4 })
        );
    }

    #[test]
    fn response_scatters_across_segments() {
        let (mut mem, mut drv, mut dev) = setup(8);
        let head = drv
            .submit_chain(
                &mut mem,
                &[
                    ChainSeg {
                        va: BUF0,
                        len: 1,
                        device_writes: false,
                    },
                    ChainSeg {
                        va: BUF1,
                        len: 3,
                        device_writes: true,
                    },
                    ChainSeg {
                        va: BUF1 + 0x100,
                        len: 5,
                        device_writes: true,
                    },
                ],
            )
            .unwrap();
        let chain = dev.pop(&mut mem).unwrap().unwrap();
        assert_eq!(chain.writable.len(), 2);
        let n = dev.write_response(&mut mem, &chain, b"abcdefgh").unwrap();
        dev.push_used(&mut mem, head, n).unwrap();
        let mut first = [0u8; 3];
        let mut second = [0u8; 5];
        mem.read(BUF1, &mut first).unwrap();
        mem.read(BUF1 + 0x100, &mut second).unwrap();
        assert_eq!(&first, b"abc");
        assert_eq!(&second, b"defgh");
    }

    #[test]
    fn completion_with_unknown_head_is_corrupt() {
        let (mut mem, mut drv, _) = setup(4);
        // Forge a used element the driver never submitted.
        let layout = *drv.layout();
        let mut elem = [0u8; 8];
        elem[0..4].copy_from_slice(&2u32.to_le_bytes());
        mem.write(layout.used_ring(0), &elem).unwrap();
        mem.write(layout.used_idx(), &1u16.to_le_bytes()).unwrap();
        assert!(matches!(
            drv.complete(&mut mem),
            Err(QueueError::Corrupt(_))
        ));
    }

    #[test]
    fn memory_fault_propagates() {
        // Queue structures near the end of a tiny memory: buffer access faults.
        let mut mem = FlatMemory::new(0x1000);
        let layout = QueueLayout::new(0x100, 2);
        let mut drv = VirtqueueDriver::create(&mut mem, layout).unwrap();
        let mut dev = VirtqueueDevice::attach(layout);
        drv.submit_request(&mut mem, 0xFF00, 4, 0xFF10, 4).unwrap();
        let chain = dev.pop(&mut mem).unwrap().unwrap();
        assert!(matches!(
            dev.read_request(&mut mem, &chain),
            Err(QueueError::Fault(_))
        ));
    }
}
