//! Deterministic attack schedules.
//!
//! An [`AttackPlan`] is to the adversary what `lastcpu_sim::FaultPlan` is to
//! the environment: a sorted list of `(time, attack-kind)` entries derived
//! from a seed, turned into ordinary timer events by the malicious device.
//! Because the plan is plain data and every in-attack random choice comes
//! from a [`DetRng`] stream split off the plan seed, an adversarial run
//! replays bit-identically — which is what lets the E11 evaluation claim
//! "blocked" as a property of the *system*, not of one lucky interleaving.

use lastcpu_sim::{DetRng, SimDuration, SimTime};

/// One adversarial strategy the malicious device can execute.
///
/// Each variant maps onto one row of the E11 attack matrix and one claim in
/// the threat model (`DESIGN.md §11`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// DMA reads/writes far outside any VA window ever mapped for the
    /// attacker, under the victim application's PASID and under random
    /// PASIDs. Tests the paper's claim that the per-device IOMMU is "the
    /// cornerstone of data isolation": the attacker's own IOMMU has no
    /// tables for these PASIDs, so every access must fault.
    WildDma,
    /// DMA probes of the victim KVS's *generation* windows
    /// (`va_base + g·stride`), including generations that were valid
    /// earlier but have since been rotated and unmapped. Tests revocation:
    /// a stale grant must be dead, not merely unused.
    StaleGeneration,
    /// Confused-deputy requests over the control plane: direct
    /// `MapInstruction`s from a non-controller, privilege escalation via a
    /// vacant `RegisterController` class, and `Share` requests for regions
    /// the attacker does not own. Tests the claim that *only* the
    /// registered memory controller can cause IOMMU programming.
    ConfusedDeputy,
    /// Spoofed/replayed SSDP-style `Announce`s that shadow a live service
    /// name, so discovery clients would resolve to the attacker. The
    /// baseline protocol is silent about this; blocking it requires the
    /// opt-in `SecurityPolicy::deny_shadow_announce` hardening.
    SsdpSpoof,
    /// A burst of bus-directed control messages, testing control-plane
    /// availability. Blocking requires the opt-in
    /// `SecurityPolicy::flood_limit` hardening; shedding is observed
    /// through `sec.flood_dropped`, not through replies.
    ControlFlood,
}

impl AttackKind {
    /// Every attack kind, in matrix order.
    pub const ALL: [AttackKind; 5] = [
        AttackKind::WildDma,
        AttackKind::StaleGeneration,
        AttackKind::ConfusedDeputy,
        AttackKind::SsdpSpoof,
        AttackKind::ControlFlood,
    ];

    /// Short stable tag for traces, tables and `BENCH_e11.json` rows.
    pub fn tag(&self) -> &'static str {
        match self {
            AttackKind::WildDma => "wild-dma",
            AttackKind::StaleGeneration => "stale-generation",
            AttackKind::ConfusedDeputy => "confused-deputy",
            AttackKind::SsdpSpoof => "ssdp-spoof",
            AttackKind::ControlFlood => "control-flood",
        }
    }

    /// Dense index into per-kind arrays (`0..AttackKind::ALL.len()`).
    pub fn index(&self) -> usize {
        match self {
            AttackKind::WildDma => 0,
            AttackKind::StaleGeneration => 1,
            AttackKind::ConfusedDeputy => 2,
            AttackKind::SsdpSpoof => 3,
            AttackKind::ControlFlood => 4,
        }
    }
}

/// One scheduled attack: at `at`, run `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackEvent {
    /// When the attack fires (absolute virtual time).
    pub at: SimTime,
    /// The strategy to execute.
    pub kind: AttackKind,
}

/// A deterministic attack schedule.
///
/// Built explicitly ([`inject`](AttackPlan::inject)), as a full matrix
/// ([`matrix`](AttackPlan::matrix)), or randomly from a seed
/// ([`generate`](AttackPlan::generate)). In every case the plan is plain
/// data: two runs fed the same plan produce identical attack traffic.
///
/// # Examples
///
/// ```
/// use lastcpu_sec::{AttackKind, AttackPlan};
/// use lastcpu_sim::{SimDuration, SimTime};
///
/// // Random generation is a pure function of the seed…
/// let a = AttackPlan::generate(7, SimTime::ZERO, SimDuration::from_millis(10), 20);
/// let b = AttackPlan::generate(7, SimTime::ZERO, SimDuration::from_millis(10), 20);
/// assert_eq!(a.events(), b.events());
/// assert_eq!(a.len(), 20);
///
/// // …and the matrix helper schedules every attack class exactly once.
/// let m = AttackPlan::matrix(7, SimTime::from_nanos(1_000), SimDuration::from_micros(500));
/// assert_eq!(m.len(), AttackKind::ALL.len());
/// assert_eq!(m.events()[0].kind, AttackKind::WildDma);
///
/// // Per-event RNG streams replay, and differ per event index.
/// assert_eq!(m.stream(0).next_u64(), m.stream(0).next_u64());
/// assert_ne!(m.stream(0).next_u64(), m.stream(1).next_u64());
/// ```
#[derive(Debug, Clone, Default)]
pub struct AttackPlan {
    seed: u64,
    events: Vec<AttackEvent>,
}

impl AttackPlan {
    /// An empty plan remembering `seed` (used to derive per-attack RNG
    /// streams, e.g. which wild address to probe).
    pub fn new(seed: u64) -> Self {
        AttackPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds one scheduled attack.
    pub fn inject(&mut self, at: SimTime, kind: AttackKind) -> &mut Self {
        self.events.push(AttackEvent { at, kind });
        self
    }

    /// The scheduled attacks, sorted by time (stable for equal times, so
    /// insertion order breaks ties deterministically).
    pub fn events(&self) -> Vec<AttackEvent> {
        let mut v = self.events.clone();
        v.sort_by_key(|e| e.at);
        v
    }

    /// Number of scheduled attacks.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The full attack matrix: every [`AttackKind`] once, in matrix order,
    /// starting at `start` and spaced `spacing` apart. The E11 bench uses
    /// this so each run exercises every class at a known instant.
    pub fn matrix(seed: u64, start: SimTime, spacing: SimDuration) -> Self {
        let mut plan = AttackPlan::new(seed);
        for (i, kind) in AttackKind::ALL.into_iter().enumerate() {
            plan.inject(start + spacing.saturating_mul(i as u64), kind);
        }
        plan
    }

    /// Generates a random plan of `count` attacks spread over
    /// `[start + horizon/8, start + horizon)`.
    ///
    /// Purely a function of its arguments: the same seed always yields the
    /// same plan. The leading eighth of the horizon is kept attack-free so
    /// the system finishes initialization (and the KVS maps its first
    /// generation window) before the adversary stirs — mirroring
    /// `FaultPlan::generate`.
    pub fn generate(seed: u64, start: SimTime, horizon: SimDuration, count: u32) -> Self {
        let mut rng = DetRng::new(seed ^ 0x5EC5_5EC5_5EC5_5EC5);
        let mut plan = AttackPlan::new(seed);
        let quiet = horizon.as_nanos() / 8;
        let window = horizon.as_nanos().saturating_sub(quiet).max(1);
        for _ in 0..count {
            let at = start + SimDuration::from_nanos(quiet + rng.below(window));
            let kind = AttackKind::ALL[rng.below(AttackKind::ALL.len() as u64) as usize];
            plan.inject(at, kind);
        }
        plan
    }

    /// A per-attack RNG stream derived from the plan seed and the attack's
    /// index, for deterministic choices *while executing* an attack (which
    /// wild address to probe, which PASID to try).
    pub fn stream(&self, attack_index: u64) -> DetRng {
        DetRng::new(self.seed).split(0x5EC0_0000 ^ attack_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = AttackPlan::generate(1, SimTime::ZERO, SimDuration::from_secs(1), 64);
        let b = AttackPlan::generate(1, SimTime::ZERO, SimDuration::from_secs(1), 64);
        assert_eq!(a.events(), b.events());
        let c = AttackPlan::generate(2, SimTime::ZERO, SimDuration::from_secs(1), 64);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn generation_respects_quiet_period_and_horizon() {
        let start = SimTime::from_nanos(300);
        let horizon = SimDuration::from_millis(8);
        let p = AttackPlan::generate(9, start, horizon, 48);
        assert_eq!(p.len(), 48);
        for e in p.events() {
            assert!(e.at >= start + SimDuration::from_nanos(horizon.as_nanos() / 8));
            assert!(e.at < start + horizon);
        }
    }

    #[test]
    fn matrix_covers_every_kind_once_in_order() {
        let p = AttackPlan::matrix(0, SimTime::from_nanos(100), SimDuration::from_micros(10));
        let ev = p.events();
        assert_eq!(ev.len(), AttackKind::ALL.len());
        for (i, e) in ev.iter().enumerate() {
            assert_eq!(e.kind, AttackKind::ALL[i]);
            assert_eq!(
                e.at,
                SimTime::from_nanos(100) + SimDuration::from_micros(10 * i as u64)
            );
        }
    }

    #[test]
    fn events_sorted_with_stable_ties() {
        let mut p = AttackPlan::new(0);
        let t = SimTime::from_nanos(10);
        p.inject(t, AttackKind::SsdpSpoof);
        p.inject(SimTime::from_nanos(5), AttackKind::WildDma);
        p.inject(t, AttackKind::ControlFlood);
        let ev = p.events();
        assert_eq!(ev[0].kind, AttackKind::WildDma);
        assert_eq!(ev[1].kind, AttackKind::SsdpSpoof, "ties keep insert order");
        assert_eq!(ev[2].kind, AttackKind::ControlFlood);
    }

    #[test]
    fn streams_replay_and_differ_per_index() {
        let p = AttackPlan::new(77);
        assert_eq!(p.stream(3).next_u64(), p.stream(3).next_u64());
        assert_ne!(p.stream(3).next_u64(), p.stream(4).next_u64());
    }

    #[test]
    fn tags_and_indices_are_stable_and_dense() {
        let mut seen = [false; AttackKind::ALL.len()];
        for k in AttackKind::ALL {
            assert!(!k.tag().is_empty());
            assert!(!seen[k.index()], "indices must be unique");
            seen[k.index()] = true;
        }
        assert_eq!(AttackKind::WildDma.tag(), "wild-dma");
        assert_eq!(AttackKind::ConfusedDeputy.tag(), "confused-deputy");
    }
}
