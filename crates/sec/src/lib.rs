//! Adversarial-device subsystem for the E11 security evaluation.
//!
//! "The Last CPU" makes a strong isolation claim for a machine with no
//! privileged software: the per-device IOMMU is "the cornerstone of data
//! isolation in shared memory", and the management bus "updates the page
//! tables of a device only when it is instructed to do so by the controller
//! of that particular resource" (§2.2). This crate is the attacker that
//! claim has to survive.
//!
//! Two pieces:
//!
//! - [`plan`]: [`AttackPlan`] / [`AttackKind`] — deterministic, seeded
//!   attack schedules, mirroring the fault-injection planner so adversarial
//!   runs replay bit-identically.
//! - [`malicious`]: [`MaliciousDevice`] — a compromised device that executes
//!   a plan using only the capabilities any device has (its own IOMMU for
//!   DMA, `send_bus` for control traffic), tallying per-kind
//!   [`AttackStats`].
//!
//! The five attack classes ([`AttackKind::ALL`]) map one-to-one onto the
//! threat model in `DESIGN.md §11` and the rows of `BENCH_e11.json`: wild
//! DMA, stale-generation DMA, confused-deputy control requests, SSDP
//! shadowing, and control-plane floods. Defender-side evidence lives in
//! `lastcpu_iommu::DmaAudit` and `lastcpu_bus::BusAudit`; this crate only
//! generates the traffic and keeps the attempt ledger.
//!
//! # Examples
//!
//! ```
//! use lastcpu_sec::{AttackKind, AttackPlan};
//! use lastcpu_sim::{SimDuration, SimTime};
//!
//! // A seeded random schedule covering ~10 ms of virtual time.
//! let plan = AttackPlan::generate(0xE11, SimTime::ZERO, SimDuration::from_millis(10), 12);
//! assert_eq!(plan.len(), 12);
//! // Attacks never fire during the init-quiet leading eighth.
//! assert!(plan.events()[0].at >= SimTime::from_nanos(10_000_000 / 8));
//! // Tags are stable — they key the BENCH_e11.json rows.
//! assert_eq!(AttackKind::ALL[0].tag(), "wild-dma");
//! ```

#![warn(missing_docs)]

pub mod malicious;
pub mod plan;

pub use malicious::{AttackStats, AttackTargets, MaliciousDevice};
pub use plan::{AttackEvent, AttackKind, AttackPlan};
