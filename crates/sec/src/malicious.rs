//! The adversarial device.
//!
//! [`MaliciousDevice`] is an ordinary [`Device`]: it attaches to the bus,
//! says `Hello`, heartbeats — and then executes its [`AttackPlan`] with
//! exactly the capabilities any compromised device firmware would have. It
//! gets no side doors: DMA goes through its own IOMMU, control messages go
//! through `DeviceCtx::send_bus` (which stamps the true `src`, so source
//! spoofing is impossible by construction — a real management bus knows
//! which port a message arrived on).
//!
//! Every attack's outcome is tallied in per-kind [`AttackStats`]:
//!
//! - `denied_local` — the attacker's own IOMMU faulted the access (wild and
//!   stale DMA die here);
//! - `denied_remote` — a bus/memctl reply refused the request
//!   (`BusAck{Denied}` and friends);
//! - `acked_ok` — the operation was *accepted*. For every attack kind this
//!   is evidence of a leak; the E11 bench cross-checks it against the
//!   authoritative audit records on the bus and IOMMU sides.
//!
//! The device-side numbers are a claim, not proof: a clever attacker could
//! lie about its own stats. The harness therefore treats them only as the
//! *attempt* ledger and derives verdicts from the defender-side audit
//! ([`lastcpu_bus::BusAudit`], `lastcpu_iommu::DmaAudit`), the read-only
//! `Iommu::probe` oracle, and victim-state comparison against a no-attacker
//! control run.

use std::collections::HashMap;

use lastcpu_bus::{
    DeviceId, Dst, Envelope, Payload, RequestId, ResourceKind, ServiceDesc, ServiceId, Status,
};
use lastcpu_devices::device::{Device, DeviceCtx};
use lastcpu_mem::{Pasid, VirtAddr};
use lastcpu_sim::SimDuration;

use crate::plan::{AttackEvent, AttackKind, AttackPlan};

/// Timer-token namespace reserved by the device (top bit set); tokens below
/// it index plan events.
const TOKEN_BASE: u64 = 1 << 63;
/// Periodic liveness heartbeat (the attacker must stay registered).
const TOKEN_HEARTBEAT: u64 = TOKEN_BASE;
/// Heartbeat period — comfortably inside the bus's 10 ms default timeout.
const HEARTBEAT_PERIOD: SimDuration = SimDuration::from_millis(2);

/// What the attacker aims at — the identifiers a compromised device could
/// plausibly learn from watching the fabric (device ids and PASIDs are not
/// secrets; the design's security must not depend on hiding them).
#[derive(Debug, Clone)]
pub struct AttackTargets {
    /// The victim device whose data the attacker wants (e.g. the smart SSD
    /// serving the KVS).
    pub victim: DeviceId,
    /// The memory controller (target of forged `Share` requests).
    pub memctl: DeviceId,
    /// PASID of the victim application whose windows are probed.
    pub app_pasid: u32,
    /// Base VA of the victim's generation-0 shared window.
    pub va_base: u64,
    /// Per-generation VA stride of the victim's window rotation.
    pub va_stride: u64,
    /// Live service names to shadow with spoofed `Announce`s.
    pub shadow_services: Vec<String>,
    /// Bus-directed messages per `ControlFlood` event.
    pub flood_burst: u32,
}

impl AttackTargets {
    /// Targets aimed at `victim`/`memctl` with the KVS build's default
    /// window geometry, no preset shadow names (the device also shadows
    /// whatever discovery reveals) and a 64-message flood burst.
    pub fn new(victim: DeviceId, memctl: DeviceId, app_pasid: u32) -> Self {
        AttackTargets {
            victim,
            memctl,
            app_pasid,
            va_base: 0x2000_0000,
            va_stride: 0x0100_0000,
            shadow_services: Vec::new(),
            flood_burst: 64,
        }
    }
}

/// Outcome tally for one attack kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttackStats {
    /// Privilege-violating operations attempted.
    pub attempts: u64,
    /// Attempts refused by the attacker's own IOMMU (DMA faults).
    pub denied_local: u64,
    /// Attempts refused by a remote party (bus or service reply).
    pub denied_remote: u64,
    /// Attempts that were *accepted* — each one is leak evidence.
    pub acked_ok: u64,
}

impl AttackStats {
    /// Attempts provably refused (local faults + remote denials).
    pub fn blocked(&self) -> u64 {
        self.denied_local + self.denied_remote
    }

    /// Attempts neither blocked nor acked yet (in flight, or fire-and-forget
    /// traffic like flood messages whose shedding is observed bus-side).
    pub fn unresolved(&self) -> u64 {
        self.attempts - self.blocked() - self.acked_ok
    }
}

/// Why a request id is being tracked.
#[derive(Debug, Clone, Copy)]
enum Pending {
    /// A privilege-violating request; the reply resolves the tally.
    Attack(AttackKind),
    /// Stage 1 of the escalation chain: `RegisterController` on a vacant
    /// class. An `Ok` reply triggers stage 2 (the deputized
    /// `MapInstruction`); registration itself is legal and not tallied.
    Escalate,
}

/// A compromised device executing a deterministic [`AttackPlan`].
///
/// # Examples
///
/// ```
/// use lastcpu_bus::DeviceId;
/// use lastcpu_sec::{AttackKind, AttackPlan, AttackTargets, MaliciousDevice};
/// use lastcpu_sim::{SimDuration, SimTime};
///
/// let plan = AttackPlan::matrix(42, SimTime::from_nanos(1_000), SimDuration::from_micros(50));
/// let dev = MaliciousDevice::new(
///     "evil0",
///     plan,
///     AttackTargets::new(DeviceId(2), DeviceId(1), 3),
/// );
/// // Nothing has run yet: every tally starts at zero.
/// for kind in AttackKind::ALL {
///     assert_eq!(dev.stats(kind).attempts, 0);
/// }
/// assert_eq!(dev.total().attempts, 0);
/// ```
pub struct MaliciousDevice {
    name: String,
    plan: AttackPlan,
    targets: AttackTargets,
    /// Sorted schedule; index = timer token.
    events: Vec<AttackEvent>,
    stats: [AttackStats; AttackKind::ALL.len()],
    pending: HashMap<RequestId, Pending>,
    /// Services learned from discovery (replayed/shadowed by `SsdpSpoof`).
    observed: Vec<(DeviceId, ServiceDesc)>,
    next_service_id: u16,
    /// Once an `SsdpSpoof` event fired, the device also answers every
    /// `Query` broadcast with spoofed `QueryHit`s (owners answer discovery
    /// directly, so a forged hit can capture a client without ever touching
    /// the announce directory).
    spoof_armed: bool,
}

impl MaliciousDevice {
    /// Creates the device. `name` is its bus name (e.g. `"evil0"`).
    pub fn new(name: impl Into<String>, plan: AttackPlan, targets: AttackTargets) -> Self {
        let events = plan.events();
        MaliciousDevice {
            name: name.into(),
            plan,
            targets,
            events,
            stats: Default::default(),
            pending: HashMap::new(),
            observed: Vec::new(),
            next_service_id: 0x6660,
            spoof_armed: false,
        }
    }

    /// Outcome tally for one attack kind.
    pub fn stats(&self, kind: AttackKind) -> AttackStats {
        self.stats[kind.index()]
    }

    /// Per-kind tallies in [`AttackKind::ALL`] order.
    pub fn all_stats(&self) -> [(AttackKind, AttackStats); AttackKind::ALL.len()] {
        let mut out = [(AttackKind::WildDma, AttackStats::default()); AttackKind::ALL.len()];
        for (i, kind) in AttackKind::ALL.into_iter().enumerate() {
            out[i] = (kind, self.stats[i]);
        }
        out
    }

    /// Sum over all attack kinds.
    pub fn total(&self) -> AttackStats {
        let mut t = AttackStats::default();
        for s in &self.stats {
            t.attempts += s.attempts;
            t.denied_local += s.denied_local;
            t.denied_remote += s.denied_remote;
            t.acked_ok += s.acked_ok;
        }
        t
    }

    /// Services the attacker has learned about via discovery.
    pub fn observed_services(&self) -> impl Iterator<Item = &ServiceDesc> {
        self.observed.iter().map(|(_, s)| s)
    }

    /// The schedule this device executes.
    pub fn plan(&self) -> &AttackPlan {
        &self.plan
    }

    fn tally(&mut self, kind: AttackKind) -> &mut AttackStats {
        &mut self.stats[kind.index()]
    }

    fn fresh_service_id(&mut self) -> ServiceId {
        let id = ServiceId(self.next_service_id);
        self.next_service_id = self.next_service_id.wrapping_add(1);
        id
    }

    // --- attack executors ------------------------------------------------

    /// Wild DMA: reads and writes at addresses never mapped for us, under
    /// the victim app's PASID and under random PASIDs. Every probe goes
    /// through our *own* IOMMU — the only data-plane path a device has — so
    /// `Err` here is the IOMMU doing its job.
    fn attack_wild_dma(&mut self, ctx: &mut DeviceCtx<'_>, idx: u64) {
        let mut rng = self.plan.stream(idx);
        let app = Pasid(self.targets.app_pasid);
        let wild = |r: &mut lastcpu_sim::DetRng| {
            VirtAddr::new(0xdead_0000_u64 + (r.below(0x1_0000) & !0xfff))
        };
        let mut buf = [0u8; 64];
        // 1. Read under the victim app's PASID at a wild address.
        let probes: [(Pasid, VirtAddr, bool); 4] = [
            (app, wild(&mut rng), false),
            // 2. Write under the victim app's PASID at a wild address.
            (app, wild(&mut rng), true),
            // 3. Read under a random PASID.
            (Pasid(1 + rng.below(63) as u32), wild(&mut rng), false),
            // 4. Read the victim's *real* shared window VA — real data lives
            //    there, but only behind the victim's IOMMU, not ours.
            (app, VirtAddr::new(self.targets.va_base), false),
        ];
        for (pasid, va, write) in probes {
            self.tally(AttackKind::WildDma).attempts += 1;
            let res = if write {
                ctx.dma_write(pasid, va, &buf[..16])
            } else {
                ctx.dma_read(pasid, va, &mut buf)
            };
            match res {
                Ok(()) => self.tally(AttackKind::WildDma).acked_ok += 1,
                Err(_) => self.tally(AttackKind::WildDma).denied_local += 1,
            }
        }
    }

    /// Stale-generation DMA: probe every generation window the victim KVS
    /// has used (or will use). A generation that was rotated away must be
    /// as dead as one that never existed.
    fn attack_stale_generation(&mut self, ctx: &mut DeviceCtx<'_>, _idx: u64) {
        let app = Pasid(self.targets.app_pasid);
        let mut buf = [0u8; 64];
        for generation in 0..4u64 {
            let va = VirtAddr::new(self.targets.va_base + generation * self.targets.va_stride);
            self.tally(AttackKind::StaleGeneration).attempts += 1;
            match ctx.dma_read(app, va, &mut buf) {
                Ok(()) => self.tally(AttackKind::StaleGeneration).acked_ok += 1,
                Err(_) => self.tally(AttackKind::StaleGeneration).denied_local += 1,
            }
        }
    }

    /// Confused-deputy control-plane requests, three escalating flavours.
    fn attack_confused_deputy(&mut self, ctx: &mut DeviceCtx<'_>, idx: u64) {
        let mut rng = self.plan.stream(idx);
        // (a) Direct: instruct the bus to map the victim's DRAM into *our*
        // address space. We are not the memory controller, so the bus must
        // refuse (audit reason: NotController).
        let req = ctx.send_bus(
            Dst::Bus,
            Payload::MapInstruction {
                resource: ResourceKind::Memory,
                op: lastcpu_bus::MapOp::Map,
                device: ctx.dev,
                pasid: self.targets.app_pasid,
                va: 0x7000_0000,
                pa: 0x1000 + (rng.below(0x100) << 12),
                pages: 4,
                perms: 3,
            },
        );
        self.pending
            .insert(req, Pending::Attack(AttackKind::ConfusedDeputy));
        self.tally(AttackKind::ConfusedDeputy).attempts += 1;

        // (b) Escalation: claim a *vacant* resource class (legal — first
        // claim wins) and, once owned, use it as authority for a
        // MapInstruction. Stage 2 fires from `on_message` when the Ok
        // arrives; the bus must refuse the non-Memory instruction (audit
        // reason: ResourceNotMemory — the E11 leak this PR fixed).
        let req = ctx.send_bus(
            Dst::Bus,
            Payload::RegisterController {
                resource: ResourceKind::Compute,
            },
        );
        self.pending.insert(req, Pending::Escalate);

        // (c) Forged Share: ask the memory controller to extend regions we
        // do not own into our address space. Region handles are small
        // integers, so guessing two is realistic.
        for guess in [1u64 + rng.below(4), 8 + rng.below(8)] {
            let req = ctx.send_bus(
                Dst::Device(self.targets.memctl),
                Payload::Share {
                    region: guess,
                    target: ctx.dev,
                    pasid: self.targets.app_pasid,
                    va: 0x7100_0000 + (guess << 16),
                    perms: 3,
                },
            );
            self.pending
                .insert(req, Pending::Attack(AttackKind::ConfusedDeputy));
            self.tally(AttackKind::ConfusedDeputy).attempts += 1;
        }
    }

    /// SSDP shadowing: announce service descriptors whose *names* collide
    /// with live services — both configured names and whatever discovery
    /// revealed (the replay flavour re-announces an observed descriptor
    /// verbatim under our own src).
    fn attack_ssdp_spoof(&mut self, ctx: &mut DeviceCtx<'_>, _idx: u64) {
        self.spoof_armed = true;
        let mut names: Vec<String> = self.targets.shadow_services.clone();
        for (_, s) in &self.observed {
            if !names.contains(&s.name) {
                names.push(s.name.clone());
            }
        }
        if names.is_empty() {
            // Nothing learned yet: re-query and retry opportunistically on
            // the next SsdpSpoof event (discovery is open to everyone).
            ctx.send_bus(
                Dst::Bus,
                Payload::Query {
                    pattern: "*".into(),
                },
            );
            return;
        }
        for name in names {
            let service = ServiceDesc {
                id: self.fresh_service_id(),
                name,
                resource: ResourceKind::Storage,
            };
            let req = ctx.send_bus(Dst::Bus, Payload::Announce { service });
            self.pending
                .insert(req, Pending::Attack(AttackKind::SsdpSpoof));
            self.tally(AttackKind::SsdpSpoof).attempts += 1;
        }
        // Replay flavour: observed descriptors verbatim (same service id).
        let replays: Vec<ServiceDesc> = self.observed.iter().map(|(_, s)| s.clone()).collect();
        for service in replays {
            let req = ctx.send_bus(Dst::Bus, Payload::Announce { service });
            self.pending
                .insert(req, Pending::Attack(AttackKind::SsdpSpoof));
            self.tally(AttackKind::SsdpSpoof).attempts += 1;
        }
    }

    /// Control flood: a burst of bus-directed messages from one handler.
    /// Heartbeats draw no reply, so the device-side tally records attempts
    /// only; shedding is observed bus-side (`sec.flood_dropped`) — real
    /// fabrics shed load silently rather than amplifying it with NACKs.
    fn attack_control_flood(&mut self, ctx: &mut DeviceCtx<'_>, _idx: u64) {
        for _ in 0..self.targets.flood_burst {
            ctx.send_bus(Dst::Bus, Payload::Heartbeat);
            self.tally(AttackKind::ControlFlood).attempts += 1;
        }
    }
}

impl Device for MaliciousDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "malicious"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        // A compromised device looks exactly like a healthy one at first:
        // it registers, heartbeats, and browses the service directory.
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: self.name.clone(),
                kind: self.kind().to_string(),
            },
        );
        ctx.send_bus(
            Dst::Bus,
            Payload::Query {
                pattern: "*".into(),
            },
        );
        ctx.set_timer(HEARTBEAT_PERIOD, TOKEN_HEARTBEAT);
        for (idx, ev) in self.events.iter().enumerate() {
            ctx.set_timer(ev.at.since(ctx.now), idx as u64);
        }
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        match env.payload {
            // Once armed, answer other devices' discovery queries with
            // spoofed hits: one claiming *we* offer a shadowed service, and
            // one with forged provenance naming the victim as offerer.
            // Fire-and-forget — hits draw no reply, so the tally stays in
            // `attempts`; blocking is proven by the bus-side audit.
            Payload::Query { .. } if self.spoof_armed && env.src != ctx.dev => {
                let name = self
                    .targets
                    .shadow_services
                    .first()
                    .cloned()
                    .or_else(|| self.observed.first().map(|(_, s)| s.name.clone()));
                if let Some(name) = name {
                    let id = self.fresh_service_id();
                    for claimed in [ctx.dev, self.targets.victim] {
                        ctx.send_bus(
                            Dst::Device(env.src),
                            Payload::QueryHit {
                                device: claimed,
                                service: ServiceDesc {
                                    id,
                                    name: name.clone(),
                                    resource: ResourceKind::Storage,
                                },
                            },
                        );
                        self.tally(AttackKind::SsdpSpoof).attempts += 1;
                    }
                }
            }
            // Learn the directory: every service someone else announced is
            // a shadowing target.
            Payload::QueryHit { device, service }
                if device != ctx.dev
                    && !self
                        .observed
                        .iter()
                        .any(|(d, s)| *d == device && s.name == service.name) =>
            {
                self.observed.push((device, service));
            }
            // Replies resolve pending attack requests.
            Payload::BusAck { status }
            | Payload::ShareResponse { status }
            | Payload::MapComplete { status, .. }
            | Payload::MemAllocResponse { status, .. } => {
                match self.pending.remove(&env.req) {
                    Some(Pending::Attack(kind)) => {
                        if status.is_ok() {
                            self.tally(kind).acked_ok += 1;
                        } else {
                            self.tally(kind).denied_remote += 1;
                        }
                    }
                    Some(Pending::Escalate) if status == Status::Ok => {
                        // Stage 2: we now own `Compute`; try to use it as
                        // authority over DRAM mappings.
                        let req = ctx.send_bus(
                            Dst::Bus,
                            Payload::MapInstruction {
                                resource: ResourceKind::Compute,
                                op: lastcpu_bus::MapOp::Map,
                                device: ctx.dev,
                                pasid: self.targets.app_pasid,
                                va: 0x7200_0000,
                                pa: 0x2000,
                                pages: 4,
                                perms: 3,
                            },
                        );
                        self.pending
                            .insert(req, Pending::Attack(AttackKind::ConfusedDeputy));
                        self.tally(AttackKind::ConfusedDeputy).attempts += 1;
                    }
                    Some(Pending::Escalate) | None => {}
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if token == TOKEN_HEARTBEAT {
            ctx.send_bus(Dst::Bus, Payload::Heartbeat);
            ctx.set_timer(HEARTBEAT_PERIOD, TOKEN_HEARTBEAT);
            return;
        }
        let Some(ev) = self.events.get(token as usize).copied() else {
            return;
        };
        match ev.kind {
            AttackKind::WildDma => self.attack_wild_dma(ctx, token),
            AttackKind::StaleGeneration => self.attack_stale_generation(ctx, token),
            AttackKind::ConfusedDeputy => self.attack_confused_deputy(ctx, token),
            AttackKind::SsdpSpoof => self.attack_ssdp_spoof(ctx, token),
            AttackKind::ControlFlood => self.attack_control_flood(ctx, token),
        }
    }

    // DMA faults are tallied synchronously at the `Err` return in the
    // executors; the async `on_fault` delivery would double-count them.
    fn on_fault(&mut self, _ctx: &mut DeviceCtx<'_>, _fault: lastcpu_iommu::IommuFault) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastcpu_bus::CorrId;
    use lastcpu_devices::device::Action;
    use lastcpu_iommu::Iommu;
    use lastcpu_mem::Dram;
    use lastcpu_sim::{DetRng, MetricsHub, SimTime};

    fn targets() -> AttackTargets {
        AttackTargets {
            shadow_services: vec!["file:/data/kv.db".into()],
            flood_burst: 8,
            ..AttackTargets::new(DeviceId(2), DeviceId(1), 3)
        }
    }

    /// Runs `f` under a fresh DeviceCtx and returns the queued actions.
    fn with_ctx(iommu: &mut Iommu, f: impl FnOnce(&mut DeviceCtx<'_>)) -> Vec<Action> {
        let mut dram = Dram::new(1 << 20);
        let mut rng = DetRng::new(1);
        let mut req = 100;
        let hub = MetricsHub::new();
        let mut ctx = DeviceCtx::new(
            SimTime::from_nanos(5_000),
            DeviceId(9),
            None,
            iommu,
            &mut dram,
            &mut rng,
            &mut req,
            CorrId::NONE,
            &hub,
        );
        f(&mut ctx);
        let (actions, _, _) = ctx.finish();
        actions
    }

    fn plan_of(kinds: &[AttackKind]) -> AttackPlan {
        let mut p = AttackPlan::new(7);
        for (i, k) in kinds.iter().enumerate() {
            p.inject(SimTime::from_nanos(10_000 + i as u64), *k);
        }
        p
    }

    #[test]
    fn wild_and_stale_dma_fault_on_an_unprovisioned_iommu() {
        let mut dev = MaliciousDevice::new("evil0", plan_of(&[AttackKind::WildDma]), targets());
        let mut mmu = Iommu::new(16); // no PASIDs bound: nothing is reachable
        with_ctx(&mut mmu, |ctx| dev.on_timer(ctx, 0));
        let s = dev.stats(AttackKind::WildDma);
        assert_eq!(s.attempts, 4);
        assert_eq!(s.denied_local, 4);
        assert_eq!(s.acked_ok, 0);

        let mut dev =
            MaliciousDevice::new("evil0", plan_of(&[AttackKind::StaleGeneration]), targets());
        with_ctx(&mut mmu, |ctx| dev.on_timer(ctx, 0));
        let s = dev.stats(AttackKind::StaleGeneration);
        assert_eq!(s.attempts, 4);
        assert_eq!(s.blocked(), 4);
    }

    #[test]
    fn confused_deputy_sends_requests_and_tallies_remote_denials() {
        let mut dev =
            MaliciousDevice::new("evil0", plan_of(&[AttackKind::ConfusedDeputy]), targets());
        let mut mmu = Iommu::new(16);
        let actions = with_ctx(&mut mmu, |ctx| dev.on_timer(ctx, 0));
        // 1 direct MapInstruction + 1 RegisterController + 2 Shares.
        let sent: Vec<Envelope> = actions
            .into_iter()
            .filter_map(|a| match a {
                Action::SendBus(e) => Some(e),
                _ => None,
            })
            .collect();
        assert_eq!(sent.len(), 4);
        assert_eq!(dev.stats(AttackKind::ConfusedDeputy).attempts, 3);

        // The bus/memctl deny everything attack-tallied; the vacant-class
        // registration is acked Ok and triggers stage 2.
        let mut escalated = 0;
        for env in sent {
            let status = match env.payload {
                Payload::RegisterController { .. } => Status::Ok,
                _ => Status::Denied,
            };
            let reply = Envelope {
                src: DeviceId(0),
                dst: Dst::Device(DeviceId(9)),
                req: env.req,
                corr: CorrId::NONE,
                payload: Payload::BusAck { status },
            };
            let follow = with_ctx(&mut mmu, |ctx| dev.on_message(ctx, reply));
            escalated += follow
                .iter()
                .filter(|a| {
                    matches!(
                        a,
                        Action::SendBus(Envelope {
                            payload: Payload::MapInstruction {
                                resource: ResourceKind::Compute,
                                ..
                            },
                            ..
                        })
                    )
                })
                .count();
        }
        assert_eq!(escalated, 1, "Ok on RegisterController triggers stage 2");
        let s = dev.stats(AttackKind::ConfusedDeputy);
        assert_eq!(s.attempts, 4, "stage-2 map counted as a fourth attempt");
        assert_eq!(s.denied_remote, 3);
        assert_eq!(s.acked_ok, 0);
    }

    #[test]
    fn ssdp_spoof_shadows_configured_and_observed_names() {
        let mut dev = MaliciousDevice::new("evil0", plan_of(&[AttackKind::SsdpSpoof]), targets());
        let mut mmu = Iommu::new(16);
        // Discovery taught us about a live service on another device.
        let hit = Envelope {
            src: DeviceId(0),
            dst: Dst::Device(DeviceId(9)),
            req: RequestId(55),
            corr: CorrId::NONE,
            payload: Payload::QueryHit {
                device: DeviceId(2),
                service: ServiceDesc {
                    id: ServiceId(1),
                    name: "kvs:frontend".into(),
                    resource: ResourceKind::Storage,
                },
            },
        };
        with_ctx(&mut mmu, |ctx| dev.on_message(ctx, hit));
        let actions = with_ctx(&mut mmu, |ctx| dev.on_timer(ctx, 0));
        let announced: Vec<String> = actions
            .iter()
            .filter_map(|a| match a {
                Action::SendBus(Envelope {
                    payload: Payload::Announce { service },
                    ..
                }) => Some(service.name.clone()),
                _ => None,
            })
            .collect();
        // Configured shadow + observed shadow + verbatim replay of observed.
        assert_eq!(announced.len(), 3);
        assert!(announced.contains(&"file:/data/kv.db".to_string()));
        assert_eq!(
            announced
                .iter()
                .filter(|n| n.as_str() == "kvs:frontend")
                .count(),
            2
        );
        assert_eq!(dev.stats(AttackKind::SsdpSpoof).attempts, 3);
    }

    #[test]
    fn armed_spoofer_answers_queries_with_forged_hits() {
        let mut dev = MaliciousDevice::new("evil0", plan_of(&[AttackKind::SsdpSpoof]), targets());
        let mut mmu = Iommu::new(16);
        let query = |src| Envelope {
            src,
            dst: Dst::Broadcast,
            req: RequestId(7),
            corr: CorrId::NONE,
            payload: Payload::Query {
                pattern: "file:*".into(),
            },
        };
        // Before any SsdpSpoof event, queries are ignored.
        let actions = with_ctx(&mut mmu, |ctx| dev.on_message(ctx, query(DeviceId(5))));
        assert!(actions.is_empty());
        // Arm by running the spoof event, then answer a query.
        with_ctx(&mut mmu, |ctx| dev.on_timer(ctx, 0));
        let before = dev.stats(AttackKind::SsdpSpoof).attempts;
        let actions = with_ctx(&mut mmu, |ctx| dev.on_message(ctx, query(DeviceId(5))));
        let hits: Vec<(DeviceId, String)> = actions
            .iter()
            .filter_map(|a| match a {
                Action::SendBus(Envelope {
                    dst: Dst::Device(to),
                    payload: Payload::QueryHit { device, service },
                    ..
                }) => {
                    assert_eq!(*to, DeviceId(5), "hit goes straight to the querier");
                    Some((*device, service.name.clone()))
                }
                _ => None,
            })
            .collect();
        // One hit claims the attacker offers the service, one forges the
        // victim's identity as offerer.
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().any(|(d, _)| *d == DeviceId(9)));
        assert!(hits.iter().any(|(d, _)| *d == DeviceId(2)));
        assert!(hits.iter().all(|(_, n)| n == "file:/data/kv.db"));
        assert_eq!(dev.stats(AttackKind::SsdpSpoof).attempts, before + 2);
    }

    #[test]
    fn control_flood_bursts_the_configured_count() {
        let mut dev =
            MaliciousDevice::new("evil0", plan_of(&[AttackKind::ControlFlood]), targets());
        let mut mmu = Iommu::new(16);
        let actions = with_ctx(&mut mmu, |ctx| dev.on_timer(ctx, 0));
        let beats = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::SendBus(Envelope {
                        payload: Payload::Heartbeat,
                        ..
                    })
                )
            })
            .count();
        assert_eq!(beats, 8);
        assert_eq!(dev.stats(AttackKind::ControlFlood).attempts, 8);
    }

    #[test]
    fn on_start_registers_heartbeats_and_schedules_the_plan() {
        let plan = plan_of(&[AttackKind::WildDma, AttackKind::SsdpSpoof]);
        let mut dev = MaliciousDevice::new("evil0", plan, targets());
        let mut mmu = Iommu::new(16);
        let actions = with_ctx(&mut mmu, |ctx| dev.on_start(ctx));
        let timers: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                Action::SetTimer { token, .. } => Some(*token),
                _ => None,
            })
            .collect();
        assert!(timers.contains(&TOKEN_HEARTBEAT));
        assert!(timers.contains(&0) && timers.contains(&1));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SendBus(Envelope {
                payload: Payload::Hello { .. },
                ..
            })
        )));
    }

    #[test]
    fn stats_resolution_is_exclusive_and_totals_add_up() {
        let mut dev = MaliciousDevice::new(
            "evil0",
            plan_of(&[AttackKind::WildDma, AttackKind::ConfusedDeputy]),
            targets(),
        );
        let mut mmu = Iommu::new(16);
        with_ctx(&mut mmu, |ctx| dev.on_timer(ctx, 0));
        with_ctx(&mut mmu, |ctx| dev.on_timer(ctx, 1));
        let t = dev.total();
        assert_eq!(t.attempts, 4 + 3);
        assert_eq!(t.blocked() + t.acked_ok + t.unresolved(), t.attempts);
        // The in-flight bus requests are unresolved until replies arrive.
        assert_eq!(t.unresolved(), 3);
    }
}
