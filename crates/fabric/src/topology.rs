//! Pluggable rack topologies: flat, leaf-spine, and k-ary fat-tree.
//!
//! Through PR 9 the fabric priced every inter-machine frame against one
//! implicit shape: each machine owns an uplink and a downlink, and all of
//! them meet at a single infinite spine. That hides exactly the effects a
//! 64–128 machine rack is about — oversubscribed uplinks, incast on a hot
//! leaf, path diversity — so this module makes the wiring explicit. A
//! [`Topology`] is a directed graph of links (surfaced read-only as
//! [`LinkStats`]), each with its own line
//! rate (`per_byte_ps`), fixed post-transmission latency, and a
//! `busy`-until cursor that models store-and-forward queuing per link
//! instead of per machine endpoint.
//!
//! **Cost model** (documented for hand-recomputation in docs/TOPOLOGY.md):
//! a frame of `wire` bytes entering the fabric at `t` walks its path link
//! by link. On each link it starts serializing at `max(t, link.busy)`,
//! occupies the link for `wire * per_byte_ps / 1000` ns (integer division,
//! matching [`NetCostModel::serialize`]), then pays the link's fixed
//! latency before reaching the next hop. Every inter-switch hop's latency
//! is the store-and-forward `switch_latency`; the final hop into the
//! destination host pays `propagation` (the end-to-end flight budget, kept
//! on the last hop so a two-hop path prices identically to the historical
//! flat model). Queuing therefore happens where the wire actually is: two
//! flows sharing one leaf→spine link serialize on *that* link and nowhere
//! else.
//!
//! **ECMP.** Where a topology offers several equal-cost paths (spines in a
//! leaf-spine, aggregation/core pairs in a fat-tree), the choice is a pure
//! function of `(src_machine, dst_machine, fabric_seed)` hashed through
//! [`crate::ring::hash64`]. The same pair always takes the same path —
//! per-pair FIFO ordering survives, results are seed-stable, and changing
//! the seed re-rolls the placement without touching any other state.
//!
//! **Oversubscription** (`oversub`, ratio ≥ 1) is modeled where each
//! fabric realizes it physically: a leaf-spine with ratio `O` has
//! `leaf_size / O` spines instead of `leaf_size` (fewer full-rate paths
//! up), and a fat-tree keeps its shape but slows every edge→aggregation
//! uplink by `O` (thinner uplinks). `O = 1` is a full-bisection fabric.
//!
//! [`NetCostModel::serialize`]: lastcpu_net::NetCostModel::serialize

use lastcpu_net::NetCostModel;
use lastcpu_sim::{SimDuration, SimTime};
use lastcpu_snap::SnapWriter;

use crate::ring::hash64;

/// Which graph the fabric wires between machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// The historical single-spine shape: every machine owns one uplink
    /// (latency = `switch_latency`) and one downlink (latency =
    /// `propagation`); all paths are two hops. Bit-identical to the
    /// pre-topology fabric.
    Flat,
    /// Machines grouped into leaves of `leaf_size`; every leaf connects to
    /// every spine. Cross-leaf paths are four hops
    /// (host→leaf→spine→leaf→host) with ECMP across spines.
    LeafSpine {
        /// Machines per leaf switch (≥ 1).
        leaf_size: u32,
    },
    /// A k-ary fat-tree: `k` pods of `k/2` edge + `k/2` aggregation
    /// switches, `(k/2)²` cores, `k³/4` host capacity. `k = 0` picks the
    /// smallest even `k` whose capacity fits the machine count.
    FatTree {
        /// Tree arity (even, ≥ 2), or 0 for automatic sizing.
        k: u32,
    },
}

/// Topology selection plus the oversubscription knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyConfig {
    /// The wiring graph.
    pub kind: TopoKind,
    /// Oversubscription ratio (≥ 1); see the module docs for how each
    /// topology realizes it. Ignored by [`TopoKind::Flat`].
    pub oversub: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            kind: TopoKind::Flat,
            oversub: 1,
        }
    }
}

impl TopoKind {
    /// Canonical name: `"flat"`, `"leaf-spine"`, or `"fat-tree"`.
    pub fn name(&self) -> &'static str {
        match self {
            TopoKind::Flat => "flat",
            TopoKind::LeafSpine { .. } => "leaf-spine",
            TopoKind::FatTree { .. } => "fat-tree",
        }
    }

    /// Parses `"flat"`, `"leaf-spine"`, `"leaf-spine:<leaf_size>"`,
    /// `"fat-tree"`, or `"fat-tree:<k>"`.
    pub fn parse(s: &str) -> Result<TopoKind, String> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        let num = |what: &str| -> Result<u32, String> {
            arg.unwrap()
                .parse::<u32>()
                .map_err(|_| format!("bad {what} in topology spec {s:?}"))
        };
        match (head, arg) {
            ("flat", None) => Ok(TopoKind::Flat),
            ("flat", Some(_)) => Err(format!("flat takes no parameter: {s:?}")),
            ("leaf-spine", None) => Ok(TopoKind::LeafSpine {
                leaf_size: DEFAULT_LEAF_SIZE,
            }),
            ("leaf-spine", Some(_)) => {
                let leaf_size = num("leaf size")?;
                if leaf_size == 0 {
                    return Err("leaf-spine leaf size must be ≥ 1".into());
                }
                Ok(TopoKind::LeafSpine { leaf_size })
            }
            ("fat-tree", None) | ("fat-tree", Some("auto")) => Ok(TopoKind::FatTree { k: 0 }),
            ("fat-tree", Some(_)) => {
                let k = num("k")?;
                if k != 0 && (k < 2 || k % 2 != 0) {
                    return Err(format!("fat-tree k must be even and ≥ 2 (got {k})"));
                }
                Ok(TopoKind::FatTree { k })
            }
            _ => Err(format!(
                "unknown topology {s:?} (want flat | leaf-spine[:leaf_size] | fat-tree[:k])"
            )),
        }
    }
}

impl std::fmt::Display for TopoKind {
    /// The fully parameterized spec (`"leaf-spine:8"`, `"fat-tree:auto"`)
    /// rather than the bare [`TopoKind::name`] — what BENCH_e10.json cells
    /// record, so a reviewer can rebuild the exact graph from the cell
    /// alone. Round-trips through [`TopoKind::parse`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopoKind::Flat => f.write_str("flat"),
            TopoKind::LeafSpine { leaf_size } => write!(f, "leaf-spine:{leaf_size}"),
            TopoKind::FatTree { k: 0 } => f.write_str("fat-tree:auto"),
            TopoKind::FatTree { k } => write!(f, "fat-tree:{k}"),
        }
    }
}

/// Default machines-per-leaf for `"leaf-spine"` with no explicit size.
pub const DEFAULT_LEAF_SIZE: u32 = 8;

/// One directed link: static wire parameters plus per-link queuing state
/// and traffic accounting.
#[derive(Debug, Clone)]
struct Link {
    /// `"m3->leaf0"`, `"leaf0->spine1"`, `"a1.0->c2"`, … (see
    /// docs/TOPOLOGY.md for the naming scheme).
    name: String,
    /// Serialization cost in picoseconds per byte.
    per_byte_ps: u64,
    /// Fixed latency paid after a frame finishes serializing.
    latency: SimDuration,
    /// When the link finishes its current frame (store-and-forward queue).
    busy: SimTime,
    /// Total nanoseconds this link spent transmitting (utilization
    /// numerator: `busy_ns / elapsed_virtual_ns`).
    busy_ns: u64,
    /// Wire bytes carried.
    bytes: u64,
    /// Frames carried.
    frames: u64,
}

impl Link {
    fn new(name: String, per_byte_ps: u64, latency: SimDuration) -> Link {
        Link {
            name,
            per_byte_ps,
            latency,
            busy: SimTime::ZERO,
            busy_ns: 0,
            bytes: 0,
            frames: 0,
        }
    }
}

/// Read-only view of one link's parameters and counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStats<'a> {
    /// Link name (stable across runs; see docs/TOPOLOGY.md).
    pub name: &'a str,
    /// Serialization cost in ps/byte.
    pub per_byte_ps: u64,
    /// Fixed post-transmission latency.
    pub latency: SimDuration,
    /// Nanoseconds spent transmitting.
    pub busy_ns: u64,
    /// Wire bytes carried.
    pub bytes: u64,
    /// Frames carried.
    pub frames: u64,
}

/// A frame's computed crossing: delivery time plus the three-way stage
/// split the E12 analyzer attributes (first-hop queue+tx, last-hop
/// queue+tx, everything in between). The three `_ns` stages sum exactly to
/// `deliver - entry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transit {
    /// When the frame enters the destination machine's edge switch.
    pub deliver: SimTime,
    /// First hop (source uplink) queue + transmission.
    pub uplink_ns: u64,
    /// Middle hops and all fixed latencies.
    pub spine_ns: u64,
    /// Last hop (destination downlink) queue + transmission.
    pub downlink_ns: u64,
}

/// A built topology: the link graph plus one precomputed path per
/// `(src, dst)` machine pair — the per-pair path cache that makes
/// same-window batching a table lookup instead of a graph walk.
#[derive(Debug, Clone)]
pub struct Topology {
    cfg: TopologyConfig,
    machines: usize,
    links: Vec<Link>,
    /// Flattened per-pair paths: pair `(s, d)` owns
    /// `path_links[path_off[s*machines+d] .. path_off[s*machines+d+1]]`.
    path_off: Vec<u32>,
    path_links: Vec<u32>,
    /// Minimum total path latency across distinct-machine pairs (the
    /// fabric's conservative lookahead).
    min_latency: SimDuration,
    /// Fat-tree arity actually used (after auto-sizing), if applicable.
    fat_tree_k: Option<u32>,
}

impl Topology {
    /// Builds the link graph and the per-pair path table for `machines`
    /// machines. `seed` feeds ECMP path selection; `cost` supplies the
    /// base line rate and latency budget.
    pub fn build(
        cfg: &TopologyConfig,
        cost: &NetCostModel,
        machines: usize,
        seed: u64,
    ) -> Topology {
        let oversub = cfg.oversub.max(1);
        let mut b = Builder {
            cost,
            seed,
            machines,
            links: Vec::new(),
            path_off: Vec::with_capacity(machines * machines + 1),
            path_links: Vec::new(),
        };
        b.path_off.push(0);
        let fat_tree_k = match cfg.kind {
            TopoKind::Flat => {
                b.build_flat();
                None
            }
            TopoKind::LeafSpine { leaf_size } => {
                b.build_leaf_spine(leaf_size.max(1) as usize, oversub);
                None
            }
            TopoKind::FatTree { k } => Some(b.build_fat_tree(k, oversub)),
        };
        let mut topo = Topology {
            cfg: TopologyConfig { oversub, ..*cfg },
            machines,
            links: b.links,
            path_off: b.path_off,
            path_links: b.path_links,
            min_latency: SimDuration::ZERO,
            fat_tree_k,
        };
        topo.min_latency = topo.compute_min_latency(cost);
        topo
    }

    /// The configuration the topology was built from (oversub clamped ≥ 1).
    pub fn config(&self) -> &TopologyConfig {
        &self.cfg
    }

    /// Machines the path table covers.
    pub fn num_machines(&self) -> usize {
        self.machines
    }

    /// Directed links in the graph.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The fat-tree arity in use (after auto-sizing), if this is one.
    pub fn fat_tree_k(&self) -> Option<u32> {
        self.fat_tree_k
    }

    /// The minimum total fixed latency over all distinct-machine paths —
    /// the fabric's conservative lookahead. Falls back to
    /// `switch_latency + propagation` semantics via the builder when there
    /// are fewer than two machines (the build stores that minimum too).
    pub fn min_latency(&self) -> SimDuration {
        self.min_latency
    }

    /// The link-index path for `src → dst`.
    pub fn path(&self, src: usize, dst: usize) -> &[u32] {
        let p = src * self.machines + dst;
        let lo = self.path_off[p] as usize;
        let hi = self.path_off[p + 1] as usize;
        &self.path_links[lo..hi]
    }

    /// One link's parameters and counters.
    pub fn link(&self, id: u32) -> LinkStats<'_> {
        let l = &self.links[id as usize];
        LinkStats {
            name: &l.name,
            per_byte_ps: l.per_byte_ps,
            latency: l.latency,
            busy_ns: l.busy_ns,
            bytes: l.bytes,
            frames: l.frames,
        }
    }

    /// All links, in stable build order.
    pub fn links(&self) -> impl Iterator<Item = LinkStats<'_>> {
        (0..self.links.len()).map(|i| self.link(i as u32))
    }

    /// Walks `wire` bytes entering at `at` across the `src → dst` path,
    /// queuing on every link, and returns the delivery time plus the
    /// attribution split. Mutates per-link `busy` cursors and counters.
    pub fn transit(&mut self, src: usize, dst: usize, wire: u64, at: SimTime) -> Transit {
        let p = src * self.machines + dst;
        let lo = self.path_off[p] as usize;
        let hi = self.path_off[p + 1] as usize;
        debug_assert!(hi > lo, "every machine pair has a path");
        let mut t = at;
        let mut first_done = at;
        let mut last_in = at;
        let mut last_done = at;
        for i in lo..hi {
            let li = self.path_links[i] as usize;
            let link = &mut self.links[li];
            let tx = SimDuration::from_nanos(wire.saturating_mul(link.per_byte_ps) / 1000);
            let start = link.busy.max(t);
            let done = start + tx;
            link.busy = done;
            link.busy_ns += tx.as_nanos();
            link.bytes += wire;
            link.frames += 1;
            if i == lo {
                first_done = done;
            }
            if i == hi - 1 {
                last_in = t;
                last_done = done;
            }
            t = done + link.latency;
        }
        let deliver = t;
        let uplink_ns = first_done.as_nanos() - at.as_nanos();
        let downlink_ns = if hi - lo >= 2 {
            last_done.as_nanos() - last_in.as_nanos()
        } else {
            0
        };
        let total = deliver.as_nanos() - at.as_nanos();
        Transit {
            deliver,
            uplink_ns,
            spine_ns: total - uplink_ns - downlink_ns,
            downlink_ns,
        }
    }

    /// Serializes the dynamic per-link state (queue cursors + counters)
    /// into a checkpoint section. The graph itself is rebuilt from the
    /// configuration, so only mutable state is written.
    pub fn snapshot_state(&self, w: &mut SnapWriter) {
        w.put_len(self.links.len());
        for l in &self.links {
            w.put_u64(l.busy.as_nanos());
            w.put_u64(l.busy_ns);
            w.put_u64(l.bytes);
            w.put_u64(l.frames);
        }
    }

    fn compute_min_latency(&self, cost: &NetCostModel) -> SimDuration {
        let mut min: Option<SimDuration> = None;
        for s in 0..self.machines {
            for d in 0..self.machines {
                if s == d {
                    continue;
                }
                let lat = self
                    .path(s, d)
                    .iter()
                    .map(|&li| self.links[li as usize].latency)
                    .fold(SimDuration::ZERO, |a, b| a.saturating_add(b));
                min = Some(match min {
                    Some(m) if m <= lat => m,
                    _ => lat,
                });
            }
        }
        // Fewer than two machines: fall back to the flat two-hop budget so
        // the fabric's lookahead assertion stays meaningful.
        min.unwrap_or(cost.switch_latency + cost.propagation)
    }
}

/// Build-time scratch: link allocation plus path emission.
struct Builder<'a> {
    cost: &'a NetCostModel,
    seed: u64,
    machines: usize,
    links: Vec<Link>,
    path_off: Vec<u32>,
    path_links: Vec<u32>,
}

impl Builder<'_> {
    fn add_link(&mut self, name: String, per_byte_ps: u64, latency: SimDuration) -> u32 {
        let id = self.links.len() as u32;
        self.links.push(Link::new(name, per_byte_ps, latency));
        id
    }

    fn push_path(&mut self, links: &[u32]) {
        self.path_links.extend_from_slice(links);
        self.path_off.push(self.path_links.len() as u32);
    }

    /// Deterministic ECMP pick: a pure function of the machine pair and
    /// the fabric seed, avalanche-hashed so consecutive pairs spread.
    fn ecmp(&self, src: usize, dst: usize, choices: usize) -> usize {
        debug_assert!(choices >= 1);
        let mut key = [0u8; 24];
        key[..8].copy_from_slice(&(src as u64).to_le_bytes());
        key[8..16].copy_from_slice(&(dst as u64).to_le_bytes());
        key[16..].copy_from_slice(&self.seed.to_le_bytes());
        (hash64(&key) % choices as u64) as usize
    }

    /// The historical shape: per-machine uplink/downlink meeting at one
    /// implicit spine. Priced identically to the pre-topology fabric.
    // The pair-matrix loops below iterate machine *indices*, which are the
    // semantic objects (they pick leaves, pods, and hash inputs), not mere
    // cursors into one slice.
    #[allow(clippy::needless_range_loop)]
    fn build_flat(&mut self) {
        let rate = self.cost.per_byte_ps;
        let ups: Vec<u32> = (0..self.machines)
            .map(|m| self.add_link(format!("m{m}.up"), rate, self.cost.switch_latency))
            .collect();
        let downs: Vec<u32> = (0..self.machines)
            .map(|m| self.add_link(format!("m{m}.down"), rate, self.cost.propagation))
            .collect();
        for s in 0..self.machines {
            for d in 0..self.machines {
                self.push_path(&[ups[s], downs[d]]);
            }
        }
    }

    /// Leaves of `leaf_size` machines, `max(1, leaf_size / oversub)`
    /// spines, every leaf wired to every spine.
    #[allow(clippy::needless_range_loop)]
    fn build_leaf_spine(&mut self, leaf_size: usize, oversub: u64) {
        let rate = self.cost.per_byte_ps;
        let sw = self.cost.switch_latency;
        let leaves = self.machines.div_ceil(leaf_size).max(1);
        let spines = (leaf_size as u64 / oversub).max(1) as usize;
        let hup: Vec<u32> = (0..self.machines)
            .map(|m| self.add_link(format!("m{m}->leaf{}", m / leaf_size), rate, sw))
            .collect();
        let hdown: Vec<u32> = (0..self.machines)
            .map(|m| {
                self.add_link(
                    format!("leaf{}->m{m}", m / leaf_size),
                    rate,
                    self.cost.propagation,
                )
            })
            .collect();
        // lup[l * spines + s], ldown likewise.
        let mut lup = Vec::with_capacity(leaves * spines);
        let mut ldown = Vec::with_capacity(leaves * spines);
        for l in 0..leaves {
            for s in 0..spines {
                lup.push(self.add_link(format!("leaf{l}->spine{s}"), rate, sw));
            }
        }
        for l in 0..leaves {
            for s in 0..spines {
                ldown.push(self.add_link(format!("spine{s}->leaf{l}"), rate, sw));
            }
        }
        for s in 0..self.machines {
            for d in 0..self.machines {
                let (ls, ld) = (s / leaf_size, d / leaf_size);
                if ls == ld {
                    self.push_path(&[hup[s], hdown[d]]);
                } else {
                    let sp = self.ecmp(s, d, spines);
                    self.push_path(&[
                        hup[s],
                        lup[ls * spines + sp],
                        ldown[ld * spines + sp],
                        hdown[d],
                    ]);
                }
            }
        }
    }

    /// A k-ary fat-tree; `k = 0` auto-sizes to the smallest even arity
    /// whose `k³/4` host capacity fits. Oversubscription slows edge→agg
    /// uplinks by the ratio. Returns the arity used.
    #[allow(clippy::needless_range_loop)]
    fn build_fat_tree(&mut self, k: u32, oversub: u64) -> u32 {
        let k = if k != 0 {
            k as usize
        } else {
            let mut k = 2;
            while k * k * k / 4 < self.machines.max(1) {
                k += 2;
            }
            k
        };
        assert!(
            k % 2 == 0 && k >= 2,
            "fat-tree arity must be even and ≥ 2 (got {k})"
        );
        assert!(
            k * k * k / 4 >= self.machines,
            "fat-tree k={k} holds {} hosts < {} machines",
            k * k * k / 4,
            self.machines
        );
        let half = k / 2; // edge/agg switches per pod; hosts per edge
        let per_pod = half * half; // hosts per pod
        let rate = self.cost.per_byte_ps;
        let up_rate = rate.saturating_mul(oversub); // thinner edge→agg wires
        let sw = self.cost.switch_latency;
        let pod_of = |m: usize| m / per_pod;
        let edge_of = |m: usize| (m % per_pod) / half;
        let hup: Vec<u32> = (0..self.machines)
            .map(|m| self.add_link(format!("m{m}->e{}.{}", pod_of(m), edge_of(m)), rate, sw))
            .collect();
        let hdown: Vec<u32> = (0..self.machines)
            .map(|m| {
                self.add_link(
                    format!("e{}.{}->m{m}", pod_of(m), edge_of(m)),
                    rate,
                    self.cost.propagation,
                )
            })
            .collect();
        // eup[((p * half) + e) * half + j]: edge e in pod p → agg j in pod p.
        let mut eup = Vec::with_capacity(k * per_pod);
        let mut edown = Vec::with_capacity(k * per_pod);
        for p in 0..k {
            for e in 0..half {
                for j in 0..half {
                    eup.push(self.add_link(format!("e{p}.{e}->a{p}.{j}"), up_rate, sw));
                }
            }
        }
        for p in 0..k {
            for e in 0..half {
                for j in 0..half {
                    edown.push(self.add_link(format!("a{p}.{j}->e{p}.{e}"), rate, sw));
                }
            }
        }
        // Core c ∈ 0..half² connects to agg j = c / half in every pod.
        // aup[(p * half + j) * half + c2]: agg j in pod p → core j*half+c2.
        let mut aup = Vec::with_capacity(k * per_pod);
        let mut adown = Vec::with_capacity(k * per_pod);
        for p in 0..k {
            for j in 0..half {
                for c2 in 0..half {
                    let c = j * half + c2;
                    aup.push(self.add_link(format!("a{p}.{j}->c{c}"), rate, sw));
                }
            }
        }
        for p in 0..k {
            for j in 0..half {
                for c2 in 0..half {
                    let c = j * half + c2;
                    adown.push(self.add_link(format!("c{c}->a{p}.{j}"), rate, sw));
                }
            }
        }
        for s in 0..self.machines {
            for d in 0..self.machines {
                let (ps, pd) = (pod_of(s), pod_of(d));
                let (es, ed) = (edge_of(s), edge_of(d));
                if ps == pd && es == ed {
                    self.push_path(&[hup[s], hdown[d]]);
                } else if ps == pd {
                    let j = self.ecmp(s, d, half);
                    self.push_path(&[
                        hup[s],
                        eup[(ps * half + es) * half + j],
                        edown[(pd * half + ed) * half + j],
                        hdown[d],
                    ]);
                } else {
                    let c = self.ecmp(s, d, half * half);
                    let (j, c2) = (c / half, c % half);
                    self.push_path(&[
                        hup[s],
                        eup[(ps * half + es) * half + j],
                        aup[(ps * half + j) * half + c2],
                        adown[(pd * half + j) * half + c2],
                        edown[(pd * half + ed) * half + j],
                        hdown[d],
                    ]);
                }
            }
        }
        k as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> NetCostModel {
        NetCostModel {
            per_byte_ps: 40,
            switch_latency: SimDuration::from_nanos(600),
            propagation: SimDuration::from_micros(2),
        }
    }

    fn build(kind: TopoKind, oversub: u64, machines: usize) -> Topology {
        Topology::build(&TopologyConfig { kind, oversub }, &cost(), machines, 0xFAB)
    }

    #[test]
    fn flat_prices_like_the_historical_model() {
        // One frame, idle links: tx + switch + tx + prop, split exactly as
        // the pre-topology fabric attributed it.
        let mut t = build(TopoKind::Flat, 1, 4);
        let wire = 82u64;
        let tx = cost().serialize(wire);
        let tr = t.transit(0, 3, wire, SimTime::from_nanos(1_000));
        assert_eq!(tr.uplink_ns, tx.as_nanos());
        assert_eq!(tr.downlink_ns, tx.as_nanos());
        assert_eq!(tr.spine_ns, 600 + 2_000);
        assert_eq!(
            tr.deliver.as_nanos(),
            1_000 + 2 * tx.as_nanos() + 600 + 2_000
        );
    }

    #[test]
    fn flat_queues_on_the_shared_uplink() {
        let mut t = build(TopoKind::Flat, 1, 3);
        let at = SimTime::from_nanos(0);
        let a = t.transit(0, 1, 9_018, at);
        let b = t.transit(0, 2, 9_018, at);
        // Second frame starts serializing only when the uplink frees.
        assert_eq!(
            b.deliver.as_nanos() - a.deliver.as_nanos(),
            cost().serialize(9_018).as_nanos()
        );
    }

    #[test]
    fn leaf_spine_cross_leaf_is_four_hops() {
        let t = build(TopoKind::LeafSpine { leaf_size: 4 }, 1, 8);
        assert_eq!(t.path(0, 1).len(), 2, "same leaf: host up + host down");
        assert_eq!(t.path(0, 7).len(), 4, "cross leaf: via a spine");
        // 8 machines, leaves of 4, full bisection: 4 spines.
        // links: 8 hup + 8 hdown + 2*4 lup + 2*4 ldown = 32.
        assert_eq!(t.num_links(), 32);
    }

    #[test]
    fn leaf_spine_oversub_removes_spines() {
        let t1 = build(TopoKind::LeafSpine { leaf_size: 8 }, 1, 16);
        let t4 = build(TopoKind::LeafSpine { leaf_size: 8 }, 4, 16);
        assert!(t4.num_links() < t1.num_links());
        // leaf_size 8 / oversub 4 = 2 spines.
        assert_eq!(t4.num_links(), 16 + 16 + 2 * 2 + 2 * 2);
    }

    #[test]
    fn ecmp_is_seed_stable_and_pair_stable() {
        let a = build(TopoKind::LeafSpine { leaf_size: 8 }, 1, 64);
        let b = build(TopoKind::LeafSpine { leaf_size: 8 }, 1, 64);
        for s in 0..64 {
            for d in 0..64 {
                assert_eq!(a.path(s, d), b.path(s, d));
            }
        }
        // A different seed re-rolls at least one placement.
        let c = Topology::build(
            &TopologyConfig {
                kind: TopoKind::LeafSpine { leaf_size: 8 },
                oversub: 1,
            },
            &cost(),
            64,
            0xDEAD_BEEF,
        );
        assert!((0..64).any(|s| (0..64).any(|d| a.path(s, d) != c.path(s, d))));
    }

    #[test]
    fn fat_tree_auto_sizes() {
        for (m, want_k) in [
            (2usize, 2u32),
            (8, 4),
            (16, 4),
            (32, 6),
            (54, 6),
            (64, 8),
            (128, 8),
        ] {
            let t = build(TopoKind::FatTree { k: 0 }, 1, m);
            assert_eq!(t.fat_tree_k(), Some(want_k), "machines = {m}");
        }
    }

    #[test]
    fn fat_tree_path_lengths() {
        // k=4: 4 hosts per pod, 2 per edge.
        let t = build(TopoKind::FatTree { k: 4 }, 1, 16);
        assert_eq!(t.path(0, 1).len(), 2, "same edge");
        assert_eq!(t.path(0, 2).len(), 4, "same pod, different edge");
        assert_eq!(t.path(0, 15).len(), 6, "cross pod");
    }

    #[test]
    fn min_latency_is_the_two_hop_budget() {
        for kind in [
            TopoKind::Flat,
            TopoKind::LeafSpine { leaf_size: 4 },
            TopoKind::FatTree { k: 0 },
        ] {
            let t = build(kind, 1, 8);
            assert_eq!(
                t.min_latency(),
                cost().switch_latency + cost().propagation,
                "{kind}"
            );
        }
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(TopoKind::parse("flat").unwrap(), TopoKind::Flat);
        assert_eq!(
            TopoKind::parse("leaf-spine").unwrap(),
            TopoKind::LeafSpine { leaf_size: 8 }
        );
        assert_eq!(
            TopoKind::parse("leaf-spine:16").unwrap(),
            TopoKind::LeafSpine { leaf_size: 16 }
        );
        assert_eq!(
            TopoKind::parse("fat-tree").unwrap(),
            TopoKind::FatTree { k: 0 }
        );
        assert_eq!(
            TopoKind::parse("fat-tree:8").unwrap(),
            TopoKind::FatTree { k: 8 }
        );
        assert!(TopoKind::parse("fat-tree:3").is_err());
        assert!(TopoKind::parse("torus").is_err());
        assert!(TopoKind::parse("leaf-spine:0").is_err());
        // Display emits the fully parameterized spec and round-trips.
        for spec in [
            "flat",
            "leaf-spine:8",
            "leaf-spine:16",
            "fat-tree:auto",
            "fat-tree:8",
        ] {
            let kind = TopoKind::parse(spec).unwrap();
            assert_eq!(kind.to_string(), spec);
            assert_eq!(TopoKind::parse(&kind.to_string()).unwrap(), kind);
        }
    }
}
