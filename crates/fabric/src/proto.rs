//! The in-band rack-directory protocol.
//!
//! Federated SSDP: each machine's management bus already keeps a registry
//! of its own alive devices; the fabric controller periodically snapshots
//! every machine's registry into a rack-wide directory. Clients (the KVS
//! shard router) query the directory *in band* — a [`DirMsg::Query`] frame
//! sent to the machine's directory port — and receive a [`DirMsg::Reply`]
//! listing every rack endpoint, each already translated into a port that is
//! directly sendable *from the querying machine* (local devices keep their
//! edge-switch port; remote devices appear as that machine's proxy port).
//!
//! The codec is the management bus's strict [`wire`](lastcpu_bus::wire)
//! format: unknown tags and trailing bytes are errors, consistent with the
//! "buses are hardware" stance of the bus crate.

use lastcpu_bus::wire::{WireError, WireReader, WireWriter};

/// Magic prefix distinguishing directory frames from workload traffic.
pub const DIR_MAGIC: u16 = 0xD1DC;

/// One rack endpoint, as seen by the querying machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEndpoint {
    /// Qualified name: `"m{machine}/{device-name}"`.
    pub name: String,
    /// Device kind as registered on its home bus (e.g. `"smart-nic"`).
    pub kind: String,
    /// Home machine index.
    pub machine: u32,
    /// Port on the *querying* machine's edge switch that reaches this
    /// endpoint (the endpoint's own port if local, a fabric proxy port if
    /// remote).
    pub port: u32,
}

/// A directory message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirMsg {
    /// Ask for the current rack directory. `epoch_hint` is the epoch the
    /// client already has (0 for none); the reply carries the full
    /// directory either way, but the hint lets traces show staleness.
    Query {
        /// Directory epoch the querier last saw.
        epoch_hint: u64,
    },
    /// The rack directory at `epoch`.
    Reply {
        /// Monotone directory version; bumps whenever membership changes.
        epoch: u64,
        /// All known endpoints, ports pre-translated for the querier.
        endpoints: Vec<DirEndpoint>,
    },
}

impl DirMsg {
    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u16(DIR_MAGIC);
        match self {
            DirMsg::Query { epoch_hint } => {
                w.u8(1);
                w.varint(*epoch_hint);
            }
            DirMsg::Reply { epoch, endpoints } => {
                w.u8(2);
                w.varint(*epoch);
                w.varint(endpoints.len() as u64);
                for ep in endpoints {
                    w.string(&ep.name);
                    w.string(&ep.kind);
                    w.u32(ep.machine);
                    w.u32(ep.port);
                }
            }
        }
        w.finish()
    }

    /// Deserializes a message, rejecting trailing bytes and unknown tags.
    pub fn decode(buf: &[u8]) -> Result<DirMsg, WireError> {
        let mut r = WireReader::new(buf);
        let magic = r.u16()?;
        if magic != DIR_MAGIC {
            return Err(WireError::BadDiscriminant {
                what: "DirMsg.magic",
                value: magic as u64,
            });
        }
        let msg = match r.u8()? {
            1 => DirMsg::Query {
                epoch_hint: r.varint()?,
            },
            2 => {
                let epoch = r.varint()?;
                let n = r.varint()? as usize;
                let mut endpoints = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    endpoints.push(DirEndpoint {
                        name: r.string()?,
                        kind: r.string()?,
                        machine: r.u32()?,
                        port: r.u32()?,
                    });
                }
                DirMsg::Reply { epoch, endpoints }
            }
            t => {
                return Err(WireError::BadDiscriminant {
                    what: "DirMsg.tag",
                    value: t as u64,
                })
            }
        };
        r.expect_end()?;
        Ok(msg)
    }

    /// Whether `buf` looks like a directory frame (magic matches).
    pub fn sniff(buf: &[u8]) -> bool {
        buf.len() >= 2 && u16::from_le_bytes([buf[0], buf[1]]) == DIR_MAGIC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trips() {
        let m = DirMsg::Query { epoch_hint: 42 };
        assert_eq!(DirMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn reply_round_trips() {
        let m = DirMsg::Reply {
            epoch: 7,
            endpoints: vec![
                DirEndpoint {
                    name: "m0/nic0".into(),
                    kind: "smart-nic".into(),
                    machine: 0,
                    port: 3,
                },
                DirEndpoint {
                    name: "m1/nic0".into(),
                    kind: "smart-nic".into(),
                    machine: 1,
                    port: 9,
                },
            ],
        };
        assert_eq!(DirMsg::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = DirMsg::Query { epoch_hint: 0 }.encode();
        buf.push(0);
        assert!(DirMsg::decode(&buf).is_err());
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut buf = DirMsg::Query { epoch_hint: 0 }.encode();
        buf[0] ^= 0xFF;
        assert!(DirMsg::decode(&buf).is_err());
        assert!(!DirMsg::sniff(&buf));
    }

    #[test]
    fn sniff_matches_encoded_frames() {
        assert!(DirMsg::sniff(&DirMsg::Query { epoch_hint: 1 }.encode()));
        assert!(!DirMsg::sniff(b"k"));
        assert!(!DirMsg::sniff(b""));
    }
}
