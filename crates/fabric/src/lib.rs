//! `lastcpu-fabric`: rack-scale co-simulation of CPU-less machines.
//!
//! The paper's end-to-end example exposes a KVS "to other machines over the
//! network" (§3); every experiment through E9 nevertheless ran a *single*
//! emulated machine behind one edge switch. This crate supplies the missing
//! scale-out dimension: a [`Fabric`] instantiates N independent
//! [`lastcpu_core::System`] machines under one deterministic global clock,
//! connects their NICs through modeled inter-machine links, and federates
//! SSDP-style discovery so a service registered on one machine is routable
//! from any other.
//!
//! Three design decisions keep the co-simulation bit-identical from a seed:
//!
//! 1. **Conservative interleaving.** The fabric advances whichever event —
//!    its own (link deliveries, directory syncs, fault injections) or any
//!    machine's — is globally earliest, one event at a time. Ties break
//!    fabric-first, then by ascending machine index. Machines interact
//!    *only* through fabric-delivered frames, which always pay at least one
//!    link latency, so no machine can observe another's same-instant state.
//! 2. **Transparent tunnels.** Each machine's edge switch grows fabric-owned
//!    *proxy ports*, one per remote peer the machine talks to. A frame sent
//!    to a proxy port crosses the inter-machine link (per-link line-rate
//!    serialization on both the uplink and the downlink, spine latency,
//!    propagation — the same [`NetCostModel`] semantics the edge switch
//!    uses) and re-enters the remote machine with its source rewritten to
//!    the *remote* machine's proxy port for the original sender. Replies
//!    are symmetric, so unmodified device firmware (the smart-NIC KVS app)
//!    serves remote clients without knowing the rack exists.
//! 3. **Rack-unique correlation ids.** Machine `m` allocates correlation
//!    ids from base `(m+1) << 40`, and the fabric threads the id through
//!    inter-machine frames, so a merged Chrome trace spans machines without
//!    aliasing.
//!
//! Whole-machine faults reuse the PR-2 [`lastcpu_sim::FaultPlan`] with
//! machine names (`"m3"`) as targets: `Drop`/`Delay` apply to that
//! machine's links, `Crash`/`Hang` kill the machine outright (the fabric
//! stops stepping it and drops its traffic), which is what the E10
//! fail-over scenario measures.
//!
//! [`HashRing`] — the consistent-hash ring the KVS shard router builds over
//! discovered endpoints — lives here too, so placement policy and fabric
//! evolve together.
//!
//! [`NetCostModel`]: lastcpu_net::NetCostModel

pub mod fabric;
pub mod proto;
pub mod ring;

pub use fabric::{DirEntry, Fabric, FabricConfig, MachineId};
pub use proto::{DirEndpoint, DirMsg};
pub use ring::HashRing;
