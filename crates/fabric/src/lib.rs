//! `lastcpu-fabric`: rack-scale co-simulation of CPU-less machines.
//!
//! The paper's end-to-end example exposes a KVS "to other machines over the
//! network" (§3); every experiment through E9 nevertheless ran a *single*
//! emulated machine behind one edge switch. This crate supplies the missing
//! scale-out dimension: a [`Fabric`] instantiates N independent
//! [`lastcpu_core::System`] machines under one deterministic global clock,
//! connects their NICs through modeled inter-machine links, and federates
//! SSDP-style discovery so a service registered on one machine is routable
//! from any other.
//!
//! Three design decisions keep the co-simulation bit-identical from a seed:
//!
//! 1. **Conservative time windows.** Machines interact *only* through
//!    fabric-delivered frames, which always pay at least one link latency
//!    (and directory replies at least `dir_latency`). The fabric therefore
//!    advances in windows no longer than that minimum — the *lookahead* —
//!    within which every machine is provably independent and steps its own
//!    events freely; at each window edge a serial barrier merges the
//!    machines' tunnel output in `(timestamp, machine, production-order)`
//!    order and crosses the links. Directory sweeps and scheduled faults
//!    are control points that additionally cap windows, so they observe a
//!    globally consistent instant. Because the *same* windowed schedule
//!    runs whether machines step on one thread or on
//!    [`FabricConfig::threads`] workers, any thread count replays
//!    bit-identically from a seed — parallelism changes wall-clock time,
//!    never results.
//! 2. **Transparent tunnels over an explicit topology.** Each machine's
//!    edge switch grows fabric-owned *proxy ports*, one per remote peer the
//!    machine talks to. A frame sent to a proxy port crosses the
//!    inter-machine fabric — walking the per-pair path the configured
//!    [`Topology`] (flat single-spine, leaf-spine, or k-ary fat-tree)
//!    chose, queuing at line rate on every link it crosses with the same
//!    [`NetCostModel`] serialization semantics the edge switch uses — and
//!    re-enters the remote machine with its source rewritten to the
//!    *remote* machine's proxy port for the original sender. Replies are
//!    symmetric, so unmodified device firmware (the smart-NIC KVS app)
//!    serves remote clients without knowing the rack exists. Path choice
//!    is deterministic ECMP (a hash of `(src, dst, seed)`), so per-pair
//!    ordering and bit-identical replay survive path diversity; see
//!    [`topology`] for the cost model and docs/TOPOLOGY.md for the full
//!    derivation.
//! 3. **Rack-unique correlation ids.** Machine `m` allocates correlation
//!    ids from base `(m+1) << 40`, and the fabric threads the id through
//!    inter-machine frames, so a merged Chrome trace spans machines without
//!    aliasing.
//!
//! Whole-machine faults reuse the PR-2 [`lastcpu_sim::FaultPlan`] with
//! machine names (`"m3"`) as targets: `Drop`/`Delay` apply to that
//! machine's links, `Crash`/`Hang` kill the machine outright (the fabric
//! stops stepping it and drops its traffic), which is what the E10
//! fail-over scenario measures.
//!
//! [`HashRing`] — the consistent-hash ring the KVS shard router builds over
//! discovered endpoints — lives here too, so placement policy and fabric
//! evolve together.
//!
//! [`NetCostModel`]: lastcpu_net::NetCostModel

pub mod fabric;
pub mod proto;
pub mod ring;
pub mod topology;

pub use fabric::{DirEntry, Fabric, FabricConfig, MachineId};
pub use proto::{DirEndpoint, DirMsg};
pub use ring::HashRing;
pub use topology::{LinkStats, TopoKind, Topology, TopologyConfig, Transit};
