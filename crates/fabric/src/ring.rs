//! Consistent-hash ring over named endpoints.
//!
//! The shard router places keys on rack endpoints with a classic
//! virtual-node consistent-hash ring. Determinism matters more here than
//! raw speed — the ring must be identical on every machine that builds it
//! from the same membership, *regardless of the order* endpoints were
//! discovered in — so the ring keeps its member list sorted by name and
//! rebuilds its point table on every membership change (memberships are
//! tiny: a handful of machines times a few services).
//!
//! Hash function: FNV-1a 64 with a 64-bit avalanche finalizer
//! (dependency-free, stable across platforms). Plain FNV-1a is a poor ring
//! hash: workload keys differ only in their trailing digits, and FNV's
//! last-byte mixing leaves such inputs clustered in a tiny arc of the
//! 64-bit space (a 40-key `key000000NN` set spans ~0.02% of the ring and
//! lands on one member). The finalizer (the murmur3/splitmix fmix step)
//! restores avalanche so sequential keys spread uniformly.

/// FNV-1a 64-bit hash of `bytes`, finalized for avalanche.
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A consistent-hash ring with virtual nodes.
///
/// Each member contributes `vnodes` points at `hash("{name}#{v}")`; a key
/// owns the first point clockwise from `hash(key)`. [`HashRing::replicas`]
/// continues clockwise collecting *distinct* members, which is how the KVS
/// picks an R-way replica set.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: u32,
    /// Member names, kept sorted (insertion-order independence).
    nodes: Vec<String>,
    /// `(point_hash, index into nodes)`, sorted by `(hash, index)`.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// An empty ring with `vnodes` virtual nodes per member (min 1).
    pub fn new(vnodes: u32) -> Self {
        HashRing {
            vnodes: vnodes.max(1),
            nodes: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Member names, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a member; returns false if it was already present.
    pub fn insert(&mut self, name: &str) -> bool {
        match self.nodes.binary_search_by(|n| n.as_str().cmp(name)) {
            Ok(_) => false,
            Err(pos) => {
                self.nodes.insert(pos, name.to_string());
                self.rebuild();
                true
            }
        }
    }

    /// Removes a member; returns false if it was absent.
    pub fn remove(&mut self, name: &str) -> bool {
        match self.nodes.binary_search_by(|n| n.as_str().cmp(name)) {
            Ok(pos) => {
                self.nodes.remove(pos);
                self.rebuild();
                true
            }
            Err(_) => false,
        }
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for (idx, name) in self.nodes.iter().enumerate() {
            for v in 0..self.vnodes {
                let point = hash64(format!("{name}#{v}").as_bytes());
                self.points.push((point, idx));
            }
        }
        self.points.sort_unstable();
    }

    /// The member owning `key`, or `None` if the ring is empty.
    pub fn primary(&self, key: &[u8]) -> Option<&str> {
        self.replicas(key, 1).into_iter().next()
    }

    /// Up to `r` distinct members for `key`, clockwise from its hash: the
    /// first entry is the primary, the rest are replicas in fail-over
    /// order.
    pub fn replicas(&self, key: &[u8], r: usize) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        if self.points.is_empty() || r == 0 {
            return out;
        }
        let h = hash64(key);
        // First point clockwise from `h`; wrap past the last point to 0.
        let mut start = self.points.partition_point(|&(p, _)| p < h);
        if start == self.points.len() {
            start = 0;
        }
        let want = r.min(self.nodes.len());
        for off in 0..self.points.len() {
            let (_, idx) = self.points[(start + off) % self.points.len()];
            let name = self.nodes[idx].as_str();
            if !out.contains(&name) {
                out.push(name);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

impl lastcpu_snap::Snapshot for HashRing {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u32(self.vnodes);
        // `points` is fully derivable from `nodes`, but serializing it keeps
        // restore recomputation-free and lets verification cover it.
        w.put_len(self.nodes.len());
        for n in &self.nodes {
            w.put_str(n);
        }
        w.put_len(self.points.len());
        for (h, i) in &self.points {
            w.put_u64(*h);
            w.put_len(*i);
        }
    }
}

impl lastcpu_snap::Restore for HashRing {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.vnodes = r.u32()?;
        let n = r.len()?;
        self.nodes = Vec::with_capacity(n);
        for _ in 0..n {
            self.nodes.push(r.str()?);
        }
        let np = r.len()?;
        self.points = Vec::with_capacity(np);
        for _ in 0..np {
            let h = r.u64()?;
            let i = r.len()?;
            if i >= n {
                return Err(r.corrupt(format!("ring point references node {i} of {n}")));
            }
            self.points.push((h, i));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    #[test]
    fn empty_ring_has_no_owner() {
        let ring = HashRing::new(64);
        assert!(ring.primary(b"x").is_none());
        assert!(ring.replicas(b"x", 3).is_empty());
    }

    #[test]
    fn single_node_owns_everything() {
        let mut ring = HashRing::new(64);
        ring.insert("m0/kvs");
        for i in 0..100 {
            assert_eq!(ring.primary(&key(i)), Some("m0/kvs"));
        }
    }

    #[test]
    fn replicas_are_distinct_and_ordered() {
        let mut ring = HashRing::new(64);
        for m in 0..4 {
            ring.insert(&format!("m{m}/kvs"));
        }
        for i in 0..200 {
            let reps = ring.replicas(&key(i), 3);
            assert_eq!(reps.len(), 3);
            let mut uniq = reps.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas must be distinct");
            assert_eq!(reps[0], ring.primary(&key(i)).unwrap());
        }
    }

    #[test]
    fn replicas_clamped_to_membership() {
        let mut ring = HashRing::new(16);
        ring.insert("a");
        ring.insert("b");
        assert_eq!(ring.replicas(b"k", 5).len(), 2);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let names = ["m2/kvs", "m0/kvs", "m3/kvs", "m1/kvs"];
        let mut fwd = HashRing::new(64);
        for n in names {
            fwd.insert(n);
        }
        let mut rev = HashRing::new(64);
        for n in names.iter().rev() {
            rev.insert(n);
        }
        for i in 0..500 {
            assert_eq!(fwd.replicas(&key(i), 3), rev.replicas(&key(i), 3));
        }
    }

    #[test]
    fn removal_only_moves_keys_owned_by_the_removed_node() {
        let mut ring = HashRing::new(64);
        for m in 0..5 {
            ring.insert(&format!("m{m}/kvs"));
        }
        let before: Vec<_> = (0..500)
            .map(|i| ring.primary(&key(i)).unwrap().to_string())
            .collect();
        ring.remove("m2/kvs");
        for (i, prev) in before.iter().enumerate() {
            let now = ring.primary(&key(i as u64)).unwrap();
            if prev != "m2/kvs" {
                assert_eq!(now, prev, "key {i} moved although its owner survived");
            } else {
                assert_ne!(now, "m2/kvs");
            }
        }
    }
}
