//! The rack fabric: N machines, one clock, modeled inter-machine links.

use std::collections::HashMap;

use lastcpu_core::{System, TunnelDelivery};
use lastcpu_net::{Frame, NetCostModel, PortId};
use lastcpu_sim::{
    profile, CorrId, CounterHandle, EventQueue, FaultEvent, FaultKind, FaultPlan, GaugeHandle,
    MetricsHub, SimDuration, SimTime, TraceData, TraceSink,
};

use crate::proto::{DirEndpoint, DirMsg};
use crate::topology::{Topology, TopologyConfig};

/// A machine's index in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u32);

/// Fabric configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Seed for fabric-level randomness (reserved; the fabric itself is
    /// currently fully deterministic, but the seed participates in trace
    /// metadata and future jittered links).
    pub seed: u64,
    /// Number of OS worker threads that step machines inside each
    /// conservative time window. `1` (the default) runs every machine on
    /// the calling thread; any value shares the *same* windowed schedule,
    /// so results — merged traces, metrics, per-machine pool activity —
    /// are bit-identical across thread counts.
    pub threads: usize,
    /// Inter-machine link timing. Defaults model 25 GbE wires: 40 ps/B
    /// line rate on every link, 600 ns store-and-forward switch latency,
    /// 2 µs end-to-end propagation.
    pub link_cost: NetCostModel,
    /// The rack wiring graph (flat single-spine, leaf-spine, or k-ary
    /// fat-tree) plus the oversubscription ratio. The graph is built at
    /// [`Fabric::power_on`], when the machine count is known.
    pub topology: TopologyConfig,
    /// Period of the directory synchronization sweep (federated SSDP).
    pub sync_interval: SimDuration,
    /// Latency of an in-band directory query answer (the controller sits
    /// on the spine, one hop away).
    pub dir_latency: SimDuration,
    /// Optional whole-machine fault schedule. Targets are machine names
    /// (`"m0"`, `"m1"`, …): `Drop`/`Delay` act on that machine's links,
    /// `Crash`/`Hang` kill the machine.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            seed: 0xFAB,
            threads: 1,
            link_cost: NetCostModel {
                per_byte_ps: 40,
                switch_latency: SimDuration::from_nanos(600),
                propagation: SimDuration::from_micros(2),
            },
            topology: TopologyConfig::default(),
            sync_interval: SimDuration::from_micros(250),
            dir_latency: SimDuration::from_nanos(500),
            fault_plan: None,
        }
    }
}

/// One rack-directory entry (home-machine view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Home machine.
    pub machine: u32,
    /// Qualified name: `"m{machine}/{device-name}"`.
    pub name: String,
    /// Device kind from the home bus registry.
    pub kind: String,
    /// The endpoint's port on its home machine's edge switch.
    pub port: PortId,
}

/// The far side of a proxy port: a specific port on a specific machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RemotePeer {
    machine: u32,
    port: PortId,
}

/// Per-machine link fault state (consumed counts, like the bus layer).
#[derive(Debug, Default)]
struct LinkFaults {
    drop_remaining: u32,
    delay_remaining: u32,
    delay_extra: SimDuration,
}

struct MachineSlot {
    name: String,
    sys: System,
    dead: bool,
    /// Proxy ports on this machine's edge switch, by remote peer.
    proxy: HashMap<RemotePeer, PortId>,
    /// Reverse map: local tunnel port -> the remote peer it represents.
    proxy_rev: HashMap<PortId, RemotePeer>,
    /// Tunnel port answering in-band directory queries.
    dir_port: PortId,
    faults: LinkFaults,
    link_bytes: CounterHandle,
    link_frames: CounterHandle,
    /// Tunnel output drained at the end of each window — a per-machine
    /// scratch buffer reused across windows so the steady-state barrier
    /// allocates nothing.
    pending: Vec<TunnelDelivery>,
    /// Events this machine processed in the last window (filled by the
    /// worker that stepped it; summed at the barrier).
    window_steps: u64,
}

/// A frame that finished crossing an inter-machine link (or a directory
/// reply) and enters `machine`'s edge switch at its scheduled time.
struct LinkDelivery {
    machine: usize,
    frame: Frame,
    corr: CorrId,
}

/// Hands a disjoint chunk of machines to one worker thread for a window.
///
/// `MachineSlot` is not `Send`: a machine's `System` holds `Rc`-based
/// metrics/trace handles, and the slot itself carries handles into the
/// fabric's hub. Sending is still sound here because (a) each slot is
/// visited by exactly one worker per window and `&mut` access is exclusive,
/// (b) a `System`'s `Rc` graph is confined to that machine — `System::new`
/// builds its own hub and sink, and device handles never cross machines —
/// and (c) the fabric-hub handles on the slot are neither cloned, dropped,
/// nor read during a window (they are only touched by `forward`, which runs
/// serially at barriers while no worker is live; `thread::scope` parks the
/// owning thread until every worker exits).
struct SendSlots<'a>(&'a mut [MachineSlot]);
// SAFETY: see the struct docs — exclusive per-window slot ownership plus
// machine-confined Rc graphs make the cross-thread move race-free.
unsafe impl Send for SendSlots<'_> {}

/// Steps one machine through the conservative window `[.., w_end)`, then
/// drains its tunnel output into its own scratch. Runs on a worker thread
/// when the fabric is configured with `threads > 1`.
fn run_machine_window(slot: &mut MachineSlot, w_end: SimTime) {
    slot.window_steps = 0;
    if slot.dead {
        return;
    }
    while let Some(t) = slot.sys.peek_next_at() {
        if t >= w_end {
            break;
        }
        slot.sys.step();
        slot.window_steps += 1;
    }
    let MachineSlot { sys, pending, .. } = slot;
    sys.drain_tunnel_into(pending);
}

/// N CPU-less machines co-simulated under one deterministic clock.
///
/// See the crate docs for the interleaving and tunneling model. Typical
/// assembly:
///
/// ```ignore
/// let mut fab = Fabric::new(FabricConfig::default());
/// let m0 = fab.add_machine("m0", system0);
/// let m1 = fab.add_machine("m1", system1);
/// fab.power_on();
/// fab.run_for(SimDuration::from_millis(10));
/// ```
pub struct Fabric {
    cfg: FabricConfig,
    machines: Vec<MachineSlot>,
    /// Frames in flight between machines. Unlike machine events, these are
    /// *injections*: they only need to reach the target machine before its
    /// window covers their timestamp, so they are folded into window starts
    /// rather than bounding the windows.
    queue: EventQueue<LinkDelivery>,
    now: SimTime,
    directory: Vec<DirEntry>,
    dir_epoch: u64,
    /// When the next directory sweep is due (periodic; `None` before
    /// power-on). Sweeps read global machine state, so they are control
    /// points: every window is capped at the next one.
    next_sync: Option<SimTime>,
    /// The fault plan, sorted by firing time; `fault_cursor` marks the next
    /// one due. Faults are control points like sweeps.
    faults: Vec<FaultEvent>,
    fault_cursor: usize,
    /// The built link graph + per-pair path table. Rebuilt at
    /// [`power_on`](Self::power_on) once the machine count is known; the
    /// placeholder built at construction covers zero machines.
    topo: Topology,
    /// Barrier merge scratch, reused across windows.
    merge_scratch: Vec<(u32, TunnelDelivery)>,
    /// Per-(src, dst) traffic coalesced inside the current barrier and
    /// flushed to the metric counters once per window, so counter-handle
    /// traffic stays flat as machine count (and frames per window) grows.
    pair_scratch: HashMap<(u32, u32), (u64, u64)>,
    /// Flush scratch for `pair_scratch` (sorted for a deterministic, if
    /// commutative, flush order), reused across windows.
    pair_flush: Vec<((u32, u32), (u64, u64))>,
    metrics: MetricsHub,
    /// Fabric-level trace (link-hop timing records). Off by default so the
    /// throughput experiments pay only a branch per forwarded frame.
    trace: TraceSink,
    // Pre-registered fabric metrics.
    m_frames_forwarded: CounterHandle,
    m_frames_dropped: CounterHandle,
    m_frames_delayed: CounterHandle,
    m_bytes: CounterHandle,
    m_dir_queries: CounterHandle,
    m_dir_syncs: CounterHandle,
    m_dir_removals: CounterHandle,
    m_faults_applied: CounterHandle,
    g_dir_epoch: GaugeHandle,
    g_machines_dead: GaugeHandle,
}

impl Fabric {
    /// An empty fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        let metrics = MetricsHub::new();
        let m_frames_forwarded = metrics.counter_handle("fabric.frames_forwarded");
        let m_frames_dropped = metrics.counter_handle("fabric.frames_dropped");
        let m_frames_delayed = metrics.counter_handle("fabric.frames_delayed");
        let m_bytes = metrics.counter_handle("fabric.bytes");
        let m_dir_queries = metrics.counter_handle("fabric.dir.queries");
        let m_dir_syncs = metrics.counter_handle("fabric.dir.syncs");
        let m_dir_removals = metrics.counter_handle("fabric.dir.removals");
        let m_faults_applied = metrics.counter_handle("fabric.faults_applied");
        let g_dir_epoch = metrics.gauge_handle("fabric.dir_epoch");
        let g_machines_dead = metrics.gauge_handle("fabric.machines_dead");
        let mut trace = TraceSink::default();
        trace.set_enabled(false);
        let topo = Topology::build(&cfg.topology, &cfg.link_cost, 0, cfg.seed);
        Fabric {
            cfg,
            topo,
            machines: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            directory: Vec::new(),
            dir_epoch: 0,
            next_sync: None,
            faults: Vec::new(),
            fault_cursor: 0,
            merge_scratch: Vec::new(),
            pair_scratch: HashMap::new(),
            pair_flush: Vec::new(),
            metrics,
            trace,
            m_frames_forwarded,
            m_frames_dropped,
            m_frames_delayed,
            m_bytes,
            m_dir_queries,
            m_dir_syncs,
            m_dir_removals,
            m_faults_applied,
            g_dir_epoch,
            g_machines_dead,
        }
    }

    /// The fabric's configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Fabric-level metrics (link/dir/fault counters; per-machine
    /// `fabric.link.m{i}.*`).
    pub fn metrics(&self) -> &MetricsHub {
        &self.metrics
    }

    /// Turns fabric link-hop tracing on or off. When on, every forwarded
    /// frame leaves one [`TraceData::LinkHop`] record carrying its
    /// uplink/spine/downlink timing split, which
    /// [`merged_trace`](Self::merged_trace) interleaves with the machine
    /// traces so the E12 critical-path analyzer can attribute cross-machine
    /// transit time to the actual link stages.
    pub fn set_link_tracing(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// Raises (or lowers) the link-hop trace retention bound; see
    /// [`TraceSink::set_capacity`].
    pub fn set_link_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    /// The fabric's own trace (link-hop records only).
    pub fn link_trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Current global virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Adds a machine. The fabric rebases the machine's correlation-id
    /// allocator to `(index + 1) << 40` so ids are rack-unique, and opens
    /// the machine's directory port.
    pub fn add_machine(&mut self, name: impl Into<String>, mut sys: System) -> MachineId {
        let idx = self.machines.len();
        sys.set_corr_base(((idx as u64) + 1) << 40);
        let dir_port = sys.add_tunnel_port();
        let link_bytes = self
            .metrics
            .counter_handle(&format!("fabric.link.m{idx}.bytes"));
        let link_frames = self
            .metrics
            .counter_handle(&format!("fabric.link.m{idx}.frames"));
        self.machines.push(MachineSlot {
            name: name.into(),
            sys,
            dead: false,
            proxy: HashMap::new(),
            proxy_rev: HashMap::new(),
            dir_port,
            faults: LinkFaults::default(),
            link_bytes,
            link_frames,
            pending: Vec::new(),
            window_steps: 0,
        });
        MachineId(idx as u32)
    }

    /// The machine's `System`.
    pub fn machine(&self, m: MachineId) -> &System {
        &self.machines[m.0 as usize].sys
    }

    /// The machine's `System`, mutably.
    pub fn machine_mut(&mut self, m: MachineId) -> &mut System {
        &mut self.machines[m.0 as usize].sys
    }

    /// The machine's name.
    pub fn machine_name(&self, m: MachineId) -> &str {
        &self.machines[m.0 as usize].name
    }

    /// Whether the machine has been killed.
    pub fn is_dead(&self, m: MachineId) -> bool {
        self.machines[m.0 as usize].dead
    }

    /// The port on machine `on` that answers [`DirMsg::Query`] frames.
    pub fn directory_port(&self, on: MachineId) -> PortId {
        self.machines[on.0 as usize].dir_port
    }

    /// Opens (or returns the existing) proxy port on machine `on` that
    /// tunnels to `(to, to_port)`. Frames a local host or device sends to
    /// the returned port cross the inter-machine link and arrive at
    /// `to_port` on machine `to`, with their source rewritten to the
    /// symmetric proxy so replies find their way back.
    pub fn open_tunnel(&mut self, on: MachineId, to: MachineId, to_port: PortId) -> PortId {
        self.proxy_port(on.0 as usize, to.0, to_port)
    }

    /// The current rack directory snapshot.
    pub fn directory(&self) -> &[DirEntry] {
        &self.directory
    }

    /// The directory epoch (bumps on membership change).
    pub fn dir_epoch(&self) -> u64 {
        self.dir_epoch
    }

    /// Kills a whole machine: the fabric stops stepping it and drops all
    /// traffic to or from it. The next directory sweep withdraws its
    /// endpoints, which is what remote routers fail over on.
    pub fn kill_machine(&mut self, m: MachineId) {
        let slot = &mut self.machines[m.0 as usize];
        if !slot.dead {
            slot.dead = true;
            self.g_machines_dead.add(1);
        }
    }

    /// Sets the number of worker threads used inside each conservative time
    /// window (equivalent to [`FabricConfig::threads`]). Any value produces
    /// bit-identical results; more threads only change wall-clock time.
    pub fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads.max(1);
    }

    /// The built rack topology (graph, per-pair paths, per-link counters).
    /// Before [`power_on`](Self::power_on) this is a zero-machine
    /// placeholder.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Powers on every machine, builds the rack topology for the final
    /// machine count, arms the directory sweep, and sorts the fault plan
    /// into its firing order.
    pub fn power_on(&mut self) {
        for slot in &mut self.machines {
            slot.sys.power_on();
        }
        self.topo = Topology::build(
            &self.cfg.topology,
            &self.cfg.link_cost,
            self.machines.len(),
            self.cfg.seed,
        );
        self.next_sync = Some(self.now);
        if let Some(plan) = self.cfg.fault_plan.clone() {
            self.faults.extend(plan.events());
            // Stable by firing time: equal-time faults keep plan order.
            self.faults.sort_by_key(|ev| ev.at);
        }
    }

    /// The conservative lookahead: the minimum virtual time any machine's
    /// output needs before it can influence a machine again (itself
    /// included). Inter-machine frames pay at least the cheapest path's
    /// total fixed latency (the topology's minimum over all machine
    /// pairs — `switch_latency + propagation` for any two-hop path);
    /// directory replies return after `dir_latency`. Machines are mutually
    /// invisible inside any window shorter than this, which is what lets a
    /// window run them concurrently.
    fn lookahead(&self) -> SimDuration {
        let l = self.topo.min_latency().min(self.cfg.dir_latency);
        assert!(
            l > SimDuration::ZERO,
            "windowed fabric execution needs a nonzero minimum link latency \
             (every path's latency sum, and dir_latency, must be > 0)"
        );
        l
    }

    /// Runs the co-simulation until `deadline`; returns events processed
    /// (fabric events + machine events).
    ///
    /// Execution is windowed and conservative: time advances in windows of
    /// at most one lookahead (the minimum cross-machine link latency:
    /// serialization plus propagation), capped at the next
    /// directory sweep or scheduled fault (which must observe a globally
    /// consistent instant). Within a window every machine is independent —
    /// frames produced inside it cannot be delivered before the window
    /// ends — so machines step concurrently on
    /// [`FabricConfig::threads`] workers, then a serial barrier merges
    /// their tunnel output in `(timestamp, machine, production-order)`
    /// order and crosses the links. `threads = 1` runs the *same* schedule
    /// inline, so any thread count replays bit-identically from a seed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let lookahead = self.lookahead();
        let mut n = 0u64;
        loop {
            // Earliest actionable instant across control points (sweep,
            // fault), in-flight link deliveries, and machine events.
            let mut t0: Option<SimTime> = self.queue.peek_time();
            let mut fold = |t: Option<SimTime>| {
                t0 = match (t0, t) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            };
            fold(self.next_sync);
            fold(self.faults.get(self.fault_cursor).map(|ev| ev.at));
            for slot in &mut self.machines {
                if slot.dead {
                    continue;
                }
                let t = slot.sys.peek_next_at();
                fold(t);
            }
            let Some(t0) = t0 else { break };
            if t0 > deadline {
                break;
            }
            self.now = t0;

            // Control points due exactly now, with every machine parked on
            // events < t0 — the same consistency the old event-at-a-time
            // interleaving gave them (fabric-first tie-break).
            if self.next_sync == Some(t0) {
                self.sync_directory(t0);
                n += 1;
            }
            while self
                .faults
                .get(self.fault_cursor)
                .is_some_and(|ev| ev.at == t0)
            {
                self.apply_fault(self.fault_cursor);
                self.fault_cursor += 1;
                n += 1;
            }

            // The window: one lookahead, capped at the next control point
            // and (inclusively) the deadline.
            let mut w_end =
                (t0 + lookahead).min(deadline.saturating_add(SimDuration::from_nanos(1)));
            if let Some(t) = self.next_sync {
                w_end = w_end.min(t);
            }
            if let Some(ev) = self.faults.get(self.fault_cursor) {
                w_end = w_end.min(ev.at);
            }

            // Inject every link delivery landing inside the window. All of
            // them were scheduled at earlier barriers: anything produced in
            // *this* window arrives at `>= t0 + lookahead >= w_end`, and no
            // machine has advanced past its injection time yet.
            while self.queue.peek_time().is_some_and(|t| t < w_end) {
                let ev = self.queue.pop().expect("peeked event vanished");
                let d = ev.event;
                if self.machines[d.machine].dead {
                    self.m_frames_dropped.incr();
                } else {
                    self.machines[d.machine]
                        .sys
                        .inject_frame(ev.at, d.frame, d.corr);
                }
                n += 1;
            }

            // Step every machine through [t0, w_end) — concurrently when
            // configured — then merge and forward their tunnel output.
            n += self.run_window(w_end);
            self.barrier();
        }
        self.now = self.now.max(deadline);
        n
    }

    /// Steps every machine through its events `< w_end`, on
    /// [`FabricConfig::threads`] workers, and drains each machine's tunnel
    /// output into its per-machine scratch. Returns total events stepped.
    fn run_window(&mut self, w_end: SimTime) -> u64 {
        let threads = self.cfg.threads.max(1).min(self.machines.len().max(1));
        if threads <= 1 {
            for slot in &mut self.machines {
                run_machine_window(slot, w_end);
            }
        } else {
            let chunk = self.machines.len().div_ceil(threads);
            std::thread::scope(|s| {
                for part in self.machines.chunks_mut(chunk) {
                    let part = SendSlots(part);
                    s.spawn(move || {
                        // Rebind the whole wrapper: edition-2021 precise
                        // captures would otherwise capture only the inner
                        // `&mut [MachineSlot]`, sidestepping the `Send`
                        // wrapper.
                        let SendSlots(slots) = { part };
                        for slot in slots.iter_mut() {
                            run_machine_window(slot, w_end);
                        }
                    });
                }
            });
        }
        self.machines.iter().map(|s| s.window_steps).sum()
    }

    /// The serial barrier at a window's edge: merges every machine's tunnel
    /// output into one deterministic order — by `(timestamp, machine)`,
    /// stable, so each machine's own production order is preserved — and
    /// crosses the inter-machine links. Runs with no worker live, so it may
    /// touch all shared fabric state.
    fn barrier(&mut self) {
        let mut merged = std::mem::take(&mut self.merge_scratch);
        debug_assert!(merged.is_empty());
        for (i, slot) in self.machines.iter_mut().enumerate() {
            for d in slot.pending.drain(..) {
                merged.push((i as u32, d));
            }
        }
        merged.sort_by_key(|&(m, ref d)| (d.at, m));
        for (m, d) in merged.drain(..) {
            let i = m as usize;
            if d.port == self.machines[i].dir_port {
                self.answer_dir_query(i, d);
            } else if let Some(&peer) = self.machines[i].proxy_rev.get(&d.port) {
                self.forward(i, peer, d);
            } else {
                // A tunnel port the fabric does not know (cannot happen for
                // fabric-created ports; defensive).
                self.m_frames_dropped.incr();
            }
        }
        self.merge_scratch = merged;
        self.flush_link_metrics();
    }

    /// Flushes the per-(src, dst) traffic coalesced by `forward` during
    /// this barrier to the fabric and per-machine counters — one counter
    /// update per machine pair instead of one per frame. Totals are
    /// identical to per-frame accounting; only the update cadence changes.
    fn flush_link_metrics(&mut self) {
        if self.pair_scratch.is_empty() {
            return;
        }
        let mut flush = std::mem::take(&mut self.pair_flush);
        flush.extend(self.pair_scratch.drain());
        flush.sort_unstable_by_key(|&(pair, _)| pair);
        let (mut total_bytes, mut total_frames) = (0u64, 0u64);
        for &((a, b), (bytes, frames)) in &flush {
            self.machines[a as usize].link_bytes.add(bytes);
            self.machines[a as usize].link_frames.add(frames);
            self.machines[b as usize].link_bytes.add(bytes);
            self.machines[b as usize].link_frames.add(frames);
            total_bytes += bytes;
            total_frames += frames;
        }
        self.m_bytes.add(total_bytes);
        self.m_frames_forwarded.add(total_frames);
        flush.clear();
        self.pair_flush = flush;
    }

    /// Runs for `d` from the current global time.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.now + d;
        self.run_until(deadline)
    }

    /// A rack-wide trace: every machine's retained records merged into one
    /// sink, each source prefixed with its machine name (`"m1/bus"`), in
    /// global time order (ties by machine index — the interleaving order).
    ///
    /// Because [`add_machine`](Self::add_machine) rebases every machine's
    /// correlation-id allocator to a disjoint range, a correlation id is
    /// rack-unique, so exporting the merged sink with
    /// [`trace_chrome`](lastcpu_sim::export::trace_chrome) draws one async
    /// span per activity even when the activity hops machines: a request
    /// tunneled from `m0` to `m1` keeps its id across the link (the fabric
    /// carries it through [`TunnelDelivery`] and re-injects it) and its
    /// records on both machines merge into a single cross-machine span.
    pub fn merged_trace(&self) -> TraceSink {
        let total: usize = self
            .machines
            .iter()
            .map(|s| s.sys.trace().len())
            .sum::<usize>()
            + self.trace.len();
        let nmach = self.machines.len();
        let mut records: Vec<(usize, &lastcpu_sim::TraceRecord)> = Vec::with_capacity(total);
        for (m, slot) in self.machines.iter().enumerate() {
            records.extend(slot.sys.trace().events().map(|r| (m, r)));
        }
        // Fabric link-hop records sort after same-time machine records.
        records.extend(self.trace.events().map(|r| (nmach, r)));
        records.sort_by_key(|&(m, r)| (r.at, m));
        let mut out = TraceSink::bounded(total.max(1));
        for (m, r) in records {
            if m == nmach {
                out.emit_data(r.at, r.source.clone(), r.corr, r.data.clone());
            } else {
                out.emit_data(
                    r.at,
                    format!("{}/{}", self.machines[m].name, r.source),
                    r.corr,
                    r.data.clone(),
                );
            }
        }
        out
    }

    // --- internals --------------------------------------------------------

    fn proxy_port(&mut self, on: usize, machine: u32, port: PortId) -> PortId {
        let peer = RemotePeer { machine, port };
        if let Some(&p) = self.machines[on].proxy.get(&peer) {
            return p;
        }
        let p = self.machines[on].sys.add_tunnel_port();
        self.machines[on].proxy.insert(peer, p);
        self.machines[on].proxy_rev.insert(p, peer);
        p
    }

    /// Crosses the inter-machine link from `a` to `peer.machine`.
    fn forward(&mut self, a: usize, peer: RemotePeer, d: TunnelDelivery) {
        let _prof = profile::span("fabric.forward");
        let b = peer.machine as usize;
        if self.machines[a].dead || self.machines[b].dead {
            self.m_frames_dropped.incr();
            return;
        }
        // Link faults: a `Drop` on either endpoint consumes the frame; a
        // `Delay` on either endpoint adds its extra latency.
        if self.machines[a].faults.drop_remaining > 0 {
            self.machines[a].faults.drop_remaining -= 1;
            self.m_frames_dropped.incr();
            return;
        }
        if self.machines[b].faults.drop_remaining > 0 {
            self.machines[b].faults.drop_remaining -= 1;
            self.m_frames_dropped.incr();
            return;
        }
        let mut extra = SimDuration::ZERO;
        if self.machines[a].faults.delay_remaining > 0 {
            self.machines[a].faults.delay_remaining -= 1;
            extra = extra.saturating_add(self.machines[a].faults.delay_extra);
        }
        if self.machines[b].faults.delay_remaining > 0 {
            self.machines[b].faults.delay_remaining -= 1;
            extra = extra.saturating_add(self.machines[b].faults.delay_extra);
        }
        if extra > SimDuration::ZERO {
            self.m_frames_delayed.incr();
        }
        // Timing: walk the frame across its topology path — first hop off
        // `a`, any fabric hops ECMP chose for this pair, last hop into `b` —
        // queuing at line rate on every link it crosses.
        let wire = d.frame.wire_len();
        let t = self.topo.transit(a, b, wire, d.at);
        let deliver = t.deliver + extra;
        // Attribution: the three stage durations below sum exactly to
        // `deliver - d.at` (first-hop queue+tx, all middle hops and fixed
        // latencies plus fault delay, last-hop queue+tx), so the E12
        // analyzer's hop split can never exceed the observed transit window
        // it is matched against.
        let uplink_ns = t.uplink_ns;
        let spine_ns = t.spine_ns + extra.as_nanos();
        let downlink_ns = t.downlink_ns;
        profile::charge_sim_to("fabric.uplink", uplink_ns);
        profile::charge_sim_to("fabric.spine", spine_ns);
        profile::charge_sim_to("fabric.downlink", downlink_ns);
        if self.trace.is_enabled() {
            self.trace.emit_data(
                deliver,
                "fabric",
                d.corr,
                TraceData::LinkHop {
                    src_machine: a,
                    dst_machine: b,
                    bytes: wire,
                    uplink_ns,
                    spine_ns,
                    downlink_ns,
                },
            );
        }
        // The frame re-enters b with its source rewritten to b's proxy for
        // the original sender, so replies tunnel back symmetrically.
        let src_on_b = self.proxy_port(b, a as u32, d.frame.src);
        let frame = Frame::unicast(src_on_b, peer.port, d.frame.payload);
        // Coalesce accounting per (src, dst) pair; the barrier flushes the
        // totals to the counters once per window.
        let e = self
            .pair_scratch
            .entry((a as u32, b as u32))
            .or_insert((0, 0));
        e.0 += wire;
        e.1 += 1;
        self.queue.schedule_at(
            deliver,
            LinkDelivery {
                machine: b,
                frame,
                corr: d.corr,
            },
        );
    }

    /// Answers an in-band directory query from machine `q`.
    fn answer_dir_query(&mut self, q: usize, d: TunnelDelivery) {
        self.m_dir_queries.incr();
        let Ok(DirMsg::Query { .. }) = DirMsg::decode(&d.frame.payload) else {
            self.m_frames_dropped.incr();
            return;
        };
        let snapshot = self.directory.clone();
        let mut endpoints = Vec::with_capacity(snapshot.len());
        for e in &snapshot {
            let port = if e.machine as usize == q {
                e.port
            } else {
                self.proxy_port(q, e.machine, e.port)
            };
            endpoints.push(DirEndpoint {
                name: e.name.clone(),
                kind: e.kind.clone(),
                machine: e.machine,
                port: port.0,
            });
        }
        let reply = DirMsg::Reply {
            epoch: self.dir_epoch,
            endpoints,
        }
        .encode();
        let frame = Frame::unicast(self.machines[q].dir_port, d.frame.src, reply);
        self.queue.schedule_at(
            d.at + self.cfg.dir_latency,
            LinkDelivery {
                machine: q,
                frame,
                corr: d.corr,
            },
        );
    }

    /// Rebuilds the rack directory from every alive machine's bus registry.
    fn sync_directory(&mut self, now: SimTime) {
        self.m_dir_syncs.incr();
        let mut fresh: Vec<DirEntry> = Vec::new();
        for (i, slot) in self.machines.iter().enumerate() {
            if slot.dead {
                continue;
            }
            let entries: Vec<(String, String, Option<PortId>)> = slot
                .sys
                .bus()
                .alive()
                .map(|e| (e.name.clone(), e.kind.clone(), slot.sys.port_of(e.id)))
                .collect();
            for (name, kind, port) in entries {
                if let Some(port) = port {
                    fresh.push(DirEntry {
                        machine: i as u32,
                        name: format!("m{i}/{name}"),
                        kind,
                        port,
                    });
                }
            }
        }
        let removed = self
            .directory
            .iter()
            .filter(|old| !fresh.iter().any(|n| n.name == old.name))
            .count() as u64;
        if removed > 0 {
            self.m_dir_removals.add(removed);
        }
        if fresh != self.directory {
            self.dir_epoch += 1;
            self.g_dir_epoch.set(self.dir_epoch as i64);
            self.directory = fresh;
        }
        self.next_sync = Some(now + self.cfg.sync_interval);
    }

    fn apply_fault(&mut self, idx: usize) {
        let ev = self.faults[idx].clone();
        let Some(m) = self.machines.iter().position(|s| s.name == ev.target) else {
            return;
        };
        self.m_faults_applied.incr();
        match ev.kind {
            FaultKind::Crash | FaultKind::Hang => self.kill_machine(MachineId(m as u32)),
            FaultKind::Drop { count } | FaultKind::Corrupt { count } => {
                // Corrupted inter-machine frames fail their FCS and are
                // dropped; both kinds consume frames on this machine's link.
                self.machines[m].faults.drop_remaining += count;
            }
            FaultKind::Delay { count, extra_ns } => {
                self.machines[m].faults.delay_remaining += count;
                self.machines[m].faults.delay_extra = SimDuration::from_nanos(extra_ns);
            }
            // Device-level faults have no whole-machine meaning here.
            FaultKind::SlowDown { .. } | FaultKind::IommuStorm { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Rack checkpoints
// ---------------------------------------------------------------------------

use lastcpu_snap::{Checkpoint, Manifest, SnapError, SnapWriter, Snapshot as _};

impl Fabric {
    /// Stable fingerprint of the rack recipe: fabric configuration plus
    /// every machine's name and its own builder fingerprint.
    ///
    /// `threads` is masked out of the configuration before hashing: the
    /// windowed schedule guarantees results are bit-identical across
    /// thread counts, so a checkpoint taken at `threads = 1` must be
    /// restorable — and byte-comparable — on a `threads = 4` fabric.
    pub fn config_fingerprint(&self) -> u64 {
        let masked = FabricConfig {
            threads: 1,
            ..self.cfg.clone()
        };
        let mut h = lastcpu_snap::fnv1a(format!("{masked:?}").as_bytes());
        for slot in &self.machines {
            lastcpu_snap::fnv1a_fold(&mut h, slot.name.as_bytes());
            lastcpu_snap::fnv1a_fold(&mut h, &slot.sys.config_fingerprint().to_le_bytes());
        }
        h
    }

    /// The fabric's own durable state: clock, directory, link occupancy,
    /// in-flight frame digest, proxy wiring, and per-machine link faults.
    fn fabric_section(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.now.as_nanos());
        w.put_u64(self.dir_epoch);
        w.put_opt(self.next_sync.as_ref(), |w, t| w.put_u64(t.as_nanos()));
        w.put_len(self.fault_cursor);
        w.put_len(self.faults.len());
        for f in &self.faults {
            w.put_u64(f.at.as_nanos());
            w.put_str(&f.target);
            f.kind.encode(&mut w);
        }
        // In-flight inter-machine deliveries, digested by full content.
        let mut entries = self.queue.entries();
        entries.sort_by_key(|(at, seq, _)| (*at, *seq));
        w.put_len(entries.len());
        let mut h = lastcpu_snap::fnv1a(b"links");
        for (at, seq, d) in &entries {
            let mut ew = SnapWriter::new();
            ew.put_u64(at.as_nanos());
            ew.put_u64(*seq);
            ew.put_len(d.machine);
            ew.put_u32(d.frame.src.0);
            ew.put_u32(d.frame.dst.0);
            ew.put_bytes(&d.frame.payload);
            ew.put_u64(d.corr.0);
            lastcpu_snap::fnv1a_fold(&mut h, &ew.into_bytes());
        }
        w.put_u64(h);
        w.put_u64(self.queue.events_processed());
        w.put_u64(self.queue.seq_cursor());
        w.put_len(self.directory.len());
        for e in &self.directory {
            w.put_u32(e.machine);
            w.put_str(&e.name);
            w.put_str(&e.kind);
            w.put_u32(e.port.0);
        }
        // Per-link queue cursors + traffic counters. The graph itself is a
        // pure function of the (fingerprinted) config and machine count, so
        // only dynamic state is serialized.
        self.topo.snapshot_state(&mut w);
        for slot in &self.machines {
            w.put_str(&slot.name);
            w.put_bool(slot.dead);
            w.put_u32(slot.dir_port.0);
            let mut proxies: Vec<(u32, u32, u32)> = slot
                .proxy
                .iter()
                .map(|(peer, local)| (peer.machine, peer.port.0, local.0))
                .collect();
            proxies.sort_unstable();
            w.put_len(proxies.len());
            for (pm, pp, lp) in proxies {
                w.put_u32(pm);
                w.put_u32(pp);
                w.put_u32(lp);
            }
            w.put_u32(slot.faults.drop_remaining);
            w.put_u32(slot.faults.delay_remaining);
            w.put_u64(slot.faults.delay_extra.as_nanos());
            // `pending` is drained at every barrier, so a checkpoint taken
            // between run calls sees it empty; serialized anyway so verify
            // would catch a checkpoint taken mid-window.
            w.put_len(slot.pending.len());
            for t in &slot.pending {
                w.put_u64(t.at.as_nanos());
                w.put_u32(t.port.0);
                w.put_u32(t.frame.src.0);
                w.put_u32(t.frame.dst.0);
                w.put_bytes(&t.frame.payload);
            }
            // `window_steps` is deliberately excluded: it is per-window
            // scratch for the executor's step accounting, and its value at
            // a barrier depends on how the window scheduler chunked work —
            // i.e. on the thread count — not on simulation state. Including
            // it would break cross-thread-count checkpoint identity.
        }
        w.into_bytes()
    }

    /// Serializes the whole rack: a `fabric` section (directory, links,
    /// in-flight frames), the fabric metrics and link trace, then one
    /// section per machine containing that machine's full encoded
    /// [`System::checkpoint`]. Take it between `run` calls — the rack is
    /// quiescent at those barriers.
    pub fn checkpoint(&self, label: &str) -> lastcpu_snap::Result<Checkpoint> {
        let manifest = Manifest {
            schema_version: lastcpu_snap::SCHEMA_VERSION,
            seed: self.cfg.seed,
            virtual_ns: self.now.as_nanos(),
            events: self.queue.events_processed(),
            config_fp: self.config_fingerprint(),
            label: label.to_string(),
        };
        let mut ck = Checkpoint::new(manifest);
        ck.add_section("fabric", self.fabric_section());
        ck.add_section("metrics", self.metrics.snapshot_bytes());
        ck.add_section("trace", self.trace.snapshot_bytes());
        for (i, slot) in self.machines.iter().enumerate() {
            let inner = slot.sys.checkpoint(&format!("{label}/{}", slot.name))?;
            ck.add_section(&format!("machine{i}"), inner.encode());
        }
        Ok(ck)
    }

    /// Byte-for-byte verification of the rack against `ck`.
    pub fn verify_checkpoint(&self, ck: &Checkpoint) -> lastcpu_snap::Result<()> {
        let mine = self.checkpoint(&ck.manifest.label)?;
        if let Some(detail) = ck.diff(&mine) {
            return Err(SnapError::VerifyMismatch {
                section: "rack".into(),
                detail,
            });
        }
        Ok(())
    }

    /// Restores this rack to the state captured in `ck`.
    ///
    /// The rack must be freshly built from the same recipe (checked via
    /// the manifest fingerprint) and powered on. Restore re-executes the
    /// windowed schedule to the checkpoint's virtual time — bit-identical
    /// across thread counts by the fabric's determinism contract — then
    /// verifies every section, including each machine's full checkpoint,
    /// byte-for-byte. Fails loudly on any divergence.
    pub fn restore_from(&mut self, ck: &Checkpoint) -> lastcpu_snap::Result<()> {
        if ck.manifest.schema_version != lastcpu_snap::SCHEMA_VERSION {
            return Err(SnapError::VersionMismatch {
                want: lastcpu_snap::SCHEMA_VERSION,
                got: ck.manifest.schema_version,
            });
        }
        if ck.manifest.config_fp != self.config_fingerprint() {
            return Err(SnapError::VerifyMismatch {
                section: "manifest".into(),
                detail: format!(
                    "config fingerprint mismatch: checkpoint {:#018x}, this rack {:#018x}",
                    ck.manifest.config_fp,
                    self.config_fingerprint()
                ),
            });
        }
        self.run_until(SimTime::from_nanos(ck.manifest.virtual_ns));
        self.verify_checkpoint(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastcpu_core::{HostCtx, NetHost, SystemConfig};

    /// Echoes every frame back to its source.
    struct Echo;
    impl NetHost for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn on_start(&mut self, _ctx: &mut HostCtx<'_>) {}
        fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Frame) {
            ctx.net_tx(frame.src, frame.payload);
        }
    }

    /// Sends one payload to `target` at start; records reply times.
    struct Pinger {
        target: PortId,
        payload: Vec<u8>,
        replies: Vec<(SimTime, Vec<u8>)>,
    }
    impl NetHost for Pinger {
        fn name(&self) -> &str {
            "pinger"
        }
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.net_tx(self.target, self.payload.clone());
        }
        fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: Frame) {
            self.replies.push((ctx.now, frame.payload.to_vec()));
        }
    }

    fn quiet_sys(seed: u64) -> System {
        System::new(SystemConfig {
            seed,
            ..SystemConfig::default()
        })
    }

    fn two_machine_ping(seed: u64) -> (SimTime, u64) {
        two_machine_ping_threads(seed, 1)
    }

    fn two_machine_ping_threads(seed: u64, threads: usize) -> (SimTime, u64) {
        let mut fab = Fabric::new(FabricConfig {
            threads,
            ..FabricConfig::default()
        });
        let m0 = fab.add_machine("m0", quiet_sys(seed));
        let m1 = fab.add_machine("m1", quiet_sys(seed + 1));
        let echo_port = fab.machine_mut(m1).add_host(Box::new(Echo));
        let tunnel = fab.open_tunnel(m0, m1, echo_port);
        let pinger = Pinger {
            target: tunnel,
            payload: vec![7; 64],
            replies: Vec::new(),
        };
        let ping_port = fab.machine_mut(m0).add_host(Box::new(pinger));
        fab.power_on();
        fab.run_for(SimDuration::from_millis(5));
        let host = fab
            .machine(m0)
            .host_as::<Pinger>(ping_port)
            .expect("pinger present");
        assert_eq!(host.replies.len(), 1, "exactly one echo reply");
        assert_eq!(host.replies[0].1, vec![7; 64]);
        (host.replies[0].0, fab.metrics().counter("fabric.bytes"))
    }

    #[test]
    fn cross_machine_echo_round_trips() {
        let (at, bytes) = two_machine_ping(11);
        // Two link crossings, each paying ≥ switch latency + propagation.
        assert!(at >= SimTime::from_nanos(2 * (600 + 2000)));
        assert_eq!(bytes, 2 * (64 + lastcpu_net::FRAME_OVERHEAD_BYTES));
    }

    #[test]
    fn co_simulation_is_deterministic() {
        assert_eq!(two_machine_ping(42), two_machine_ping(42));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // The windowed schedule is shared by every thread count, so the
        // reply time and link byte counts must be identical whether the
        // machines step inline or on worker threads.
        let base = two_machine_ping_threads(42, 1);
        for threads in [2, 4, 8] {
            assert_eq!(
                two_machine_ping_threads(42, threads),
                base,
                "threads={threads} diverged from single-thread run"
            );
        }
    }

    #[test]
    fn link_hops_are_traced_when_enabled() {
        let mut fab = Fabric::new(FabricConfig::default());
        let m0 = fab.add_machine("m0", quiet_sys(3));
        let m1 = fab.add_machine("m1", quiet_sys(4));
        let echo_port = fab.machine_mut(m1).add_host(Box::new(Echo));
        let tunnel = fab.open_tunnel(m0, m1, echo_port);
        fab.machine_mut(m0).add_host(Box::new(Pinger {
            target: tunnel,
            payload: vec![9; 64],
            replies: Vec::new(),
        }));
        fab.set_link_tracing(true);
        fab.power_on();
        fab.run_for(SimDuration::from_millis(5));
        let merged = fab.merged_trace();
        let hops: Vec<_> = merged
            .events()
            .filter_map(|r| match &r.data {
                TraceData::LinkHop {
                    src_machine,
                    dst_machine,
                    bytes,
                    uplink_ns,
                    spine_ns,
                    downlink_ns,
                } => Some((
                    *src_machine,
                    *dst_machine,
                    *bytes,
                    uplink_ns + spine_ns + downlink_ns,
                )),
                _ => None,
            })
            .collect();
        // Request hop m0 -> m1 and echo reply hop m1 -> m0.
        assert_eq!(hops.len(), 2, "hops: {hops:?}");
        assert_eq!((hops[0].0, hops[0].1), (0, 1));
        assert_eq!((hops[1].0, hops[1].1), (1, 0));
        let wire = 64 + lastcpu_net::FRAME_OVERHEAD_BYTES;
        let cost = &FabricConfig::default().link_cost;
        let expect = 2 * cost.serialize(wire).as_nanos()
            + cost.switch_latency.as_nanos()
            + cost.propagation.as_nanos();
        for h in &hops {
            assert_eq!(h.2, wire);
            // Uncontended links: the split is exactly 2×tx + switch + prop.
            assert_eq!(h.3, expect);
        }
    }

    #[test]
    fn link_tracing_is_off_by_default() {
        two_machine_ping(77); // exercises forward()
        let fab = Fabric::new(FabricConfig::default());
        assert!(!fab.link_trace().is_enabled());
        assert!(fab.link_trace().is_empty());
    }

    #[test]
    fn dead_machine_drops_traffic() {
        let mut fab = Fabric::new(FabricConfig::default());
        let m0 = fab.add_machine("m0", quiet_sys(1));
        let m1 = fab.add_machine("m1", quiet_sys(2));
        let echo_port = fab.machine_mut(m1).add_host(Box::new(Echo));
        let tunnel = fab.open_tunnel(m0, m1, echo_port);
        let ping_port = fab.machine_mut(m0).add_host(Box::new(Pinger {
            target: tunnel,
            payload: vec![1],
            replies: Vec::new(),
        }));
        fab.kill_machine(m1);
        fab.power_on();
        fab.run_for(SimDuration::from_millis(5));
        let host = fab.machine(m0).host_as::<Pinger>(ping_port).unwrap();
        assert!(host.replies.is_empty());
        assert!(fab.metrics().counter("fabric.frames_dropped") >= 1);
        assert_eq!(fab.metrics().gauge("fabric.machines_dead"), 1);
    }

    #[test]
    fn fault_plan_crash_kills_machine_mid_run() {
        let mut plan = FaultPlan::new(9);
        plan.inject(SimTime::from_nanos(2_000_000), "m1", FaultKind::Crash);
        let mut fab = Fabric::new(FabricConfig {
            fault_plan: Some(plan),
            ..FabricConfig::default()
        });
        let m0 = fab.add_machine("m0", quiet_sys(1));
        let m1 = fab.add_machine("m1", quiet_sys(2));
        let _ = m0;
        fab.power_on();
        fab.run_for(SimDuration::from_millis(5));
        assert!(fab.is_dead(m1));
        assert_eq!(fab.metrics().counter("fabric.faults_applied"), 1);
    }

    #[test]
    fn directory_query_round_trips_in_band() {
        // No devices registered -> empty directory, but the protocol and
        // the fabric answer path still round-trip.
        struct DirProbe {
            dir: PortId,
            reply: Option<DirMsg>,
        }
        impl NetHost for DirProbe {
            fn name(&self) -> &str {
                "dir-probe"
            }
            fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
                ctx.net_tx(self.dir, DirMsg::Query { epoch_hint: 0 }.encode());
            }
            fn on_frame(&mut self, _ctx: &mut HostCtx<'_>, frame: Frame) {
                self.reply = Some(DirMsg::decode(&frame.payload).unwrap());
            }
        }
        let mut fab = Fabric::new(FabricConfig::default());
        let m0 = fab.add_machine("m0", quiet_sys(5));
        let dir = fab.directory_port(m0);
        let port = fab
            .machine_mut(m0)
            .add_host(Box::new(DirProbe { dir, reply: None }));
        fab.power_on();
        fab.run_for(SimDuration::from_millis(1));
        let probe = fab.machine(m0).host_as::<DirProbe>(port).unwrap();
        match &probe.reply {
            Some(DirMsg::Reply { endpoints, .. }) => assert!(endpoints.is_empty()),
            other => panic!("expected reply, got {other:?}"),
        }
        assert_eq!(fab.metrics().counter("fabric.dir.queries"), 1);
        assert!(fab.metrics().counter("fabric.dir.syncs") >= 1);
    }

    #[test]
    fn correlation_ids_span_machines_in_the_merged_trace() {
        // A ping tunneled m0 -> m1 must keep its correlation id across the
        // link: the merged trace shows the same id on both machines' tracks
        // (sources prefixed "m0/" and "m1/"), and the two machines' id
        // ranges never alias thanks to the per-machine corr rebase.
        let mut fab = Fabric::new(FabricConfig::default());
        let mk = |seed| {
            System::new(SystemConfig {
                seed,
                trace: true,
                ..SystemConfig::default()
            })
        };
        let m0 = fab.add_machine("m0", mk(21));
        let m1 = fab.add_machine("m1", mk(22));
        let echo_port = fab.machine_mut(m1).add_host(Box::new(Echo));
        let tunnel = fab.open_tunnel(m0, m1, echo_port);
        let _ = fab.machine_mut(m0).add_host(Box::new(Pinger {
            target: tunnel,
            payload: vec![9; 32],
            replies: Vec::new(),
        }));
        fab.power_on();
        fab.run_for(SimDuration::from_millis(5));
        let merged = fab.merged_trace();
        assert!(!merged.is_empty());
        let mut spans_both = 0;
        let corrs: std::collections::BTreeSet<u64> = merged
            .events()
            .filter(|r| r.corr.is_some())
            .map(|r| r.corr.0)
            .collect();
        for &c in &corrs {
            let on_m0 = merged
                .by_corr(CorrId(c))
                .any(|r| r.source.starts_with("m0/"));
            let on_m1 = merged
                .by_corr(CorrId(c))
                .any(|r| r.source.starts_with("m1/"));
            if on_m0 && on_m1 {
                spans_both += 1;
            }
        }
        assert!(
            spans_both >= 1,
            "at least the ping's correlation id must appear on both machines"
        );
        // Rack-unique id namespaces: every traced id sits in some machine's
        // rebased range (machine m mints from (m+1) << 40), and the ping —
        // minted on m0 — sits in m0's.
        assert!(corrs.iter().all(|&c| c >= 1 << 40));
        assert!(corrs.iter().any(|&c| (1 << 40..2 << 40).contains(&c)));
    }

    #[test]
    fn leaf_spine_cross_leaf_ping_pays_four_hops() {
        use crate::topology::{TopoKind, TopologyConfig};
        // m0 (leaf 0) pings an echo on m3 (leaf 1) across a spine: each
        // crossing pays 4 transmissions + 3 switch hops + propagation.
        let mut fab = Fabric::new(FabricConfig {
            topology: TopologyConfig {
                kind: TopoKind::LeafSpine { leaf_size: 2 },
                oversub: 1,
            },
            ..FabricConfig::default()
        });
        let m0 = fab.add_machine("m0", quiet_sys(1));
        for i in 1..4 {
            fab.add_machine(format!("m{i}"), quiet_sys(1 + i as u64));
        }
        let m3 = MachineId(3);
        let echo_port = fab.machine_mut(m3).add_host(Box::new(Echo));
        let tunnel = fab.open_tunnel(m0, m3, echo_port);
        let ping_port = fab.machine_mut(m0).add_host(Box::new(Pinger {
            target: tunnel,
            payload: vec![7; 64],
            replies: Vec::new(),
        }));
        fab.power_on();
        fab.run_for(SimDuration::from_millis(5));
        let host = fab.machine(m0).host_as::<Pinger>(ping_port).unwrap();
        assert_eq!(host.replies.len(), 1);
        let cost = &FabricConfig::default().link_cost;
        let wire = 64 + lastcpu_net::FRAME_OVERHEAD_BYTES;
        // Round trip = 2 crossings, each 4×tx + 3×switch + propagation.
        let one_way = 4 * cost.serialize(wire).as_nanos()
            + 3 * cost.switch_latency.as_nanos()
            + cost.propagation.as_nanos();
        assert!(
            host.replies[0].0.as_nanos() >= 2 * one_way,
            "reply at {} < 2 × {one_way}",
            host.replies[0].0.as_nanos()
        );
        assert_eq!(fab.topology().num_links(), 4 + 4 + 2 * 2 + 2 * 2);
    }

    #[test]
    fn topologies_are_thread_invariant_and_deterministic() {
        use crate::topology::{TopoKind, TopologyConfig};
        for kind in [
            TopoKind::LeafSpine { leaf_size: 2 },
            TopoKind::FatTree { k: 0 },
        ] {
            let run = |threads: usize| {
                let mut fab = Fabric::new(FabricConfig {
                    threads,
                    topology: TopologyConfig { kind, oversub: 2 },
                    ..FabricConfig::default()
                });
                let m0 = fab.add_machine("m0", quiet_sys(10));
                for i in 1..6 {
                    fab.add_machine(format!("m{i}"), quiet_sys(10 + i as u64));
                }
                let m5 = MachineId(5);
                let echo_port = fab.machine_mut(m5).add_host(Box::new(Echo));
                let tunnel = fab.open_tunnel(m0, m5, echo_port);
                let port = fab.machine_mut(m0).add_host(Box::new(Pinger {
                    target: tunnel,
                    payload: vec![3; 256],
                    replies: Vec::new(),
                }));
                fab.power_on();
                fab.run_for(SimDuration::from_millis(5));
                let at = fab.machine(m0).host_as::<Pinger>(port).unwrap().replies[0].0;
                (at, fab.metrics().counter("fabric.bytes"))
            };
            let base = run(1);
            assert_eq!(run(1), base, "{kind}: rerun diverged");
            assert_eq!(run(4), base, "{kind}: threads=4 diverged");
        }
    }

    #[test]
    fn link_serialization_queues_on_shared_uplink() {
        // Two large frames leaving m0 back-to-back must serialize on m0's
        // uplink: the second reply arrives later than the first by at
        // least one transmission time.
        struct DoublePing {
            t1: PortId,
            t2: PortId,
            replies: Vec<SimTime>,
        }
        impl NetHost for DoublePing {
            fn name(&self) -> &str {
                "double"
            }
            fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
                ctx.net_tx(self.t1, vec![0; 9000]);
                ctx.net_tx(self.t2, vec![0; 9000]);
            }
            fn on_frame(&mut self, ctx: &mut HostCtx<'_>, _frame: Frame) {
                self.replies.push(ctx.now);
            }
        }
        let mut fab = Fabric::new(FabricConfig::default());
        let m0 = fab.add_machine("m0", quiet_sys(1));
        let m1 = fab.add_machine("m1", quiet_sys(2));
        let m2 = fab.add_machine("m2", quiet_sys(3));
        let e1 = fab.machine_mut(m1).add_host(Box::new(Echo));
        let e2 = fab.machine_mut(m2).add_host(Box::new(Echo));
        let t1 = fab.open_tunnel(m0, m1, e1);
        let t2 = fab.open_tunnel(m0, m2, e2);
        let port = fab.machine_mut(m0).add_host(Box::new(DoublePing {
            t1,
            t2,
            replies: Vec::new(),
        }));
        fab.power_on();
        fab.run_for(SimDuration::from_millis(10));
        let host = fab.machine(m0).host_as::<DoublePing>(port).unwrap();
        assert_eq!(host.replies.len(), 2);
        let gap = host.replies[1].since(host.replies[0]);
        let tx = fab.config().link_cost.serialize_frame(9000);
        assert!(
            gap >= tx,
            "second frame must queue behind the first on the shared uplink \
             (gap {gap:?} < tx {tx:?})"
        );
    }
}
