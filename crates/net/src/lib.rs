//! Minimal network substrate for the smart NIC.
//!
//! The paper's end-to-end example (§3) exposes a key-value service "to other
//! machines over the network"; the clients that drive the E2/E3 experiments
//! live on the far side of this substrate. It models exactly what those
//! experiments need and nothing more: ports on a store-and-forward switch,
//! per-egress-port line-rate serialization (so congestion and antagonist
//! interference are real), and fixed propagation delay.
//!
//! Timing is computed by the switch but *applied* by the host simulator:
//! [`Switch::route`] returns `(port, deliver_at)` pairs which the caller
//! turns into scheduled events.

pub mod switch;

pub use switch::{NetCostModel, PortId, Switch, SwitchStats};

/// A network frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sending port.
    pub src: PortId,
    /// Destination port, or [`PortId::BROADCAST`].
    pub dst: PortId,
    /// Payload bytes (the emulator does not model L2 headers beyond the
    /// fixed per-frame overhead in the cost model).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Creates a unicast frame.
    pub fn unicast(src: PortId, dst: PortId, payload: Vec<u8>) -> Self {
        Frame { src, dst, payload }
    }

    /// On-wire length in bytes (payload + fixed header overhead).
    pub fn wire_len(&self) -> u64 {
        self.payload.len() as u64 + 18 // Ethernet-ish header + FCS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_includes_header() {
        let f = Frame::unicast(PortId(1), PortId(2), vec![0; 100]);
        assert_eq!(f.wire_len(), 118);
    }
}
