//! Minimal network substrate for the smart NIC.
//!
//! The paper's end-to-end example (§3) exposes a key-value service "to other
//! machines over the network"; the clients that drive the E2/E3 experiments
//! live on the far side of this substrate. It models exactly what those
//! experiments need and nothing more: ports on a store-and-forward switch,
//! per-egress-port line-rate serialization (so congestion and antagonist
//! interference are real), and fixed propagation delay.
//!
//! Timing is computed by the switch but *applied* by the host simulator:
//! [`Switch::route`] returns `(port, deliver_at)` pairs which the caller
//! turns into scheduled events.

pub mod switch;

pub use lastcpu_sim::pool::{BufPool, Bytes};
pub use switch::{NetCostModel, PortId, Switch, SwitchStats};

/// Fixed per-frame header overhead on the wire, in bytes: an Ethernet-ish
/// header (dst/src addresses + ethertype) plus the frame check sequence.
///
/// Every component that accounts for frame bytes — [`Frame::wire_len`], the
/// switch's byte counters, [`NetCostModel::serialize_frame`], and the
/// rack fabric's inter-machine links — shares this constant, so changing
/// the modeled header cost cannot desynchronize the cost model from the
/// accounting.
pub const FRAME_OVERHEAD_BYTES: u64 = 18;

/// A network frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sending port.
    pub src: PortId,
    /// Destination port, or [`PortId::BROADCAST`].
    pub dst: PortId,
    /// Payload bytes (the emulator does not model L2 headers beyond the
    /// fixed per-frame overhead in the cost model). Possibly pool-backed
    /// ([`Bytes`]): the zero-alloc delivery path serializes into a buffer
    /// drawn from the sender's [`BufPool`] and the storage returns to that
    /// pool when the frame is decoded and dropped at the receiver.
    pub payload: Bytes,
}

impl Frame {
    /// Creates a unicast frame. Accepts a plain `Vec<u8>` or a pooled
    /// [`Bytes`] payload.
    pub fn unicast(src: PortId, dst: PortId, payload: impl Into<Bytes>) -> Self {
        Frame {
            src,
            dst,
            payload: payload.into(),
        }
    }

    /// On-wire length in bytes (payload + [`FRAME_OVERHEAD_BYTES`]).
    pub fn wire_len(&self) -> u64 {
        self.payload.len() as u64 + FRAME_OVERHEAD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_includes_header() {
        let f = Frame::unicast(PortId(1), PortId(2), vec![0; 100]);
        assert_eq!(f.wire_len(), 100 + FRAME_OVERHEAD_BYTES);
        assert_eq!(f.wire_len(), 118, "regression: 18-byte header + FCS");
    }

    #[test]
    fn empty_frame_still_pays_header() {
        let f = Frame::unicast(PortId(1), PortId(2), Vec::new());
        assert_eq!(f.wire_len(), FRAME_OVERHEAD_BYTES);
    }

    #[test]
    fn cost_model_serialize_frame_matches_wire_len() {
        // Regression for the shared-constant contract: serializing "a frame
        // of payload length L" through the cost model must charge exactly
        // the bytes `wire_len` reports, for payloads across the varint /
        // jumbo range.
        let cost = NetCostModel::default();
        for len in [0usize, 1, 63, 64, 1500, 9000] {
            let f = Frame::unicast(PortId(1), PortId(2), vec![0; len]);
            assert_eq!(
                cost.serialize_frame(len as u64),
                cost.serialize(f.wire_len()),
                "payload len {len}"
            );
        }
    }
}
