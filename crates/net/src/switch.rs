//! A store-and-forward switch with per-egress-port serialization.

use std::fmt;

use lastcpu_sim::{DetHashMap, SimDuration, SimTime};

use crate::Frame;

/// A switch port identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u32);

impl PortId {
    /// The broadcast destination.
    pub const BROADCAST: PortId = PortId(u32::MAX);
}

/// Link timing model. Defaults approximate a 10 GbE datacenter edge:
/// 100 ps/byte line rate, 500 ns switch latency, 1 µs propagation.
#[derive(Debug, Clone, Copy)]
pub struct NetCostModel {
    /// Per-byte serialization time in picoseconds (100 ps/B = 10 Gb/s).
    pub per_byte_ps: u64,
    /// Store-and-forward latency inside the switch.
    pub switch_latency: SimDuration,
    /// Propagation delay per link.
    pub propagation: SimDuration,
}

impl Default for NetCostModel {
    fn default() -> Self {
        NetCostModel {
            per_byte_ps: 100,
            switch_latency: SimDuration::from_nanos(500),
            propagation: SimDuration::from_micros(1),
        }
    }
}

impl NetCostModel {
    /// Time to clock `bytes` onto the wire.
    pub fn serialize(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes.saturating_mul(self.per_byte_ps) / 1000)
    }

    /// Time to clock a frame with `payload_bytes` of payload onto the wire,
    /// including the fixed [`crate::FRAME_OVERHEAD_BYTES`] header overhead —
    /// the same constant [`crate::Frame::wire_len`] reports, so cost and
    /// accounting can never drift apart.
    pub fn serialize_frame(&self, payload_bytes: u64) -> SimDuration {
        self.serialize(payload_bytes.saturating_add(crate::FRAME_OVERHEAD_BYTES))
    }
}

/// Switch counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct SwitchStats {
    /// Frames forwarded (per recipient).
    pub forwarded: u64,
    /// Frames dropped (unknown destination).
    pub dropped: u64,
    /// Payload+header bytes forwarded.
    pub bytes: u64,
}

/// A switch connecting registered ports.
///
/// Each egress port serializes at line rate: a frame begins transmission at
/// `max(arrival, port_busy_until)`, so a hot destination queues — this is
/// the congestion that the isolation experiment (E3) measures.
pub struct Switch {
    ports: Vec<PortId>,
    next_port: u32,
    busy_until: DetHashMap<PortId, SimTime>,
    cost: NetCostModel,
    stats: SwitchStats,
}

impl Default for Switch {
    fn default() -> Self {
        Self::new()
    }
}

impl Switch {
    /// An empty switch with the default cost model.
    pub fn new() -> Self {
        Switch {
            ports: Vec::new(),
            next_port: 1,
            busy_until: DetHashMap::default(),
            cost: NetCostModel::default(),
            stats: SwitchStats::default(),
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: NetCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &NetCostModel {
        &self.cost
    }

    /// Counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Registers a new port and returns its id.
    pub fn add_port(&mut self) -> PortId {
        let p = PortId(self.next_port);
        self.next_port += 1;
        self.ports.push(p);
        p
    }

    /// Whether `p` is a registered port.
    pub fn has_port(&self, p: PortId) -> bool {
        self.ports.contains(&p)
    }

    /// Queues `wire` bytes on egress `port` (ingress serialization + switch
    /// latency already folded into `at_switch`) and returns the delivery time.
    fn egress(&mut self, at_switch: SimTime, port: PortId, wire: u64) -> SimTime {
        let tx_time = self.cost.serialize(wire);
        let start = (*self.busy_until.entry(port).or_insert(SimTime::ZERO)).max(at_switch);
        let egress_done = start + tx_time;
        self.busy_until.insert(port, egress_done);
        self.stats.forwarded += 1;
        self.stats.bytes += wire;
        egress_done + self.cost.propagation
    }

    /// Routes a unicast frame without allocating: the hot delivery path.
    ///
    /// Returns the delivery time at `frame.dst`, or `None` if the
    /// destination is unknown (dropped, counted) or the frame is a
    /// broadcast (use [`Switch::route`]).
    pub fn route_unicast(&mut self, now: SimTime, frame: &Frame) -> Option<SimTime> {
        if frame.dst == PortId::BROADCAST {
            return None;
        }
        if !self.has_port(frame.dst) {
            self.stats.dropped += 1;
            return None;
        }
        let wire = frame.wire_len();
        // Ingress serialization + switch latency, then queue on the egress
        // port, then propagation to the endpoint.
        let at_switch = now + self.cost.serialize(wire) + self.cost.switch_latency;
        Some(self.egress(at_switch, frame.dst, wire))
    }

    /// Routes a frame arriving at the switch at `now`.
    ///
    /// Returns `(recipient, deliver_at)` pairs; the caller schedules the
    /// deliveries. Unknown unicast destinations are dropped (counted).
    pub fn route(&mut self, now: SimTime, frame: &Frame) -> Vec<(PortId, SimTime)> {
        if frame.dst != PortId::BROADCAST {
            return match self.route_unicast(now, frame) {
                Some(deliver) => vec![(frame.dst, deliver)],
                None => Vec::new(),
            };
        }
        let recipients: Vec<PortId> = self
            .ports
            .iter()
            .copied()
            .filter(|&p| p != frame.src)
            .collect();
        let wire = frame.wire_len();
        let mut out = Vec::with_capacity(recipients.len());
        for port in recipients {
            let at_switch = now + self.cost.serialize(wire) + self.cost.switch_latency;
            let deliver = self.egress(at_switch, port, wire);
            out.push((port, deliver));
        }
        out
    }

    /// The time egress port `p` becomes idle (for queue-depth metrics).
    pub fn port_busy_until(&self, p: PortId) -> SimTime {
        self.busy_until.get(&p).copied().unwrap_or(SimTime::ZERO)
    }
}

impl fmt::Debug for Switch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Switch(ports={}, forwarded={}, dropped={})",
            self.ports.len(),
            self.stats.forwarded,
            self.stats.dropped
        )
    }
}

#[cfg(test)]
mod ordering_tests {
    use super::*;

    #[test]
    fn per_port_delivery_preserves_send_order() {
        // Frames from one source to one destination must arrive in order,
        // even with mixed sizes (store-and-forward serialization).
        let mut sw = Switch::new();
        let a = sw.add_port();
        let b = sw.add_port();
        let mut prev = SimTime::ZERO;
        for i in 0..20 {
            let len = if i % 3 == 0 { 9000 } else { 64 };
            let t = sw.route(prev, &Frame::unicast(a, b, vec![0; len]))[0].1;
            assert!(t > prev, "frame {i} delivered out of order");
            prev = t;
        }
    }
}

impl lastcpu_snap::Snapshot for Switch {
    fn snapshot(&self, w: &mut lastcpu_snap::SnapWriter) {
        w.put_u64(self.cost.per_byte_ps);
        w.put_u64(self.cost.switch_latency.as_nanos());
        w.put_u64(self.cost.propagation.as_nanos());
        w.put_u64(self.stats.forwarded);
        w.put_u64(self.stats.dropped);
        w.put_u64(self.stats.bytes);
        w.put_u32(self.next_port);
        w.put_len(self.ports.len());
        for p in &self.ports {
            w.put_u32(p.0);
        }
        let mut busy: Vec<_> = self
            .busy_until
            .iter()
            .map(|(p, t)| (p.0, t.as_nanos()))
            .collect();
        busy.sort_unstable();
        w.put_len(busy.len());
        for (p, t) in busy {
            w.put_u32(p);
            w.put_u64(t);
        }
    }
}

impl lastcpu_snap::Restore for Switch {
    fn restore(&mut self, r: &mut lastcpu_snap::SnapReader<'_>) -> lastcpu_snap::Result<()> {
        self.cost.per_byte_ps = r.u64()?;
        self.cost.switch_latency = SimDuration::from_nanos(r.u64()?);
        self.cost.propagation = SimDuration::from_nanos(r.u64()?);
        self.stats.forwarded = r.u64()?;
        self.stats.dropped = r.u64()?;
        self.stats.bytes = r.u64()?;
        self.next_port = r.u32()?;
        let n = r.len()?;
        self.ports = Vec::with_capacity(n);
        for _ in 0..n {
            self.ports.push(PortId(r.u32()?));
        }
        let n = r.len()?;
        self.busy_until = DetHashMap::default();
        for _ in 0..n {
            let p = PortId(r.u32()?);
            let t = SimTime::from_nanos(r.u64()?);
            self.busy_until.insert(p, t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(src: PortId, dst: PortId, len: usize) -> Frame {
        Frame::unicast(src, dst, vec![0; len])
    }

    #[test]
    fn unicast_delivers_once() {
        let mut sw = Switch::new();
        let a = sw.add_port();
        let b = sw.add_port();
        let out = sw.route(SimTime::ZERO, &frame(a, b, 100));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, b);
        assert!(out[0].1 > SimTime::ZERO);
    }

    #[test]
    fn unknown_destination_dropped() {
        let mut sw = Switch::new();
        let a = sw.add_port();
        let out = sw.route(SimTime::ZERO, &frame(a, PortId(999), 100));
        assert!(out.is_empty());
        assert_eq!(sw.stats().dropped, 1);
    }

    #[test]
    fn broadcast_reaches_all_but_sender() {
        let mut sw = Switch::new();
        let a = sw.add_port();
        let _b = sw.add_port();
        let _c = sw.add_port();
        let out = sw.route(SimTime::ZERO, &frame(a, PortId::BROADCAST, 10));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|&(p, _)| p != a));
    }

    #[test]
    fn hot_egress_port_queues() {
        let mut sw = Switch::new();
        let a = sw.add_port();
        let b = sw.add_port();
        let victim = sw.add_port();
        // Two large frames from different sources to the same destination
        // arrive simultaneously: the second serializes after the first.
        let t1 = sw.route(SimTime::ZERO, &frame(a, victim, 9000))[0].1;
        let t2 = sw.route(SimTime::ZERO, &frame(b, victim, 9000))[0].1;
        assert!(t2 > t1);
        let gap = t2 - t1;
        let wire_time = sw.cost_model().serialize(9018);
        assert_eq!(gap, wire_time);
    }

    #[test]
    fn idle_ports_do_not_interfere() {
        let mut sw = Switch::new();
        let a = sw.add_port();
        let b = sw.add_port();
        let c = sw.add_port();
        let d = sw.add_port();
        let t1 = sw.route(SimTime::ZERO, &frame(a, b, 1000))[0].1;
        let t2 = sw.route(SimTime::ZERO, &frame(c, d, 1000))[0].1;
        assert_eq!(t1, t2, "different egress ports are independent");
    }

    #[test]
    fn larger_frames_take_longer() {
        let mut sw = Switch::new();
        let a = sw.add_port();
        let b = sw.add_port();
        let small = sw.route(SimTime::ZERO, &frame(a, b, 64))[0].1;
        let mut sw2 = Switch::new();
        let a2 = sw2.add_port();
        let b2 = sw2.add_port();
        let large = sw2.route(SimTime::ZERO, &frame(a2, b2, 9000))[0].1;
        assert!(large > small);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut sw = Switch::new();
        let a = sw.add_port();
        let b = sw.add_port();
        sw.route(SimTime::ZERO, &frame(a, b, 9000));
        let busy = sw.port_busy_until(b);
        // A frame arriving after the port drained is not delayed by it.
        let later = busy + SimDuration::from_micros(10);
        let t = sw.route(later, &frame(a, b, 64))[0].1;
        let fresh_latency = sw.cost_model().serialize(82).saturating_mul(2)
            + sw.cost_model().switch_latency
            + sw.cost_model().propagation;
        assert_eq!(t.since(later), fresh_latency);
    }

    #[test]
    fn stats_accumulate() {
        let mut sw = Switch::new();
        let a = sw.add_port();
        let b = sw.add_port();
        sw.route(SimTime::ZERO, &frame(a, b, 100));
        sw.route(SimTime::ZERO, &frame(a, PortId::BROADCAST, 10));
        assert_eq!(sw.stats().forwarded, 2);
        assert!(sw.stats().bytes > 0);
    }
}
