//! CPU cost model.
//!
//! Numbers approximate a current server core running a general-purpose
//! kernel; the experiments sweep them, so only the *relations* matter
//! (interrupt < syscall < context switch ≪ device latencies).

use lastcpu_sim::SimDuration;

/// Costs of kernel involvement.
#[derive(Debug, Clone, Copy)]
pub struct CpuCostModel {
    /// Interrupt entry/exit (mode switch, state save, EOI).
    pub interrupt_entry: SimDuration,
    /// One system-call worth of kernel work (lookup, bookkeeping).
    pub syscall: SimDuration,
    /// Context switch to the serving task.
    pub context_switch: SimDuration,
    /// Per-byte cost of copying payloads through the kernel (ps/byte;
    /// 250 ps/B = 4 GB/s memcpy).
    pub per_byte_copy_ps: u64,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel {
            interrupt_entry: SimDuration::from_nanos(1_500),
            syscall: SimDuration::from_nanos(2_000),
            context_switch: SimDuration::from_nanos(3_000),
            per_byte_copy_ps: 250,
        }
    }
}

impl CpuCostModel {
    /// Cost of copying `bytes` through the kernel.
    pub fn copy(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(bytes as u64 * self.per_byte_copy_ps / 1000)
    }

    /// Cost of fielding one device interrupt with `bytes` of payload.
    pub fn interrupt_with_copy(&self, bytes: usize) -> SimDuration {
        self.interrupt_entry + self.copy(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations_hold() {
        let c = CpuCostModel::default();
        assert!(c.interrupt_entry < c.syscall);
        assert!(c.syscall < c.context_switch);
        assert!(c.copy(0) == SimDuration::ZERO);
        assert!(c.copy(4096) > SimDuration::ZERO);
        assert!(c.interrupt_with_copy(1000) > c.interrupt_entry);
    }
}
