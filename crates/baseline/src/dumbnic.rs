//! A conventional (non-smart) NIC.
//!
//! Receives a frame, copies it into kernel memory, raises an interrupt —
//! i.e. sends the payload to the CPU as an [`lastcpu_bus::Payload::AppData`]
//! message. Transmits whatever the kernel hands back. All protocol
//! intelligence lives on the CPU.

use lastcpu_bus::wire::{WireReader, WireWriter};
use lastcpu_bus::{ConnId, DeviceId, Dst, Envelope, Payload};
use lastcpu_devices::device::{Device, DeviceCtx};
use lastcpu_net::{Frame, PortId};
use lastcpu_sim::SimDuration;

/// Heartbeat timer token.
const TOKEN_HEARTBEAT: u64 = 1;

/// Encodes a packet crossing the NIC↔kernel boundary: `(peer_port, bytes)`.
pub fn encode_packet(port: PortId, payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(port.0);
    w.bytes(payload);
    w.finish()
}

/// Decodes a packet crossing the NIC↔kernel boundary.
pub fn decode_packet(data: &[u8]) -> Option<(PortId, Vec<u8>)> {
    let mut r = WireReader::new(data);
    let port = PortId(r.u32().ok()?);
    let payload = r.bytes().ok()?;
    r.expect_end().ok()?;
    Some((port, payload))
}

/// NIC counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct DumbNicStats {
    /// Frames forwarded to the CPU.
    pub rx: u64,
    /// Frames transmitted on behalf of the CPU.
    pub tx: u64,
}

/// The conventional NIC.
pub struct DumbNic {
    name: String,
    cpu: DeviceId,
    stats: DumbNicStats,
}

impl DumbNic {
    /// Creates a NIC that interrupts `cpu` for every frame.
    pub fn new(name: &str, cpu: DeviceId) -> Self {
        DumbNic {
            name: name.to_string(),
            cpu,
            stats: DumbNicStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> DumbNicStats {
        self.stats
    }
}

impl Device for DumbNic {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        "dumb-nic"
    }

    fn on_start(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.busy(SimDuration::from_micros(20));
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: self.name.clone(),
                kind: "dumb-nic".into(),
            },
        );
        ctx.set_timer(SimDuration::from_millis(2), TOKEN_HEARTBEAT);
    }

    fn on_net(&mut self, ctx: &mut DeviceCtx<'_>, frame: Frame) {
        // DMA into the kernel ring + interrupt. The payload rides the
        // AppData message; its copy cost is charged by the CPU on receipt.
        ctx.busy(SimDuration::from_nanos(300));
        self.stats.rx += 1;
        ctx.send_bus(
            Dst::Device(self.cpu),
            Payload::AppData {
                conn: ConnId(0),
                data: encode_packet(frame.src, &frame.payload),
            },
        );
    }

    fn on_message(&mut self, ctx: &mut DeviceCtx<'_>, env: Envelope) {
        if let Payload::AppData { data, .. } = env.payload {
            if env.src != self.cpu {
                return; // only the kernel drives this NIC
            }
            if let Some((dst, payload)) = decode_packet(&data) {
                ctx.busy(SimDuration::from_nanos(300));
                self.stats.tx += 1;
                if let Some(port) = ctx.port {
                    ctx.net_tx(Frame::unicast(port, dst, payload));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut DeviceCtx<'_>, token: u64) {
        if token == TOKEN_HEARTBEAT {
            ctx.send_bus(Dst::Bus, Payload::Heartbeat);
            ctx.set_timer(SimDuration::from_millis(2), TOKEN_HEARTBEAT);
        }
    }

    fn on_reset(&mut self, ctx: &mut DeviceCtx<'_>) {
        ctx.busy(SimDuration::from_micros(20));
        ctx.send_bus(
            Dst::Bus,
            Payload::Hello {
                name: self.name.clone(),
                kind: "dumb-nic".into(),
            },
        );
        ctx.set_timer(SimDuration::from_millis(2), TOKEN_HEARTBEAT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_framing_round_trips() {
        let enc = encode_packet(PortId(7), b"hello");
        assert_eq!(decode_packet(&enc), Some((PortId(7), b"hello".to_vec())));
        assert_eq!(decode_packet(&[1, 2]), None);
    }

    #[test]
    fn empty_payload_round_trips() {
        let enc = encode_packet(PortId(0), b"");
        assert_eq!(decode_packet(&enc), Some((PortId(0), vec![])));
    }
}
