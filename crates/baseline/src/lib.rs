//! The centralized baseline: a conventional CPU-controlled system.
//!
//! The paper positions its design against "accelerator-centric systems with
//! centralized control, such as OmniX, M³X and IX, \[which\] rely on the CPU
//! to handle only the mundane tasks of initialization, coordination and
//! error handling" (§1) — and against the fully traditional system where
//! the CPU is also on the data path. This crate implements that comparator
//! on the same simulated hardware:
//!
//! - [`CpuDevice`]: *the last CPU*. It runs the kernel: a **central service
//!   directory** (it observes every `Announce` — precisely the global state
//!   the paper's design forbids), an **open broker** (clients open services
//!   through the kernel, which forwards and polices), the **memory
//!   manager** (the same allocation policy as `lastcpu-memctl`, but run on
//!   the CPU, which registers as the Memory controller with the bus), and a
//!   hosted application ([`CpuApp`]) for the fully CPU-mediated data path.
//!   Every message that reaches the CPU pays interrupt-entry and syscall
//!   costs, and the kernel is serialized — one core, one lock.
//! - [`DumbNic`]: a conventional NIC: DMA the frame, raise an interrupt,
//!   let the kernel deal with it. Payloads cross the CPU on both directions.
//!
//! The experiments run the same workloads against both systems; the
//! baseline's costs are the quantities the paper claims a CPU-less design
//! removes (E1, E2) — and its centralized directory is the thing that makes
//! discovery O(1) instead of a broadcast, which E7 reports honestly.

pub mod cost;
pub mod cpu;
pub mod dumbnic;

pub use cost::CpuCostModel;
pub use cpu::{encode_broker_params, CpuApp, CpuDevice, IdleApp, KernelEnv, KERNEL_OPEN};
pub use dumbnic::{decode_packet, encode_packet, DumbNic};
